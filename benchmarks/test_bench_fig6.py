"""Figure 6: completed writes in SLC vs MLC regions (regenerated)."""

from conftest import run_and_render


def test_bench_fig6(benchmark):
    artifact = run_and_render(benchmark, "fig6")
    assert artifact.rows
