"""Figure 10: erase counts in the SLC-mode cache (a) and MLC region (b)."""

from conftest import run_and_render


def test_bench_fig10a(benchmark):
    artifact = run_and_render(benchmark, "fig10")
    assert artifact.rows


def test_bench_fig10b(benchmark):
    artifact = run_and_render(benchmark, "fig10b")
    assert artifact.rows
