"""Figure 11: normalised mapping-table size (regenerated)."""

from conftest import run_and_render


def test_bench_fig11(benchmark):
    artifact = run_and_render(benchmark, "fig11")
    assert artifact.rows
