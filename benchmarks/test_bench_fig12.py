"""Figure 12: GC victim-selection compute overhead (regenerated)."""

from conftest import run_and_render


def test_bench_fig12(benchmark):
    artifact = run_and_render(benchmark, "fig12")
    assert artifact.rows
