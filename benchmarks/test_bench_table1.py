"""Table 1: update-size distribution of the evaluation traces (regenerated)."""

from conftest import run_and_render


def test_bench_table1(benchmark):
    artifact = run_and_render(benchmark, "table1")
    assert artifact.rows
