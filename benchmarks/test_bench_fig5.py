"""Figure 5: I/O response time per trace and scheme (regenerated)."""

from conftest import run_and_render


def test_bench_fig5(benchmark):
    artifact = run_and_render(benchmark, "fig5")
    assert artifact.rows
