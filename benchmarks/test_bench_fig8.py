"""Figure 8: average read error rate (regenerated)."""

from conftest import run_and_render


def test_bench_fig8(benchmark):
    artifact = run_and_render(benchmark, "fig8")
    assert artifact.rows
