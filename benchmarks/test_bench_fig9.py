"""Figure 9: page utilisation of collected SLC blocks (regenerated)."""

from conftest import run_and_render


def test_bench_fig9(benchmark):
    artifact = run_and_render(benchmark, "fig9")
    assert artifact.rows
