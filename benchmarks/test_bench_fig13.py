"""Figure 13: I/O latency under varied P/E cycles (regenerated)."""

from conftest import run_and_render


def test_bench_fig13(benchmark):
    artifact = run_and_render(benchmark, "fig13")
    assert artifact.rows
