"""Figure 2: RBER of conventional vs partial programming (regenerated)."""

from conftest import run_and_render


def test_bench_fig2(benchmark):
    artifact = run_and_render(benchmark, "fig2")
    assert artifact.rows
