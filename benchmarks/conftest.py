"""Benchmark configuration.

Every table and figure of the paper's evaluation has a benchmark that
regenerates it and prints the same rows the paper reports.  All benchmarks
share one memoised simulation sweep (per scale/seed), so the expensive
full matrix runs once and each figure's bench measures its aggregation on
top — except the first one to touch the matrix, which pays for (and
therefore honestly times) the sweep.

Scale selection: ``REPRO_BENCH_SCALE`` env var (smoke | small | medium),
default ``small``.

Execution: ``REPRO_BENCH_JOBS`` fans the underlying simulation cells out
over that many worker processes (0 = one per CPU), and
``REPRO_BENCH_CACHE_DIR`` points the on-disk result cache at a directory
so a second benchmark session reuses the sweep instead of re-simulating
it (results are bit-identical either way; the first touch of a warm cache
honestly times deserialisation instead of simulation).

Rendered artifacts are printed (visible with ``pytest -s``) **and**
appended to ``bench_artifacts.txt`` in the working directory, so the
regenerated tables/figures survive pytest's output capturing.
"""

import os
from pathlib import Path

import pytest

ARTIFACT_LOG = Path(os.environ.get("REPRO_BENCH_ARTIFACTS",
                                   "bench_artifacts.txt"))

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
BENCH_JOBS = os.environ.get("REPRO_BENCH_JOBS", "")
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR", "")


@pytest.fixture(scope="session", autouse=True)
def _bench_execution():
    """Apply REPRO_BENCH_JOBS / REPRO_BENCH_CACHE_DIR to the shared
    contexts, and report the cell / cache counters at session end."""
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import configure_execution, execution_summary

    if BENCH_JOBS:
        configure_execution(jobs=int(BENCH_JOBS))
    if BENCH_CACHE_DIR:
        configure_execution(cache=ResultCache(BENCH_CACHE_DIR))
    yield
    info = execution_summary()
    print(f"\n[bench cells] {info['executed_cells']} simulated "
          f"({info['executed_seconds']:.1f}s replay wall); "
          f"cache: {info['cache_hits']} hits / {info['cache_misses']} misses")


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed():
    return BENCH_SEED


def run_and_render(benchmark, experiment_id, scale=None, seed=None):
    """Benchmark one experiment build and print its artifact."""
    from repro.experiments import run

    scale = scale or BENCH_SCALE
    seed = seed if seed is not None else BENCH_SEED
    artifact = benchmark.pedantic(
        lambda: run(experiment_id, scale=scale, seed=seed),
        rounds=1, iterations=1,
    )
    text = artifact.render()
    print()
    print(text)
    with ARTIFACT_LOG.open("a") as fh:
        fh.write(text + "\n\n")
    return artifact


@pytest.fixture(scope="session", autouse=True)
def _fresh_artifact_log():
    """Truncate the artifact log once per benchmark session."""
    ARTIFACT_LOG.write_text(
        f"# Artifacts regenerated at scale={BENCH_SCALE}, seed={BENCH_SEED}\n\n")
    yield
