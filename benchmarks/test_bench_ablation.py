"""Ablations of the design choices DESIGN.md calls out.

Not paper artifacts — these isolate the contribution of individual IPU
ingredients and the Baseline modelling choice:

* **ISR vs greedy victim selection** for IPU (how much of the benefit is
  the coldness-aware policy versus the movement rules),
* **three levels vs Work-only** (promotion disabled: every overflow
  rewrite lands back at Work level),
* **Baseline with and without sibling merging** (the paper's Baseline
  does not merge; merging trades RMW reads for utilisation).
"""

import pytest

from repro import BaselineFTL, IPUFTL, Simulator
from repro.ftl.levels import BlockLevel
from repro.ftl.victim import GreedyVictimPolicy

from conftest import BENCH_SEED


class GreedyIPU(IPUFTL):
    """IPU with the conventional greedy victim policy (no Equation 1/2)."""

    scheme_name = "ipu-greedy"

    def _make_slc_policy(self):
        return GreedyVictimPolicy()


class FlatIPU(IPUFTL):
    """IPU without the level hierarchy: overflows stay at Work level."""

    scheme_name = "ipu-flat"

    def _promotion_target(self, current_level):
        return BlockLevel.WORK


def _context():
    from repro.experiments.runner import RunContext
    return RunContext(scale="smoke", seed=BENCH_SEED)


def _replay(ctx, ftl_cls, **kwargs):
    cfg = ctx.trace_config("ts0")
    ftl = ftl_cls(cfg, **kwargs)
    return Simulator(ftl).run(ctx.trace("ts0"))


def test_bench_ablation_isr_policy(benchmark):
    """ISR versus greedy victim selection under IPU movement rules."""
    ctx = _context()

    def run():
        return _replay(ctx, IPUFTL), _replay(ctx, GreedyIPU)

    ipu, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"ISR victim:    lat={ipu.avg_latency_ms:.3f}ms "
          f"evicted={ipu.evicted_subpages_to_mlc} erases={ipu.erases_slc}")
    print(f"greedy victim: lat={greedy.avg_latency_ms:.3f}ms "
          f"evicted={greedy.evicted_subpages_to_mlc} erases={greedy.erases_slc}")
    assert ipu.n_requests == greedy.n_requests


def test_bench_ablation_level_hierarchy(benchmark):
    """Three-level promotion versus a flat Work-only cache."""
    ctx = _context()

    def run():
        return _replay(ctx, IPUFTL), _replay(ctx, FlatIPU)

    ipu, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"three levels: lat={ipu.avg_latency_ms:.3f}ms "
          f"intra={ipu.intra_page_updates} "
          f"evicted={ipu.evicted_subpages_to_mlc}")
    print(f"flat (Work):  lat={flat.avg_latency_ms:.3f}ms "
          f"intra={flat.intra_page_updates} "
          f"evicted={flat.evicted_subpages_to_mlc}")
    assert flat.level_writes.get(int(BlockLevel.MONITOR), 0) == 0


def test_bench_ablation_baseline_merge(benchmark):
    """The paper's no-merge Baseline versus a read-modify-write variant."""
    ctx = _context()

    def run():
        return (_replay(ctx, BaselineFTL),
                _replay(ctx, BaselineFTL, merge_siblings=True))

    plain, merged = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"no merge: util={plain.slc_page_utilization:.1%} "
          f"lat={plain.avg_latency_ms:.3f}ms rmw_reads=0")
    print(f"merge:    util={merged.slc_page_utilization:.1%} "
          f"lat={merged.avg_latency_ms:.3f}ms")
    # Merging must improve utilisation (it fills sibling slots).
    assert merged.slc_page_utilization >= plain.slc_page_utilization


def test_bench_ablation_transfer_model(benchmark):
    """Full-page versus masked transfers: rerun Baseline with a fast bus
    to see how much of its penalty is the page-buffer transfer."""
    import dataclasses

    ctx = _context()

    def run():
        slow = _replay(ctx, BaselineFTL)
        cfg = ctx.trace_config("ts0")
        fast_cfg = dataclasses.replace(
            cfg, timing=dataclasses.replace(
                cfg.timing, transfer_ms_per_subpage=0.005))
        fast = Simulator(BaselineFTL(fast_cfg)).run(ctx.trace("ts0"))
        return slow, fast

    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"100 MB/s bus: write={slow.avg_write_latency_ms:.3f}ms")
    print(f"800 MB/s bus: write={fast.avg_write_latency_ms:.3f}ms")
    assert fast.avg_write_latency_ms < slow.avg_write_latency_ms
