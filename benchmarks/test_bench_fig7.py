"""Figure 7: IPU write distribution over block levels (regenerated)."""

from conftest import run_and_render


def test_bench_fig7(benchmark):
    artifact = run_and_render(benchmark, "fig7")
    assert artifact.rows
