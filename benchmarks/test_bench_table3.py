"""Table 3: trace specifications (regenerated)."""

from conftest import run_and_render


def test_bench_table3(benchmark):
    artifact = run_and_render(benchmark, "table3")
    assert artifact.rows
