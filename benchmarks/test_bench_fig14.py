"""Figure 14: read error rate under varied P/E cycles (regenerated)."""

from conftest import run_and_render


def test_bench_fig14(benchmark):
    artifact = run_and_render(benchmark, "fig14")
    assert artifact.rows
