"""Paper-vs-measured scoreboard (condensed EXPERIMENTS.md, computed live)."""

from conftest import run_and_render


def test_bench_summary(benchmark):
    artifact = run_and_render(benchmark, "summary")
    verdicts = artifact.column("Shape")
    # Every shape except the documented IPU-vs-MGA inversion must hold.
    assert verdicts.count("DEVIATES") <= 1
