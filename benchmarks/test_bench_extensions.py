"""Extension studies: the Delta comparator and translation overhead."""

from conftest import run_and_render


def test_bench_ext_delta(benchmark):
    artifact = run_and_render(benchmark, "ext-delta")
    assert artifact.rows
    # IPU's invariant holds in every run: zero valid subpages disturbed.
    ipu_rows = [r for r in artifact.rows if r["Scheme"] == "ipu"]
    assert all(r["disturbed valid"] == 0 for r in ipu_rows)


def test_bench_ext_translation(benchmark):
    artifact = run_and_render(benchmark, "ext-translation")
    assert artifact.rows
    misses = {}
    for row in artifact.rows:
        misses.setdefault(row["Scheme"], []).append(int(row["misses"]))
    # MGA's two-level table always misses more (its key space is denser).
    for mga, ipu in zip(misses["mga"], misses["ipu"]):
        assert mga > ipu


def test_bench_ext_qd(benchmark):
    artifact = run_and_render(benchmark, "ext-qd")
    assert artifact.rows
    # At deep queues IPU sustains at least Baseline's throughput.
    deep = [r for r in artifact.rows if r["QD"] == 64]
    kiops = {r["Scheme"]: float(r["KIOPS"]) for r in deep}
    assert kiops["ipu"] > kiops["baseline"]


def test_bench_ext_seeds(benchmark):
    artifact = run_and_render(benchmark, "ext-seeds")
    # The headline gain must hold for every seed.
    for row in artifact.rows:
        assert row["IPU vs Base lat"].startswith("-")


def test_bench_ext_cache(benchmark):
    artifact = run_and_render(benchmark, "ext-cache")
    evicted = [int(r["evicted"]) for r in artifact.rows]
    # Bigger cache, fewer evictions.
    assert evicted[0] >= evicted[1] >= evicted[2]
