"""Table 2: simulator settings self-check (regenerated)."""

from conftest import run_and_render


def test_bench_table2(benchmark):
    artifact = run_and_render(benchmark, "table2")
    assert artifact.rows
