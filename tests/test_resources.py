"""FCFS resources and chip/channel mapping."""

import pytest

from repro.config import GeometryConfig
from repro.errors import SimulationError
from repro.nand.geometry import Geometry
from repro.sim.resources import Resource, ResourceSet


class TestResource:
    def test_immediate_service_when_idle(self):
        r = Resource("chip")
        start, end = r.acquire(5.0, 2.0)
        assert (start, end) == (5.0, 7.0)

    def test_fcfs_queueing(self):
        r = Resource("chip")
        r.acquire(0.0, 3.0)
        start, end = r.acquire(1.0, 1.0)
        assert start == 3.0
        assert end == 4.0

    def test_busy_accounting(self):
        r = Resource("chip")
        r.acquire(0.0, 3.0)
        r.acquire(0.0, 2.0)
        assert r.busy_ms == 5.0
        assert r.operations == 2

    def test_utilization(self):
        r = Resource("chip")
        r.acquire(0.0, 4.0)
        assert r.utilization(8.0) == pytest.approx(0.5)
        assert r.utilization(2.0) == 1.0
        assert r.utilization(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource("x").acquire(0.0, -1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Resource("x").acquire(-1.0, 1.0)


class TestResourceSet:
    @pytest.fixture
    def rs(self):
        geo = Geometry(GeometryConfig(
            channels=2, chips_per_channel=2, planes_per_chip=1, total_blocks=32))
        return ResourceSet(geo)

    def test_counts(self, rs):
        assert len(rs.chips) == 4
        assert len(rs.channels) == 2

    def test_block_routing_consistent(self, rs):
        geo = rs.geometry
        for block in range(32):
            assert rs.chip_for_block(block) is rs.chips[geo.chip_of(block)]
            assert rs.channel_for_block(block) is rs.channels[geo.channel_of(block)]

    def test_acquire_occupies_both(self, rs):
        start, end = rs.acquire_for_block(0, 0.0, 2.0)
        assert (start, end) == (0.0, 2.0)
        assert rs.chip_for_block(0).next_free == 2.0
        assert rs.channel_for_block(0).next_free == 2.0

    def test_channel_contention_across_chips(self, rs):
        geo = rs.geometry
        # Two blocks on different chips of the same channel contend.
        b0 = 0
        b1 = next(b for b in range(32)
                  if geo.channel_of(b) == geo.channel_of(b0)
                  and geo.chip_of(b) != geo.chip_of(b0))
        rs.acquire_for_block(b0, 0.0, 2.0)
        start, _ = rs.acquire_for_block(b1, 0.0, 1.0)
        assert start == 2.0

    def test_parallel_channels_do_not_contend(self, rs):
        geo = rs.geometry
        b0 = 0
        b1 = next(b for b in range(32)
                  if geo.channel_of(b) != geo.channel_of(b0))
        rs.acquire_for_block(b0, 0.0, 2.0)
        start, _ = rs.acquire_for_block(b1, 0.0, 1.0)
        assert start == 0.0

    def test_horizon(self, rs):
        assert rs.horizon() == 0.0
        rs.acquire_for_block(0, 0.0, 3.5)
        assert rs.horizon() == 3.5
