"""Published trace profiles (Tables 1 and 3)."""

import pytest

from repro.errors import TraceError
from repro.traces.profiles import PROFILES, TRACE_NAMES, TraceProfile, profile
from repro.units import KIB


class TestTableValues:
    def test_six_traces(self):
        assert len(PROFILES) == 6

    def test_table3_order(self):
        assert TRACE_NAMES == ("ts0", "wdev0", "lun1", "usr0", "lun2", "ads")

    def test_write_ratio_descending(self):
        ratios = [PROFILES[n].write_ratio for n in TRACE_NAMES]
        assert ratios == sorted(ratios, reverse=True)

    def test_ts0_row(self):
        p = profile("ts0")
        assert p.n_requests == 1_801_734
        assert p.write_ratio == pytest.approx(0.824)
        assert p.mean_write_bytes == 8 * KIB
        assert p.hot_write_ratio == pytest.approx(0.505)

    def test_lun2_table1_row(self):
        p = profile("lun2")
        assert p.update_size_probs == (0.926, 0.025, 0.049)

    def test_buckets_sum_to_one(self):
        for p in PROFILES.values():
            assert sum(p.update_size_probs) == pytest.approx(1.0, abs=0.02)

    def test_small_updates_dominate(self):
        """Table 1's headline: >=66.3% of updates are <=4K."""
        for p in PROFILES.values():
            assert p.update_size_probs[0] >= 0.66


class TestValidation:
    def test_lookup_unknown(self):
        with pytest.raises(TraceError):
            profile("nope")

    def test_bad_write_ratio(self):
        with pytest.raises(TraceError):
            TraceProfile("x", 10, 1.5, 8192, 0.2, (1.0, 0.0, 0.0)).validate()

    def test_bad_bucket_sum(self):
        with pytest.raises(TraceError):
            TraceProfile("x", 10, 0.5, 8192, 0.2, (0.5, 0.1, 0.1)).validate()

    def test_bad_request_count(self):
        with pytest.raises(TraceError):
            TraceProfile("x", 0, 0.5, 8192, 0.2, (1.0, 0.0, 0.0)).validate()

    def test_bad_hot_ratio(self):
        with pytest.raises(TraceError):
            TraceProfile("x", 10, 0.5, 8192, 1.2, (1.0, 0.0, 0.0)).validate()

    def test_tiny_write_size(self):
        with pytest.raises(TraceError):
            TraceProfile("x", 10, 0.5, 100, 0.2, (1.0, 0.0, 0.0)).validate()
