"""BCH code model."""

import math

import pytest

from repro.errors import ConfigError
from repro.error.bch import BCHCode


@pytest.fixture
def code():
    return BCHCode()


class TestParameters:
    def test_default_geometry(self, code):
        assert code.payload_bytes == 512
        assert code.t == 5

    def test_payload_bits(self, code):
        assert code.payload_bits == 4096

    def test_parity_bits(self, code):
        # m = ceil(log2(4097)) = 13, so 13 * 5 = 65 parity bits.
        assert code.parity_bits == 65

    def test_codeword_bits(self, code):
        assert code.codeword_bits == 4096 + 65

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BCHCode(payload_bytes=0)
        with pytest.raises(ConfigError):
            BCHCode(t=0)


class TestCodewords:
    def test_codewords_for_subpage(self, code):
        assert code.codewords_for(4096) == 8

    def test_codewords_partial(self, code):
        assert code.codewords_for(513) == 2

    def test_codewords_zero(self, code):
        assert code.codewords_for(0) == 0

    def test_negative_rejected(self, code):
        with pytest.raises(ConfigError):
            code.codewords_for(-1)


class TestExpectedErrors:
    def test_linear_in_rber(self, code):
        assert code.expected_errors(2e-4) == pytest.approx(2 * code.expected_errors(1e-4))

    def test_value(self, code):
        assert code.expected_errors(2.8e-4) == pytest.approx(2.8e-4 * 4161)

    def test_negative_rber_rejected(self, code):
        with pytest.raises(ConfigError):
            code.expected_errors(-1e-4)


class TestFailureProbability:
    def test_zero_rber(self, code):
        assert code.failure_probability(0.0) == 0.0

    def test_certain_failure(self, code):
        assert code.failure_probability(1.0) == 1.0

    def test_monotone_in_rber(self, code):
        values = [code.failure_probability(r) for r in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_small_at_nominal_rber(self, code):
        # At the paper's 2.8e-4, t=5 per 512B leaves ample margin.
        assert code.failure_probability(2.8e-4) < 1e-2

    def test_matches_binomial_tail(self, code):
        # Cross-check against an explicit binomial sum at a larger p.
        p = 1e-3
        n = code.codeword_bits
        total = sum(
            math.comb(n, i) * p ** i * (1 - p) ** (n - i)
            for i in range(code.t + 1)
        )
        assert code.failure_probability(p) == pytest.approx(1 - total, rel=1e-6)

    def test_negative_rejected(self, code):
        with pytest.raises(ConfigError):
            code.failure_probability(-0.1)


class TestCorrectable:
    def test_within_capability(self, code):
        assert code.correctable(5)

    def test_beyond_capability(self, code):
        assert not code.correctable(6)
