"""Cached mapping table (DFTL-style translation extension)."""

import dataclasses

import pytest

from repro import SCHEMES, Simulator
from repro.config import TranslationConfig
from repro.errors import ConfigError
from repro.ftl.translation import CachedMappingTable
from repro.sim.ops import Cause, OpKind
from repro.traces import generate, profile

from conftest import tiny_config


def cmt(entries=4, pages=2):
    return CachedMappingTable(
        TranslationConfig(enabled=True, entries_per_page=entries,
                          cache_pages=pages))


class TestCachedMappingTable:
    def test_first_access_misses(self):
        table = cmt()
        assert table.access(0) == (True, False)
        assert table.stats.misses == 1

    def test_same_page_hits(self):
        table = cmt(entries=4)
        table.access(0)
        assert table.access(3) == (False, False)  # same translation page
        assert table.stats.hits == 1

    def test_different_page_misses(self):
        table = cmt(entries=4)
        table.access(0)
        assert table.access(4)[0] is True

    def test_lru_eviction(self):
        table = cmt(entries=1, pages=2)
        table.access(0)
        table.access(1)
        table.access(0)        # refresh 0; 1 becomes LRU
        table.access(2)        # evicts 1
        assert table.access(0)[0] is False
        assert table.access(1)[0] is True

    def test_dirty_eviction_causes_writeback(self):
        table = cmt(entries=1, pages=1)
        table.access(0, dirty=True)
        miss, writeback = table.access(1)
        assert miss and writeback
        assert table.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        table = cmt(entries=1, pages=1)
        table.access(0, dirty=False)
        assert table.access(1) == (True, False)

    def test_dirtiness_sticks_until_eviction(self):
        table = cmt(entries=1, pages=1)
        table.access(0, dirty=True)
        table.access(0, dirty=False)   # stays dirty
        assert table.access(1)[1] is True

    def test_hit_ratio(self):
        table = cmt()
        assert table.stats.hit_ratio == 1.0
        table.access(0)
        table.access(0)
        assert table.stats.hit_ratio == 0.5

    def test_flush(self):
        table = cmt(pages=4)
        table.access(0, dirty=True)
        table.access(8, dirty=False)
        assert table.flush() == 1
        assert table.resident_pages == 0

    def test_negative_key_rejected(self):
        with pytest.raises(ConfigError):
            cmt().access(-1)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TranslationConfig(entries_per_page=0).validate()
        with pytest.raises(ConfigError):
            TranslationConfig(cache_pages=0).validate()


def xlat_config(cache_pages=2, entries=8):
    cfg = tiny_config()
    return dataclasses.replace(
        cfg, translation=TranslationConfig(
            enabled=True, entries_per_page=entries, cache_pages=cache_pages))


class TestFtlIntegration:
    def test_disabled_by_default(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        assert ftl.cmt is None
        ops = ftl.handle_write([0], 0.0)
        assert not any(o.cause is Cause.TRANSLATION for o in ops)

    def test_miss_emits_translation_read(self, scheme_name):
        ftl = SCHEMES[scheme_name](xlat_config())
        ops = ftl.handle_write([0], 0.0)
        xlat = [o for o in ops if o.cause is Cause.TRANSLATION]
        assert any(o.kind is OpKind.READ for o in xlat)

    def test_repeated_access_hits(self, scheme_name):
        ftl = SCHEMES[scheme_name](xlat_config(cache_pages=8))
        ftl.handle_write([0], 0.0)
        ops = ftl.handle_write([0], 1.0)
        xlat = [o for o in ops if o.cause is Cause.TRANSLATION]
        assert xlat == []

    def test_mga_touches_second_level(self):
        from repro.ftl.base import SECOND_LEVEL_KEY_BASE
        mga = SCHEMES["mga"](xlat_config())
        keys = mga.translation_keys([0, 1])
        assert 0 in keys
        assert SECOND_LEVEL_KEY_BASE + 0 in keys
        assert SECOND_LEVEL_KEY_BASE + 1 in keys

    def test_mga_misses_more_than_ipu(self):
        """MGA's two-level table thrashes a small CMT harder — the
        translation-latency point the paper's introduction makes."""
        trace = generate(profile("ts0"), n_requests=1500, seed=9,
                         mean_interarrival_ms=1.0)
        misses = {}
        for scheme in ("ipu", "mga"):
            ftl = SCHEMES[scheme](xlat_config(cache_pages=2, entries=16))
            Simulator(ftl).run(trace)
            misses[scheme] = ftl.cmt.stats.misses
        assert misses["mga"] > misses["ipu"]

    def test_translation_counts_toward_latency(self):
        trace = generate(profile("ts0"), n_requests=800, seed=9,
                         mean_interarrival_ms=1.0)
        base = Simulator(SCHEMES["ipu"](tiny_config())).run(trace)
        xlat = Simulator(
            SCHEMES["ipu"](xlat_config(cache_pages=1, entries=1))).run(trace)
        assert xlat.avg_latency_ms > base.avg_latency_ms

    def test_translation_restores_paper_ordering(self):
        """With second-level translation charged (the cost the paper's
        introduction attributes to partial-programming schemes and IPU's
        contribution #1 eliminates), IPU beats MGA on latency — the
        paper's Figure 5 ordering."""
        from repro.experiments.runner import RunContext
        ctx = RunContext(scale="smoke", seed=21)
        cfg = dataclasses.replace(
            ctx.trace_config("ts0"),
            translation=TranslationConfig(
                enabled=True, entries_per_page=256, cache_pages=4))
        trace = ctx.trace("ts0")
        mga = Simulator(SCHEMES["mga"](cfg)).run(trace)
        ipu = Simulator(SCHEMES["ipu"](cfg)).run(trace)
        baseline = Simulator(SCHEMES["baseline"](cfg)).run(trace)
        assert ipu.avg_latency_ms < mga.avg_latency_ms
        assert ipu.avg_latency_ms < baseline.avg_latency_ms

    def test_translation_reads_not_in_error_metric(self):
        trace = generate(profile("ts0"), n_requests=800, seed=9,
                         mean_interarrival_ms=1.0)
        base = Simulator(SCHEMES["ipu"](tiny_config())).run(trace)
        xlat = Simulator(
            SCHEMES["ipu"](xlat_config(cache_pages=1, entries=1))).run(trace)
        assert xlat.read_bits == base.read_bits
