"""Parallel fan-out: worker-process replay must be bit-identical to the
sequential path, and the on-disk cache must short-circuit re-runs."""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import CellSpec, resolve_jobs, run_cells, simulate_cell
from repro.experiments.runner import RunContext

#: Short cells keep the fan-out affordable: the smoke scale floors the
#: trace at 1000 requests under this length factor.
FAST = dict(scale="smoke", seed=7, length_factor=0.25)

SCHEMES = ("baseline", "mga", "ipu")


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_auto_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        expected = max(1, os.cpu_count() or 1)
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected
        assert resolve_jobs(-4) == expected


class TestDifferentialDeterminism:
    def test_parallel_matches_sequential(self):
        """Baseline/MGA/IPU through a real worker pool == sequential,
        field for field (wall-clock fields excluded)."""
        par = RunContext(jobs=2, **FAST)
        seq = RunContext(**FAST)
        matrix = par.run_matrix(traces=("ts0",), schemes=SCHEMES)
        for scheme in SCHEMES:
            expect = seq.run("ts0", scheme).deterministic_dict()
            got = matrix[("ts0", scheme)].deterministic_dict()
            assert got == expect, f"{scheme}: parallel result diverged"

    def test_worker_entry_point_is_deterministic(self):
        """Two cold worker invocations of the same spec agree exactly."""
        spec = CellSpec(trace="ts0", scheme="ipu", **FAST)
        a, b = simulate_cell(spec), simulate_cell(spec)
        for d in (a, b):
            for name in ("wall_seconds", "gc_scan_seconds"):
                d.pop(name)
        assert a == b

    def test_run_cells_preserves_spec_order(self):
        specs = [CellSpec(trace="ts0", scheme=s, **FAST) for s in SCHEMES]
        payloads = run_cells(specs, jobs=2)
        assert [p["scheme"] for p in payloads] == list(SCHEMES)


class TestCacheIntegration:
    def test_warm_context_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = RunContext(cache=cache, **FAST)
        cold.run("ts0", "ipu")
        assert cold.executed_cells == 1
        assert cache.stats.misses == 1 and cache.stats.stores == 1

        warm = RunContext(cache=cache, **FAST)
        r = warm.run("ts0", "ipu")
        assert warm.executed_cells == 0
        assert cache.stats.hits == 1
        assert (r.deterministic_dict()
                == cold._results[("ts0", "ipu", None)].deterministic_dict())

    def test_parallel_workers_populate_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        ctx = RunContext(jobs=2, cache=cache, **FAST)
        ctx.run_matrix(traces=("ts0",), schemes=SCHEMES)
        assert ctx.executed_cells == len(SCHEMES)
        assert len(cache) == len(SCHEMES)

        warm = RunContext(jobs=2, cache=ResultCache(tmp_path), **FAST)
        warm.run_matrix(traces=("ts0",), schemes=SCHEMES)
        assert warm.executed_cells == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        ctx = RunContext(cache=cache, **FAST)
        key = ctx.cell_key("ts0", "ipu")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        r = ctx.run("ts0", "ipu")
        assert ctx.executed_cells == 1
        assert r.n_requests > 0
        # The torn entry was replaced by a good one.
        assert ResultCache(tmp_path).get(key) is not None


class TestExecutionDefaults:
    def test_configure_execution_reaches_shared_contexts(self, tmp_path):
        from repro.experiments import runner

        before_jobs = runner._EXEC_DEFAULTS["jobs"]
        before_cache = runner._EXEC_DEFAULTS["cache"]
        try:
            cache = ResultCache(tmp_path)
            runner.configure_execution(jobs=3, cache=cache)
            ctx = runner.default_context("smoke", seed=99)
            assert ctx.jobs == 3 and ctx.cache is cache
            # Existing memoised contexts are updated too.
            runner.configure_execution(jobs=None, cache=None)
            assert ctx.jobs is None and ctx.cache is None
        finally:
            runner.configure_execution(jobs=before_jobs, cache=before_cache)
            runner._DEFAULT_CONTEXTS.pop(("smoke", 99), None)
