"""Configuration validation and derived quantities."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    GeometryConfig,
    ReliabilityConfig,
    SCALES,
    SSDConfig,
    ScaleSpec,
    TimingConfig,
    paper_config,
    scaled_config,
)
from repro.errors import ConfigError
from repro.units import KIB


class TestGeometryConfig:
    def test_defaults_valid(self):
        GeometryConfig().validate()

    def test_paper_block_count(self):
        assert GeometryConfig().total_blocks == 65536

    def test_subpages_per_page(self):
        assert GeometryConfig().subpages_per_page == 4

    def test_chips_planes(self):
        g = GeometryConfig(channels=4, chips_per_channel=2, planes_per_chip=2)
        assert g.chips == 8
        assert g.planes == 16

    def test_blocks_per_plane(self):
        g = GeometryConfig(channels=2, chips_per_channel=1, planes_per_chip=1,
                           total_blocks=64)
        assert g.blocks_per_plane == 32

    def test_indivisible_blocks_rejected(self):
        g = GeometryConfig(channels=3, total_blocks=65536)
        with pytest.raises(ConfigError):
            g.validate()

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigError):
            GeometryConfig(channels=0).validate()

    def test_page_not_multiple_of_subpage_rejected(self):
        with pytest.raises(ConfigError):
            GeometryConfig(page_size=10_000).validate()

    def test_mlc_fewer_pages_than_slc_rejected(self):
        with pytest.raises(ConfigError):
            GeometryConfig(slc_pages_per_block=128,
                           mlc_pages_per_block=64).validate()


class TestTimingConfig:
    def test_table2_values(self):
        t = TimingConfig()
        assert t.slc_read_ms == 0.025
        assert t.mlc_read_ms == 0.05
        assert t.slc_write_ms == 0.3
        assert t.mlc_write_ms == 0.9
        assert t.erase_ms == 10.0
        assert t.ecc_min_ms == 0.0005
        assert t.ecc_max_ms == 0.0968

    def test_mode_selectors(self):
        t = TimingConfig()
        assert t.read_ms(slc=True) < t.read_ms(slc=False)
        assert t.write_ms(slc=True) < t.write_ms(slc=False)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(slc_read_ms=-1).validate()

    def test_ecc_ordering_enforced(self):
        with pytest.raises(ConfigError):
            TimingConfig(ecc_min_ms=0.1, ecc_max_ms=0.05).validate()


class TestReliabilityConfig:
    def test_defaults_valid(self):
        ReliabilityConfig().validate()

    def test_calibration_points(self):
        r = ReliabilityConfig()
        assert r.rber_conventional_ref == pytest.approx(2.8e-4)
        assert r.rber_partial_ref == pytest.approx(3.8e-4)
        assert r.reference_pe_cycles == 4000

    def test_partial_below_conventional_rejected(self):
        with pytest.raises(ConfigError):
            ReliabilityConfig(rber_partial_ref=1e-4).validate()

    def test_negative_pe_rejected(self):
        with pytest.raises(ConfigError):
            ReliabilityConfig(initial_pe_cycles=-1).validate()

    def test_max_page_programs_floor(self):
        with pytest.raises(ConfigError):
            ReliabilityConfig(max_page_programs=0).validate()

    def test_manufacturer_limit_default(self):
        assert ReliabilityConfig().max_page_programs == 4


class TestCacheConfig:
    def test_defaults_valid(self):
        CacheConfig().validate()

    def test_table2_slc_ratio(self):
        assert CacheConfig().slc_ratio == 0.05

    def test_table2_gc_threshold(self):
        assert CacheConfig().gc_threshold == 0.05

    def test_slc_ratio_bounds(self):
        with pytest.raises(ConfigError):
            CacheConfig(slc_ratio=0.0).validate()
        with pytest.raises(ConfigError):
            CacheConfig(slc_ratio=1.0).validate()

    def test_restore_below_threshold_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(gc_threshold=0.2, gc_restore=0.1).validate()

    def test_gc_pages_floor(self):
        with pytest.raises(ConfigError):
            CacheConfig(gc_pages_per_trigger=0).validate()


class TestSSDConfig:
    def test_paper_config(self):
        cfg = paper_config()
        assert cfg.geometry.total_blocks == 65536
        assert cfg.slc_blocks == pytest.approx(65536 * 0.05, abs=1)

    def test_capacity_partition(self):
        cfg = paper_config()
        assert cfg.capacity_bytes == cfg.slc_capacity_bytes + cfg.mlc_capacity_bytes

    def test_slc_capacity_formula(self):
        cfg = paper_config()
        assert cfg.slc_capacity_bytes == cfg.slc_blocks * 64 * 16 * KIB

    def test_with_pe_cycles(self):
        cfg = paper_config().with_pe_cycles(8000)
        assert cfg.reliability.initial_pe_cycles == 8000
        # Original untouched (frozen dataclasses).
        assert paper_config().reliability.initial_pe_cycles == 4000

    def test_describe_contains_table2_rows(self):
        desc = paper_config().describe()
        assert desc["Block number"] == 65536
        assert desc["SLC mode ratio"] == "5%"
        assert desc["SLC/MLC Page"] == "64/128"
        assert desc["Page size"] == "16KB"
        assert desc["FTL scheme"] == "Page"

    def test_validate_chains(self):
        cfg = SSDConfig()
        assert cfg.validate() is cfg


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "small", "medium", "paper"}

    def test_paper_scale_blocks(self):
        assert SCALES["paper"].total_blocks == 65536

    def test_scaled_config_divisible(self):
        for name in SCALES:
            cfg = scaled_config(name)
            assert cfg.geometry.total_blocks % cfg.geometry.planes == 0

    def test_scaled_config_keeps_latencies(self):
        cfg = scaled_config("smoke")
        assert cfg.timing == TimingConfig()

    def test_invalid_scale_spec(self):
        with pytest.raises(ConfigError):
            ScaleSpec("bad", total_blocks=0, target_requests=1,
                      max_requests=1).validate()

    def test_target_above_max_rejected(self):
        with pytest.raises(ConfigError):
            ScaleSpec("bad", total_blocks=64, target_requests=10,
                      max_requests=5).validate()

    def test_config_is_frozen(self):
        cfg = paper_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.seed = 3
