"""Wear tracking and static wear-levelling triggers."""

import pytest

from repro.config import CacheConfig
from repro.nand.block import Block, BlockState
from repro.nand.cell import CellMode
from repro.nand.wear import WearTracker


def make_blocks(n=4):
    return [Block(i, CellMode.SLC, 2, 4) for i in range(n)]


def fill(block, lsn0=0, now=0.0):
    block.open_as(1, now)
    block.program(0, [0], [lsn0], now, 4)
    block.program(1, [0], [lsn0 + 1], now, 4)


@pytest.fixture
def cache():
    return CacheConfig(wear_leveling_gap=2, wear_leveling_period=3)


class TestSpread:
    def test_initial_spread_zero(self, cache):
        tracker = WearTracker(make_blocks(), cache)
        assert tracker.spread == 0
        assert tracker.min_erase == 0
        assert tracker.max_erase == 0

    def test_spread_tracks_erases(self, cache):
        blocks = make_blocks()
        blocks[0].erase_count = 5
        tracker = WearTracker(blocks, cache)
        assert tracker.spread == 5
        assert tracker.max_erase == 5


class TestShouldLevel:
    def test_disabled(self):
        cache = CacheConfig(static_wear_leveling=False)
        tracker = WearTracker(make_blocks(), cache)
        for _ in range(100):
            tracker.note_erase()
        assert not tracker.should_level()

    def test_period_gates(self, cache):
        blocks = make_blocks()
        blocks[0].erase_count = 10
        tracker = WearTracker(blocks, cache)
        tracker.note_erase()
        assert not tracker.should_level()  # period (3) not reached
        tracker.note_erase()
        tracker.note_erase()
        assert tracker.should_level()

    def test_small_spread_no_level(self, cache):
        blocks = make_blocks()
        blocks[0].erase_count = 1
        tracker = WearTracker(blocks, cache)
        for _ in range(3):
            tracker.note_erase()
        assert not tracker.should_level()

    def test_counter_resets_after_check(self, cache):
        blocks = make_blocks()
        blocks[0].erase_count = 10
        tracker = WearTracker(blocks, cache)
        for _ in range(3):
            tracker.note_erase()
        assert tracker.should_level()
        assert not tracker.should_level()  # counter consumed


class TestCandidates:
    def test_coldest_block_prefers_low_wear_full(self, cache):
        blocks = make_blocks()
        fill(blocks[0])
        fill(blocks[1], lsn0=10)
        blocks[1].erase_count = 7
        tracker = WearTracker(blocks, cache)
        assert tracker.coldest_block() is blocks[0]

    def test_coldest_requires_valid_data(self, cache):
        blocks = make_blocks()
        fill(blocks[0])
        blocks[0].invalidate(0, 0)
        blocks[0].invalidate(1, 0)
        tracker = WearTracker(blocks, cache)
        assert tracker.coldest_block() is None

    def test_most_worn_free(self, cache):
        blocks = make_blocks()
        blocks[2].erase_count = 9
        tracker = WearTracker(blocks, cache)
        assert tracker.most_worn_free() is blocks[2]

    def test_most_worn_free_none_when_all_open(self, cache):
        blocks = make_blocks(2)
        fill(blocks[0])
        fill(blocks[1], lsn0=10)
        tracker = WearTracker(blocks, cache)
        assert tracker.most_worn_free() is None

    def test_summary_keys(self, cache):
        tracker = WearTracker(make_blocks(), cache)
        summary = tracker.summary()
        assert set(summary) == {"min_erase", "max_erase", "spread", "leveling_moves"}
