"""Property tests (hypothesis) for the front-end write buffer.

The central property: interposing the write-back buffer between a
workload and an FTL is *transparent* — after the final drain, the flash
holds exactly the logical state a direct (bufferless) run produces,
for any scheme, any buffer geometry and any interleaving of pressure
flushes, delay expiries and read hits.  Alongside it, the counter
consistency (``hits + misses == reads``) and the capacity bound that
``docs/FRONTEND.md`` promises.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro import SCHEMES
from repro.errors import ConfigError
from repro.frontend import FrontendConfig, WriteBuffer

from conftest import tiny_config

# Logical space: 48 subpages (12 logical pages) — small enough that
# random workloads revisit addresses and exercise merging and GC.
LSN_SPACE = 48

write_op = st.tuples(
    st.just("w"),
    st.integers(min_value=0, max_value=LSN_SPACE - 1),
    st.integers(min_value=1, max_value=4),
)
read_op = st.tuples(
    st.just("r"),
    st.integers(min_value=0, max_value=LSN_SPACE - 1),
    st.integers(min_value=1, max_value=4),
)
workload = st.lists(st.one_of(write_op, read_op), min_size=1, max_size=100)

#: Randomized buffer geometries: capacity, watermark, writeback delay
#: (0 = immediate destage, huge = drain-only) and coalescing span cap.
buffer_configs = st.builds(
    lambda cap, wm, delay, span: FrontendConfig(
        enabled=True, buffer_subpages=cap, flush_watermark=wm,
        writeback_delay_ms=delay, flush_span_subpages=span),
    cap=st.integers(min_value=2, max_value=24),
    wm=st.floats(min_value=0.2, max_value=0.9),
    delay=st.sampled_from([0.0, 0.7, 3.0, 1e9]),
    span=st.integers(min_value=1, max_value=8),
)


def expand(lsn, length):
    return list(range(lsn, min(lsn + length, LSN_SPACE)))


def run_direct(scheme, ops):
    """The bufferless oracle: writes hit the FTL immediately."""
    ftl = SCHEMES[scheme](tiny_config())
    now = 0.0
    for kind, lsn, length in ops:
        lsns = expand(lsn, length)
        if kind == "w":
            ftl.handle_write(lsns, now)
        else:
            ftl.handle_read(lsns, now)
        now += 0.5
    return ftl


def run_buffered(scheme, ops, fe):
    """The same workload through a WriteBuffer, drained at the end."""
    ftl = SCHEMES[scheme](tiny_config())
    buf = WriteBuffer(fe)
    now = 0.0
    reads = 0
    for kind, lsn, length in ops:
        lsns = expand(lsn, length)
        if kind == "w":
            for span in buf.write(lsns, now):
                ftl.handle_write(span, now)
        else:
            reads += len(lsns)
            hits, misses = buf.split_read(lsns)
            assert len(hits) + len(misses) == len(lsns)
            if misses:
                ftl.handle_read(misses, now)
        # Periodic writeback sweep, as the simulator runs it.
        for span in buf.expire(now):
            ftl.handle_write(span, now)
        assert buf.occupancy <= fe.buffer_subpages
        now += 0.5
    for span in buf.drain():
        ftl.handle_write(span, now)
    assert buf.occupancy == 0
    return ftl, buf, reads


def bound_lsns(ftl):
    return {lsn for lsn, _ in ftl.iter_bindings()}


@pytest.mark.parametrize("scheme", ["baseline", "mga", "ipu"])
class TestBufferTransparency:
    @given(ops=workload, fe=buffer_configs)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_final_flash_state_matches_direct_run(self, scheme, ops, fe):
        direct = run_direct(scheme, ops)
        buffered, _, _ = run_buffered(scheme, ops, fe)
        assert bound_lsns(buffered) == bound_lsns(direct)
        buffered.check_consistency()
        direct.check_consistency()

    @given(ops=workload, fe=buffer_configs)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hit_miss_counters_are_consistent(self, scheme, ops, fe):
        _, buf, reads = run_buffered(scheme, ops, fe)
        assert buf.stats.read_hits + buf.stats.read_misses == reads

    @given(ops=workload, fe=buffer_configs)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_capacity_and_flow_conservation(self, scheme, ops, fe):
        """Peak occupancy respects the capacity, and every buffered
        subpage is accounted for: inserted = merged + flushed (+0 left)."""
        _, buf, _ = run_buffered(scheme, ops, fe)
        stats = buf.stats
        assert stats.peak_occupancy <= fe.buffer_subpages
        inserted = sum(len(expand(lsn, length))
                       for kind, lsn, length in ops if kind == "w")
        assert inserted == stats.merged_writes + stats.flushed_subpages
        # Coalescing rides extra subpages on a span: span length - 1 each.
        assert stats.coalesced_writes == stats.flushed_subpages - stats.flushes


class TestBufferUnits:
    def fe(self, **kw):
        base = dict(enabled=True, buffer_subpages=8, flush_watermark=0.5,
                    writeback_delay_ms=2.0, flush_span_subpages=4)
        base.update(kw)
        return FrontendConfig(**base)

    def test_overwrite_merges_in_place(self):
        buf = WriteBuffer(self.fe())
        assert buf.write([3], 0.0) == []
        assert buf.write([3], 1.0) == []
        assert buf.occupancy == 1
        assert buf.stats.merged_writes == 1

    def test_adjacent_lsns_coalesce_into_one_span(self):
        buf = WriteBuffer(self.fe(writeback_delay_ms=0.0))
        buf.write([5], 0.0)
        buf.write([6], 0.0)
        buf.write([4], 0.0)
        spans = buf.expire(0.0)
        assert spans == [[4, 5, 6]]
        assert buf.stats.flushes == 1
        assert buf.stats.coalesced_writes == 2

    def test_span_cap_limits_coalescing(self):
        buf = WriteBuffer(self.fe(writeback_delay_ms=0.0,
                                  flush_span_subpages=2))
        buf.write([0, 1, 2, 3], 0.0)
        spans = buf.expire(0.0)
        assert all(len(span) <= 2 for span in spans)
        assert sorted(lsn for span in spans for lsn in span) == [0, 1, 2, 3]

    def test_pressure_flush_drains_to_watermark(self):
        buf = WriteBuffer(self.fe(buffer_subpages=4, flush_watermark=0.5,
                                  writeback_delay_ms=1e9,
                                  flush_span_subpages=1))
        spans = buf.write([0, 10, 20, 30, 40], 0.0)
        # The fifth insert overflowed: drained to watermark (2), then
        # inserted -> occupancy 3, oldest entries flushed first.
        assert spans == [[0], [10]]
        assert buf.occupancy == 3

    def test_expiry_honours_writeback_delay(self):
        buf = WriteBuffer(self.fe(writeback_delay_ms=2.0))
        buf.write([7], 0.0)
        buf.write([30], 1.5)
        assert buf.expire(1.0) == []
        assert buf.expire(2.0) == [[7]]     # 7 aged out, 30 still fresh
        assert buf.occupancy == 1

    def test_overwrite_refreshes_dirty_age(self):
        buf = WriteBuffer(self.fe(writeback_delay_ms=2.0))
        buf.write([7], 0.0)
        buf.write([7], 1.9)                 # merge restarts the clock
        assert buf.expire(2.5) == []
        assert buf.expire(3.9) == [[7]]

    def test_drop_all_counts_and_empties(self):
        buf = WriteBuffer(self.fe())
        buf.write([1, 2, 3], 0.0)
        assert buf.drop_all() == 3
        assert buf.occupancy == 0
        assert buf.stats.dropped_subpages == 3
        assert buf.stats.flushed_subpages == 0

    def test_read_hits_come_from_the_buffer(self):
        buf = WriteBuffer(self.fe())
        buf.write([4, 5], 0.0)
        hits, misses = buf.split_read([3, 4, 5, 6])
        assert hits == [4, 5]
        assert misses == [3, 6]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FrontendConfig(flush_watermark=1.0).validate()
        with pytest.raises(ConfigError):
            FrontendConfig(queue_depth=0).validate()
        with pytest.raises(ConfigError):
            FrontendConfig(buffer_subpages=0).validate()
        with pytest.raises(ConfigError):
            FrontendConfig.from_dict({"no_such_knob": 1})

    def test_config_round_trips_through_json(self):
        fe = FrontendConfig.from_qd(17)
        assert FrontendConfig.from_json(fe.to_json()) == fe
        assert not FrontendConfig().enabled
        assert fe.enabled
