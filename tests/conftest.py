"""Shared fixtures: small configurations, FTLs, and traces."""

from __future__ import annotations

import pytest

from repro import SCHEMES, BaselineFTL, IPUFTL, MGAFTL
from repro.config import (
    CacheConfig,
    GeometryConfig,
    SSDConfig,
    scaled_config,
)
from repro.traces import generate, profile


def tiny_config(seed: int = 0, **cache_kwargs) -> SSDConfig:
    """A deliberately small device: 2 channels x 1 chip x 1 plane,
    32 blocks, 25% SLC (8 blocks — enough for the three IPU level actives
    plus the GC reserve) — fast enough for exhaustive unit testing while
    still exercising GC."""
    geometry = GeometryConfig(
        channels=2, chips_per_channel=1, planes_per_chip=1, total_blocks=32)
    cache = CacheConfig(slc_ratio=0.25, **cache_kwargs)
    return SSDConfig(geometry=geometry, cache=cache, seed=seed).validate()


@pytest.fixture
def config():
    return tiny_config()


@pytest.fixture
def smoke_config():
    return scaled_config("smoke", seed=0)


@pytest.fixture(params=["baseline", "mga", "ipu"])
def scheme_name(request):
    return request.param


@pytest.fixture
def ftl(scheme_name, config):
    return SCHEMES[scheme_name](config)


@pytest.fixture
def baseline(config):
    return BaselineFTL(config)


@pytest.fixture
def mga(config):
    return MGAFTL(config)


@pytest.fixture
def ipu(config):
    return IPUFTL(config)


@pytest.fixture
def short_trace():
    """~2000 requests of the ts0 profile, enough to trigger SLC GC on the
    tiny config."""
    return generate(profile("ts0"), n_requests=2000, seed=11,
                    mean_interarrival_ms=0.6)
