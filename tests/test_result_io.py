"""SimulationResult (de)serialisation and cache-key stability."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import SCHEMES, SSDConfig
from repro.errors import SimulationError
from repro.experiments.cache import CACHE_SCHEMA_VERSION, cell_key
from repro.sim import Simulator
from repro.sim.simulator import SimulationResult
from repro.traces.profiles import profile

from conftest import tiny_config


@pytest.fixture(scope="module")
def result():
    """One real replay's result (IPU over a short ts0 burst)."""
    from repro.traces import generate

    trace = generate(profile("ts0"), n_requests=800, seed=5,
                     mean_interarrival_ms=0.6)
    return Simulator(SCHEMES["ipu"](tiny_config())).run(trace)


class TestRoundTrip:
    def test_json_round_trip_is_exact(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        back = SimulationResult.from_dict(payload)
        assert back.to_dict() == result.to_dict()

    def test_arrays_and_level_writes_restore_types(self, result):
        back = SimulationResult.from_dict(result.to_dict())
        assert isinstance(back.read_latencies, np.ndarray)
        assert back.read_latencies.dtype == np.float64
        assert np.array_equal(back.read_latencies, result.read_latencies)
        assert np.array_equal(back.write_latencies, result.write_latencies)
        assert back.level_writes == result.level_writes
        assert all(isinstance(k, int) for k in back.level_writes)

    def test_headline_metrics_survive(self, result):
        back = SimulationResult.from_dict(result.to_dict())
        assert back.avg_latency_ms == result.avg_latency_ms
        assert back.avg_read_latency_ms == result.avg_read_latency_ms
        assert back.avg_write_latency_ms == result.avg_write_latency_ms
        assert back.read_error_rate == result.read_error_rate
        assert back.summary() == result.summary()

    def test_unknown_field_rejected(self, result):
        payload = result.to_dict()
        payload["frobnication_index"] = 1
        with pytest.raises(SimulationError):
            SimulationResult.from_dict(payload)

    def test_deterministic_dict_drops_wall_clock(self, result):
        det = result.deterministic_dict()
        for name in SimulationResult.NONDETERMINISTIC_FIELDS:
            assert name not in det
        assert det["n_requests"] == result.n_requests


KEY_ARGS = dict(n_requests=4000, interarrival_ms=0.52, scheme="ipu",
                scale="smoke", seed=1, length_factor=1.0, pe=None)


def key_for(config: SSDConfig, **overrides) -> str:
    kwargs = {**KEY_ARGS, **overrides}
    return cell_key(config, profile(kwargs.pop("trace", "ts0")), **kwargs)


class TestCellKey:
    def test_same_inputs_same_key(self):
        # Two independently constructed but equal configs hash alike.
        assert key_for(tiny_config()) == key_for(tiny_config())
        k = key_for(tiny_config())
        assert len(k) == 64 and int(k, 16) >= 0

    def test_every_table2_field_moves_the_key(self):
        """Changing any Table-2 configuration field must change the key."""
        base = tiny_config()
        variants = {
            "total_blocks": dataclasses.replace(
                base, geometry=dataclasses.replace(base.geometry,
                                                   total_blocks=34)),
            "slc_ratio": dataclasses.replace(
                base, cache=dataclasses.replace(base.cache, slc_ratio=0.20)),
            "slc_pages_per_block": dataclasses.replace(
                base, geometry=dataclasses.replace(base.geometry,
                                                   slc_pages_per_block=32)),
            "page_size": dataclasses.replace(
                base, geometry=dataclasses.replace(base.geometry,
                                                   page_size=32 * 1024)),
            "gc_threshold": dataclasses.replace(
                base, cache=dataclasses.replace(base.cache,
                                                gc_threshold=0.08)),
            "wear_leveling": dataclasses.replace(
                base, cache=dataclasses.replace(
                    base.cache, static_wear_leveling=False)),
            "slc_read_ms": dataclasses.replace(
                base, timing=dataclasses.replace(base.timing,
                                                 slc_read_ms=0.030)),
            "mlc_write_ms": dataclasses.replace(
                base, timing=dataclasses.replace(base.timing,
                                                 mlc_write_ms=1.1)),
            "erase_ms": dataclasses.replace(
                base, timing=dataclasses.replace(base.timing, erase_ms=12.0)),
            "ecc_max_ms": dataclasses.replace(
                base, timing=dataclasses.replace(base.timing,
                                                 ecc_max_ms=0.1)),
            "initial_pe_cycles": base.with_pe_cycles(2000),
        }
        reference = key_for(base)
        keys = {name: key_for(cfg) for name, cfg in variants.items()}
        for name, key in keys.items():
            assert key != reference, f"{name} change did not move the key"
        assert len(set(keys.values())) == len(keys), "variant keys collide"

    def test_cell_identity_moves_the_key(self):
        base = tiny_config()
        reference = key_for(base)
        assert key_for(base, scheme="mga") != reference
        assert key_for(base, seed=2) != reference
        assert key_for(base, scale="small") != reference
        assert key_for(base, n_requests=4001) != reference
        assert key_for(base, interarrival_ms=0.53) != reference
        assert key_for(base, length_factor=0.35) != reference
        assert key_for(base, pe=8000) != reference
        assert key_for(base, trace="lun2") != reference

    def test_schema_version_guards_the_key(self, monkeypatch):
        import repro.experiments.cache as cache_mod

        base = tiny_config()
        reference = key_for(base)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert key_for(base) != reference
