"""Property-based tests (hypothesis).

The central property: every FTL scheme, fed an arbitrary interleaving of
writes and reads over a small logical space, must behave like a dict —
after any prefix of operations, each written logical subpage maps to
exactly one valid physical subpage that still records its LSN, no matter
how much garbage collection, promotion or eviction happened in between.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SCHEMES
from repro.nand.block import Block, BlockState
from repro.nand.cell import CellMode
from repro.traces import characterize, generate, profile

from conftest import tiny_config

# Logical space: 48 subpages (12 logical pages) — small enough that random
# workloads revisit addresses and trigger updates, promotions and GC.
LSN_SPACE = 48

write_op = st.tuples(
    st.just("w"),
    st.integers(min_value=0, max_value=LSN_SPACE - 1),
    st.integers(min_value=1, max_value=4),
)
read_op = st.tuples(
    st.just("r"),
    st.integers(min_value=0, max_value=LSN_SPACE - 1),
    st.integers(min_value=1, max_value=4),
)
workload = st.lists(st.one_of(write_op, read_op), min_size=1, max_size=120)


def run_workload(scheme, ops):
    ftl = SCHEMES[scheme](tiny_config())
    oracle = {}
    now = 0.0
    for kind, lsn, length in ops:
        lsns = [l for l in range(lsn, min(lsn + length, LSN_SPACE))]
        if kind == "w":
            ftl.handle_write(lsns, now)
            stamp = now
            for l in lsns:
                oracle[l] = stamp
        else:
            ftl.handle_read(lsns, now)
        now += 0.5
    return ftl, oracle


@pytest.mark.parametrize("scheme", ["baseline", "mga", "ipu", "delta"])
class TestFtlVersusOracle:
    @given(ops=workload)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_read_your_writes(self, scheme, ops):
        ftl, oracle = run_workload(scheme, ops)
        for lsn in oracle:
            ppa = ftl.lookup(lsn)
            assert ppa is not None, f"{scheme}: LSN {lsn} unmapped"
            block = ftl.flash.block(ppa.block)
            assert block.valid[ppa.page, ppa.slot]
            assert int(block.slot_lsn[ppa.page, ppa.slot]) == lsn

    @given(ops=workload)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_unwritten_stays_unmapped(self, scheme, ops):
        ftl, oracle = run_workload(scheme, ops)
        for lsn in range(LSN_SPACE):
            if lsn not in oracle:
                assert ftl.lookup(lsn) is None

    @given(ops=workload)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_consistency_invariant(self, scheme, ops):
        ftl, _ = run_workload(scheme, ops)
        ftl.check_consistency()

    @given(ops=workload)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_flash_invariants(self, scheme, ops):
        ftl, _ = run_workload(scheme, ops)
        limit = ftl.config.reliability.max_page_programs
        for block in ftl.flash.blocks:
            # Counter consistency.
            assert block.n_valid == int(block.valid.sum())
            assert block.n_programmed == int(block.programmed.sum())
            assert block.n_invalid == block.n_programmed - block.n_valid
            # Valid implies programmed.
            assert not (block.valid & ~block.programmed).any()
            # Sequential programming: nothing beyond next_page.
            if block.next_page < block.pages:
                assert not block.programmed[block.next_page:].any()
            # Manufacturer pass limit.
            assert (block.program_count <= limit).all()
            # MLC pages receive at most one pass.
            if not block.mode.is_slc:
                assert (block.program_count <= 1).all()


class TestIpuSpecificProperties:
    @given(ops=workload)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ipu_never_disturbs_valid_in_page_data(self, ops):
        ftl, _ = run_workload("ipu", ops)
        assert ftl.flash.disturbed_valid_subpages == 0

    @given(ops=workload)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ipu_slc_pages_hold_one_chunk(self, ops):
        """An IPU SLC page only holds subpages of one logical page."""
        ftl, _ = run_workload("ipu", ops)
        spp = ftl.geometry.subpages_per_page
        for block in ftl.flash.region_blocks(True):
            for page in range(block.next_page):
                lpns = {int(block.slot_lsn[page, s]) // spp
                        for s in block.valid_slots_of_page(page)}
                assert len(lpns) <= 1


class TestGeneratorProperties:
    @given(
        name=st.sampled_from(["ts0", "wdev0", "lun1", "usr0", "lun2", "ads"]),
        n=st.integers(min_value=500, max_value=4000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_marginals_hold_for_any_seed(self, name, n, seed):
        prof = profile(name)
        trace = generate(prof, n_requests=n, seed=seed)
        stats = characterize(trace)
        assert len(trace) == n
        assert stats.write_ratio == pytest.approx(prof.write_ratio, abs=0.02)
        assert stats.hot_write_ratio == pytest.approx(
            prof.hot_write_ratio, abs=0.08)
        assert (trace.sizes % 4096 == 0).all()
        assert (np.diff(trace.times_ms) >= 0).all()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_first_write_precedes_updates(self, seed):
        trace = generate(profile("ts0"), n_requests=800, seed=seed)
        sizes_at_first = {}
        for i in range(len(trace)):
            if not trace.is_write[i]:
                continue
            off = int(trace.offsets[i])
            if off in sizes_at_first:
                assert int(trace.sizes[i]) == sizes_at_first[off]
            else:
                sizes_at_first[off] = int(trace.sizes[i])


class TestIsrProperties:
    @given(
        ages=st.lists(st.floats(min_value=0.0, max_value=1e6),
                      min_size=1, max_size=16),
        t_mean=st.floats(min_value=1e-3, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_coldness_weight_bounds(self, ages, t_mean):
        from repro.ftl.hotcold import coldness_weight
        weights = coldness_weight(np.array(ages), t_mean)
        assert ((weights >= 0.0) & (weights < 1.0 + 1e-12)).all()

    @given(
        n_valid=st.integers(min_value=0, max_value=8),
        n_invalid=st.integers(min_value=0, max_value=8),
        now=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_isr_bounds(self, n_valid, n_invalid, now):
        from repro.ftl.hotcold import block_isr
        block = Block(0, CellMode.SLC, 4, 4)
        block.open_as(1, 0.0)
        total = n_valid + n_invalid
        placed = 0
        for page in range(4):
            slots = list(range(min(4, total - placed)))
            if not slots:
                break
            block.program(page, slots, [placed + s for s in slots], 0.0, 4)
            placed += len(slots)
        invalidated = 0
        for page in range(4):
            for slot in block.valid_slots_of_page(page):
                if invalidated >= n_invalid:
                    break
                block.invalidate(page, slot)
                invalidated += 1
        score = block_isr(block, now)
        assert 0.0 <= score <= 1.0 + 1e-9
