"""Cell-mode properties."""

from repro.nand.cell import CellMode


class TestCellMode:
    def test_is_slc(self):
        assert CellMode.SLC.is_slc
        assert not CellMode.MLC.is_slc

    def test_bits_per_cell(self):
        assert CellMode.SLC.bits_per_cell == 1
        assert CellMode.MLC.bits_per_cell == 2

    def test_pages_per_block_selector(self):
        assert CellMode.SLC.pages_per_block(64, 128) == 64
        assert CellMode.MLC.pages_per_block(64, 128) == 128

    def test_endurance_ratio_paper(self):
        # Section 4.3.2: SLC:MLC endurance is 10:1.
        assert CellMode.SLC.endurance_factor == 10 * CellMode.MLC.endurance_factor
