"""Physical address arithmetic."""

import pytest

from repro.config import GeometryConfig
from repro.errors import ConfigError
from repro.nand.geometry import Geometry, PPA


@pytest.fixture
def geo():
    return Geometry(GeometryConfig(
        channels=2, chips_per_channel=2, planes_per_chip=2, total_blocks=64))


class TestHierarchy:
    def test_counts(self, geo):
        assert geo.channels == 2
        assert geo.chips == 4
        assert geo.planes == 8
        assert geo.blocks_per_plane == 8

    def test_plane_of_first_block(self, geo):
        assert geo.plane_of(0) == 0

    def test_plane_of_last_block(self, geo):
        assert geo.plane_of(63) == 7

    def test_chip_of(self, geo):
        # planes 0,1 -> chip 0; planes 6,7 -> chip 3
        assert geo.chip_of(0) == 0
        assert geo.chip_of(63) == 3

    def test_channel_of(self, geo):
        assert geo.channel_of(0) == 0
        assert geo.channel_of(63) == 1

    def test_consistency_chip_channel(self, geo):
        for block in range(64):
            chip = geo.chip_of(block)
            assert geo.channel_of(block) == chip // 2

    def test_blocks_of_plane_partition(self, geo):
        seen = set()
        for plane in range(geo.planes):
            blocks = set(geo.blocks_of_plane(plane))
            assert not blocks & seen
            seen |= blocks
        assert seen == set(range(64))

    def test_blocks_of_plane_matches_plane_of(self, geo):
        for plane in range(geo.planes):
            for block in geo.blocks_of_plane(plane):
                assert geo.plane_of(block) == plane

    def test_out_of_range_block(self, geo):
        with pytest.raises(ConfigError):
            geo.plane_of(64)
        with pytest.raises(ConfigError):
            geo.plane_of(-1)

    def test_out_of_range_plane(self, geo):
        with pytest.raises(ConfigError):
            geo.blocks_of_plane(8)


class TestLogicalSpace:
    def test_lpn_of_lsn(self, geo):
        assert geo.lpn_of_lsn(0) == 0
        assert geo.lpn_of_lsn(3) == 0
        assert geo.lpn_of_lsn(4) == 1

    def test_lsn_range_of_lpn(self, geo):
        assert list(geo.lsn_range_of_lpn(2)) == [8, 9, 10, 11]

    def test_lpn_lsn_roundtrip(self, geo):
        for lsn in range(32):
            assert lsn in geo.lsn_range_of_lpn(geo.lpn_of_lsn(lsn))

    def test_negative_lsn_rejected(self, geo):
        with pytest.raises(ConfigError):
            geo.lpn_of_lsn(-1)

    def test_byte_range_single_subpage(self, geo):
        assert list(geo.byte_range_to_lsns(0, 4096)) == [0]

    def test_byte_range_straddles(self, geo):
        # 4 KiB starting 1 KiB into subpage 0 touches subpages 0 and 1.
        assert list(geo.byte_range_to_lsns(1024, 4096)) == [0, 1]

    def test_byte_range_large(self, geo):
        lsns = list(geo.byte_range_to_lsns(16384, 32768))
        assert lsns == [4, 5, 6, 7, 8, 9, 10, 11]

    def test_byte_range_zero_length_rejected(self, geo):
        with pytest.raises(ConfigError):
            geo.byte_range_to_lsns(0, 0)

    def test_byte_range_negative_offset_rejected(self, geo):
        with pytest.raises(ConfigError):
            geo.byte_range_to_lsns(-1, 4096)


class TestCapacity:
    def test_pages_per_block_modes(self, geo):
        assert geo.pages_per_block(slc=True) == 64
        assert geo.pages_per_block(slc=False) == 128

    def test_subpages_per_block(self, geo):
        assert geo.subpages_per_block(slc=True) == 256
        assert geo.subpages_per_block(slc=False) == 512


class TestPPA:
    def test_tuple_fields(self):
        ppa = PPA(3, 7, 1)
        assert ppa.block == 3
        assert ppa.page == 7
        assert ppa.slot == 1

    def test_equality(self):
        assert PPA(1, 2, 3) == PPA(1, 2, 3)
        assert PPA(1, 2, 3) != PPA(1, 2, 0)
