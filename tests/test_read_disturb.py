"""Read-disturb extension (optional; off by default)."""

import dataclasses

import pytest

from repro import IPUFTL, Simulator
from repro.nand import FlashArray
from repro.traces import generate, profile

from conftest import tiny_config


def rd_config(ratio=0.01):
    cfg = tiny_config()
    return dataclasses.replace(
        cfg, reliability=dataclasses.replace(
            cfg.reliability, read_disturb_unit_ratio=ratio))


def programmed_flash(cfg):
    flash = FlashArray(cfg)
    block = flash.block(flash.slc_block_ids[0])
    block.open_as(1, 0.0)
    flash.program(block.block_id, 0, [0, 1], [1, 2], 0.0)
    return flash, block


class TestReadDisturb:
    def test_off_by_default(self):
        flash, block = programmed_flash(tiny_config())
        before = flash.subpage_rbers(block.block_id, 0, [0])[0]
        for t in range(50):
            flash.read(block.block_id, 0, [0], float(t))
        after = flash.subpage_rbers(block.block_id, 0, [0])[0]
        assert after == before

    def test_reads_raise_rber_when_enabled(self):
        flash, block = programmed_flash(rd_config())
        before = flash.subpage_rbers(block.block_id, 0, [0])[0]
        for t in range(50):
            flash.read(block.block_id, 0, [0], float(t))
        after = flash.subpage_rbers(block.block_id, 0, [0])[0]
        assert after > before

    def test_linear_in_read_count(self):
        flash, block = programmed_flash(rd_config(0.02))
        base = flash.subpage_rbers(block.block_id, 0, [0])[0]
        flash.read(block.block_id, 0, [0], 0.0)
        one = flash.subpage_rbers(block.block_id, 0, [0])[0]
        flash.read(block.block_id, 0, [0], 1.0)
        two = flash.subpage_rbers(block.block_id, 0, [0])[0]
        assert two - one == pytest.approx(one - base)

    def test_affects_whole_block(self):
        flash, block = programmed_flash(rd_config())
        flash.program(block.block_id, 1, [0], [3], 0.0)
        before = flash.subpage_rbers(block.block_id, 1, [0])[0]
        for t in range(20):
            flash.read(block.block_id, 0, [0], float(t))  # read page 0 only
        after = flash.subpage_rbers(block.block_id, 1, [0])[0]
        assert after > before

    def test_erase_heals(self):
        flash, block = programmed_flash(rd_config())
        for t in range(20):
            flash.read(block.block_id, 0, [0], float(t))
        assert block.read_count == 20
        flash.invalidate(block.block_id, 0, 0)
        flash.invalidate(block.block_id, 0, 1)
        flash.erase(block.block_id)
        assert block.read_count == 0

    def test_mlc_blocks_affected_too(self):
        cfg = rd_config()
        flash = FlashArray(cfg)
        block = flash.block(flash.mlc_block_ids[0])
        block.open_as(0, 0.0)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        before = flash.subpage_rbers(block.block_id, 0, [0])[0]
        for t in range(30):
            flash.read(block.block_id, 0, [0], float(t))
        assert flash.subpage_rbers(block.block_id, 0, [0])[0] > before

    def test_end_to_end_error_rate_rises(self):
        trace = generate(profile("lun2"), n_requests=1200, seed=6,
                         mean_interarrival_ms=1.0)
        base = Simulator(IPUFTL(tiny_config())).run(trace)
        disturbed = Simulator(IPUFTL(rd_config(0.05))).run(trace)
        assert disturbed.read_error_rate > base.read_error_rate

    def test_negative_ratio_rejected(self):
        import dataclasses as dc
        from repro.errors import ConfigError
        cfg = tiny_config()
        with pytest.raises(ConfigError):
            dc.replace(cfg.reliability, read_disturb_unit_ratio=-1).validate()
