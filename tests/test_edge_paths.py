"""Edge paths: device exhaustion, wear levelling with buffered eviction,
byte-granular reprogram guards."""

import dataclasses

import pytest

from repro import BaselineFTL, MGAFTL, Simulator
from repro.config import CacheConfig, GeometryConfig, SSDConfig
from repro.errors import (
    OutOfSpaceError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from repro.nand import FlashArray
from repro.traces import generate, profile

from conftest import tiny_config


def micro_config(**cache_kwargs):
    """A device so small it can genuinely fill up."""
    geometry = GeometryConfig(
        channels=1, chips_per_channel=1, planes_per_chip=1, total_blocks=12)
    cache = CacheConfig(slc_ratio=0.34, **cache_kwargs)
    return SSDConfig(geometry=geometry, cache=cache).validate()


class TestDeviceExhaustion:
    def test_out_of_space_raised_when_truly_full(self):
        ftl = BaselineFTL(micro_config())
        lsn = 0
        with pytest.raises(OutOfSpaceError):
            # Unique cold data forever must eventually exceed capacity.
            for _ in range(200_000):
                ftl.handle_write([lsn], float(lsn))
                lsn += 4

    def test_fills_most_of_capacity_before_dying(self):
        ftl = BaselineFTL(micro_config())
        cfg = ftl.config
        lsn = 0
        try:
            for _ in range(200_000):
                ftl.handle_write([lsn], float(lsn))
                lsn += 4
        except OutOfSpaceError:
            pass
        written_pages = lsn // 4  # one page chunk per write
        # MLC pages available (positional layout: one chunk per page).
        mlc_pages = cfg.mlc_blocks * cfg.geometry.mlc_pages_per_block
        assert written_pages > 0.5 * mlc_pages

    def test_mapping_still_consistent_after_exhaustion(self):
        ftl = BaselineFTL(micro_config())
        lsn = 0
        try:
            for _ in range(200_000):
                ftl.handle_write([lsn], float(lsn))
                lsn += 4
        except OutOfSpaceError:
            pass
        ftl.check_consistency()


class TestMgaWearLeveling:
    def test_wl_with_eviction_buffer_flushes(self):
        """The static WL path goes through MGA's buffered relocation; the
        pre-erase finish hook must flush it."""
        cfg = tiny_config(wear_leveling_gap=1, wear_leveling_period=2)
        ftl = MGAFTL(cfg)
        trace = generate(profile("ts0"), n_requests=4000, seed=11,
                         mean_interarrival_ms=0.4)
        Simulator(ftl).run(trace)
        assert ftl.slc_wear.leveling_moves >= 1
        assert not ftl._evict_buffer or ftl.slc_gc.draining
        ftl.check_consistency()


class TestReprogramGuards:
    def test_reprogram_unwritten_page_rejected(self):
        flash = FlashArray(tiny_config())
        block = flash.block(flash.slc_block_ids[0])
        block.open_as(1, 0.0)
        with pytest.raises(ProgramOrderError):
            flash.reprogram(block.block_id, 0)

    def test_reprogram_respects_pass_limit(self):
        flash = FlashArray(tiny_config())
        block = flash.block(flash.slc_block_ids[0])
        block.open_as(1, 0.0)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        for _ in range(3):
            flash.reprogram(block.block_id, 0)
        with pytest.raises(PartialProgramLimitError):
            flash.reprogram(block.block_id, 0)

    def test_reprogram_mlc_rejected(self):
        flash = FlashArray(tiny_config())
        block = flash.block(flash.mlc_block_ids[0])
        block.open_as(0, 0.0)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        with pytest.raises(SubpageStateError):
            block.reprogram_pass(0, 4)

    def test_reprogram_disturbs_and_counts(self):
        flash = FlashArray(tiny_config())
        block = flash.block(flash.slc_block_ids[0])
        block.open_as(1, 0.0)
        flash.program(block.block_id, 0, [0, 1], [1, 2], 0.0)
        result = flash.reprogram(block.block_id, 0)
        assert result.partial
        assert result.disturbed_valid == 2
        assert flash.partial_programs == 1
