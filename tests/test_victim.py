"""Victim-selection policies."""

import pytest

from repro.ftl.victim import (
    GreedyPageVictimPolicy,
    GreedyVictimPolicy,
    IsrVictimPolicy,
)
from repro.nand.block import Block
from repro.nand.cell import CellMode


def full_block(block_id, valid_per_page, pages=2, spp=4):
    """A FULL block with ``valid_per_page`` live slots per page."""
    block = Block(block_id, CellMode.SLC, pages, spp)
    block.open_as(1, 0.0)
    for page in range(pages):
        block.program(page, list(range(spp)), list(range(spp)), 0.0, spp)
        for slot in range(spp - valid_per_page):
            block.invalidate(page, slot)
    return block


class TestGreedy:
    def test_picks_most_reclaimable(self):
        a = full_block(0, valid_per_page=3)
        b = full_block(1, valid_per_page=1)
        assert GreedyVictimPolicy().select([a, b], 0.0) is b

    def test_none_when_nothing_reclaimable(self):
        a = full_block(0, valid_per_page=4)
        assert GreedyVictimPolicy().select([a], 0.0) is None

    def test_empty_candidates(self):
        assert GreedyVictimPolicy().select([], 0.0) is None

    def test_scan_accounting(self):
        policy = GreedyVictimPolicy()
        policy.select([full_block(0, 1)], 0.0)
        policy.select([full_block(1, 1)], 0.0)
        assert policy.scans == 2
        assert policy.scan_seconds >= 0.0


class TestGreedyPage:
    def test_counts_whole_pages(self):
        # Block a: every page half-valid (frees nothing page-wise);
        # block b: one page dead, one page full.
        a = full_block(0, valid_per_page=2)
        b = Block(1, CellMode.SLC, 2, 4)
        b.open_as(1, 0.0)
        b.program(0, [0, 1, 2, 3], [1, 2, 3, 4], 0.0, 4)
        b.program(1, [0, 1, 2, 3], [5, 6, 7, 8], 0.0, 4)
        for slot in range(4):
            b.invalidate(0, slot)
        assert GreedyPageVictimPolicy().select([a, b], 0.0) is b

    def test_none_when_every_page_has_valid(self):
        a = full_block(0, valid_per_page=1)
        assert GreedyPageVictimPolicy().select([a], 0.0) is None


class TestIsr:
    def test_prefers_more_invalid(self):
        a = full_block(0, valid_per_page=3)
        b = full_block(1, valid_per_page=1)
        assert IsrVictimPolicy().select([a, b], 10.0) is b

    def test_cold_beats_recent_at_equal_invalid(self):
        a = full_block(0, valid_per_page=2)
        b = full_block(1, valid_per_page=2)
        a.touch(0, [2, 3], 99.0)
        a.touch(1, [2, 3], 99.0)
        assert IsrVictimPolicy().select([a, b], 100.0) is b

    def test_cache_invalidated_by_content_change(self):
        policy = IsrVictimPolicy(refresh_ms=1e9)
        hot = full_block(0, valid_per_page=4)
        fresh = full_block(1, valid_per_page=4)
        hot.touch(0, [0, 1, 2, 3], 10.0)   # hot looks warmer at first
        assert policy.select([hot, fresh], 10.0) is fresh
        # Invalidate hot's content: despite the long-lived cache entry
        # (refresh window is huge), the epoch bump forces a recompute.
        for page in range(hot.pages):
            for slot in range(4):
                hot.invalidate(page, slot)
        assert policy.select([hot, fresh], 10.0) is hot

    def test_cache_refreshes_after_interval(self):
        policy = IsrVictimPolicy(refresh_ms=5.0)
        block = full_block(0, valid_per_page=2)
        first = policy.select([block], 1.0)
        # Within refresh window the cached coldness is reused (no error).
        policy.select([block], 2.0)
        # After the window the value recomputes and ages increase.
        chosen = policy.select([block], 1000.0)
        assert chosen is block

    def test_empty_candidates(self):
        assert IsrVictimPolicy().select([], 0.0) is None
