"""Baseline scheme: positional pages, no partial programming, RMW ablation."""

import pytest

from repro import BaselineFTL
from repro.sim.ops import Cause, OpKind

from conftest import tiny_config


@pytest.fixture
def ftl():
    return BaselineFTL(tiny_config())


class TestWritePath:
    def test_new_write_maps_all_lsns(self, ftl):
        ftl.handle_write([0, 1], 0.0)
        assert ftl.lookup(0) is not None
        assert ftl.lookup(1) is not None
        ftl.check_consistency()

    def test_positional_slots(self, ftl):
        ftl.handle_write([1, 2], 0.0)
        assert ftl.lookup(1).slot == 1
        assert ftl.lookup(2).slot == 2

    def test_fresh_page_per_chunk(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([1], 1.0)
        a, b = ftl.lookup(0), ftl.lookup(1)
        assert (a.block, a.page) != (b.block, b.page)

    def test_never_partial_programs(self, ftl):
        for i in range(20):
            ftl.handle_write([i % 4], float(i))
        assert ftl.flash.partial_programs == 0

    def test_update_invalidates_old(self, ftl):
        ftl.handle_write([0], 0.0)
        old = ftl.lookup(0)
        ftl.handle_write([0], 1.0)
        new = ftl.lookup(0)
        assert (old.block, old.page) != (new.block, new.page)
        assert not ftl.flash.block(old.block).valid[old.page, old.slot]
        ftl.check_consistency()

    def test_multi_lpn_write_splits_chunks(self, ftl):
        ops = ftl.handle_write([2, 3, 4, 5], 0.0)
        programs = [o for o in ops if o.kind is OpKind.PROGRAM]
        assert len(programs) == 2  # LPN 0 chunk (2,3) and LPN 1 chunk (4,5)

    def test_full_page_transfer(self, ftl):
        ops = ftl.handle_write([0], 0.0)
        program = next(o for o in ops if o.kind is OpKind.PROGRAM)
        assert program.n_slots == 1
        assert program.channel_slots == ftl.geometry.subpages_per_page

    def test_update_counters(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        assert ftl.stats.new_data_writes == 1
        assert ftl.stats.update_writes == 1


class TestReadPath:
    def test_read_written_data(self, ftl):
        ftl.handle_write([0, 1], 0.0)
        ops = ftl.handle_read([0, 1], 1.0)
        reads = [o for o in ops if o.kind is OpKind.READ]
        assert len(reads) == 1
        assert reads[0].n_slots == 2
        assert reads[0].raw_errors > 0

    def test_unwritten_read_is_pseudo(self, ftl):
        ops = ftl.handle_read([100], 0.0)
        reads = [o for o in ops if o.kind is OpKind.READ]
        assert len(reads) == 1
        assert not reads[0].is_slc
        assert ftl.stats.pseudo_read_ops == 1

    def test_mixed_read(self, ftl):
        ftl.handle_write([0], 0.0)
        ops = ftl.handle_read([0, 1], 1.0)
        reads = [o for o in ops if o.kind is OpKind.READ]
        assert len(reads) == 2  # one real, one pseudo


class TestMergeAblation:
    def test_merge_carries_siblings(self):
        ftl = BaselineFTL(tiny_config(), merge_siblings=True)
        ftl.handle_write([0], 0.0)
        ftl.handle_write([1], 1.0)  # same LPN: merges subpage 0 along
        a, b = ftl.lookup(0), ftl.lookup(1)
        assert (a.block, a.page) == (b.block, b.page)
        assert ftl.stats.rmw_read_ops == 1
        ftl.check_consistency()

    def test_no_merge_leaves_siblings_in_place(self, ftl):
        ftl.handle_write([0], 0.0)
        before = ftl.lookup(0)
        ftl.handle_write([1], 1.0)
        assert ftl.lookup(0) == before


class TestGC:
    def test_gc_evicts_to_mlc(self, ftl):
        # Fill the SLC cache with unique single-subpage writes.
        lsn = 0
        for _ in range(3000):
            ftl.handle_write([lsn], float(lsn))
            lsn += 4
            if ftl.flash.erases_slc > 2:
                break
        assert ftl.flash.erases_slc > 0
        assert ftl.stats.gc_programs_mlc > 0
        ftl.check_consistency()

    def test_gc_preserves_all_data(self, ftl):
        written = []
        lsn = 0
        for i in range(1200):
            ftl.handle_write([lsn], float(i))
            written.append(lsn)
            lsn += 4
        for w in written:
            assert ftl.lookup(w) is not None, f"LSN {w} lost"
        ftl.check_consistency()
