"""ECC latency model bounds and monotonicity."""

import numpy as np
import pytest

from repro.config import ReliabilityConfig, TimingConfig
from repro.error.ecc import EccModel


@pytest.fixture
def ecc():
    return EccModel(TimingConfig(), ReliabilityConfig())


class TestDecodeLatency:
    def test_lower_bound(self, ecc):
        assert ecc.decode_ms(0.0) == pytest.approx(0.0005)

    def test_upper_bound_saturates(self, ecc):
        assert ecc.decode_ms(1.0) == pytest.approx(0.0968)
        assert ecc.decode_ms(0.5) == pytest.approx(0.0968)

    def test_monotone(self, ecc):
        values = [ecc.decode_ms(r) for r in (0.0, 1e-5, 1e-4, 5e-4, 1e-3)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_within_table2_bounds(self, ecc):
        for rber in np.geomspace(1e-7, 1e-2, 30):
            value = ecc.decode_ms(float(rber))
            assert 0.0005 <= value <= 0.0968

    def test_nominal_value_between_bounds(self, ecc):
        value = ecc.decode_ms(2.8e-4)
        assert 0.0005 < value < 0.0968


class TestPageDecode:
    def test_worst_subpage_dominates(self, ecc):
        mixed = ecc.decode_ms_for_subpages(np.array([1e-5, 4e-4]))
        assert mixed == pytest.approx(ecc.decode_ms(4e-4))

    def test_empty_read_is_min(self, ecc):
        assert ecc.decode_ms_for_subpages(np.array([])) == pytest.approx(0.0005)

    def test_accepts_list(self, ecc):
        assert ecc.decode_ms_for_subpages([1e-4]) == pytest.approx(ecc.decode_ms(1e-4))


class TestRawErrors:
    def test_expected_raw_errors(self, ecc):
        assert ecc.expected_raw_errors(2.8e-4, 4096) == pytest.approx(2.8e-4 * 4096 * 8)

    def test_zero_bytes(self, ecc):
        assert ecc.expected_raw_errors(1e-3, 0) == 0.0

    def test_negative_size_rejected(self, ecc):
        with pytest.raises(ValueError):
            ecc.expected_raw_errors(1e-4, -1)


class TestUncorrectable:
    def test_monotone(self, ecc):
        low = ecc.uncorrectable_probability(1e-4)
        high = ecc.uncorrectable_probability(1e-3)
        assert high > low

    def test_bounds(self, ecc):
        p = ecc.uncorrectable_probability(2.8e-4)
        assert 0.0 <= p <= 1.0
