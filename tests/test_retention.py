"""Retention-loss extension (optional; off by default)."""

import dataclasses

import pytest

from repro import IPUFTL, Simulator
from repro.nand import FlashArray
from repro.traces import generate, profile

from conftest import tiny_config


def ret_config(rate=1e-3):
    cfg = tiny_config()
    return dataclasses.replace(
        cfg, reliability=dataclasses.replace(
            cfg.reliability, retention_unit_per_ms=rate))


def programmed(cfg):
    flash = FlashArray(cfg)
    block = flash.block(flash.slc_block_ids[0])
    block.open_as(1, 0.0)
    flash.program(block.block_id, 0, [0], [1], 0.0)
    return flash, block


class TestRetention:
    def test_off_by_default(self):
        flash, block = programmed(tiny_config())
        young = flash.subpage_rbers(block.block_id, 0, [0], now=1.0)[0]
        old = flash.subpage_rbers(block.block_id, 0, [0], now=1e6)[0]
        assert old == young

    def test_rber_grows_with_age(self):
        flash, block = programmed(ret_config())
        young = flash.subpage_rbers(block.block_id, 0, [0], now=1.0)[0]
        old = flash.subpage_rbers(block.block_id, 0, [0], now=1000.0)[0]
        assert old > young

    def test_linear_in_age(self):
        flash, block = programmed(ret_config())
        r1 = flash.subpage_rbers(block.block_id, 0, [0], now=100.0)[0]
        r2 = flash.subpage_rbers(block.block_id, 0, [0], now=200.0)[0]
        r3 = flash.subpage_rbers(block.block_id, 0, [0], now=300.0)[0]
        assert r3 - r2 == pytest.approx(r2 - r1)

    def test_reads_do_not_heal(self):
        """Retention counts from program time; touching data by reading it
        must not reset the clock."""
        flash, block = programmed(ret_config())
        flash.read(block.block_id, 0, [0], 500.0)  # refreshes access time
        aged = flash.subpage_rbers(block.block_id, 0, [0], now=1000.0)[0]
        fresh_flash, fresh_block = programmed(ret_config())
        untouched = fresh_flash.subpage_rbers(
            fresh_block.block_id, 0, [0], now=1000.0)[0]
        # Read disturb is off here, so the values must match exactly.
        assert aged == pytest.approx(untouched)

    def test_rewrite_resets_age(self):
        flash, block = programmed(ret_config())
        flash.program(block.block_id, 0, [1], [2], 900.0)  # partial pass
        old_slot = flash.subpage_rbers(block.block_id, 0, [0], now=1000.0)[0]
        new_slot = flash.subpage_rbers(block.block_id, 0, [1], now=1000.0)[0]
        # The fresh slot has 100 ms of age vs 1000 ms, but absorbed no
        # in-page disturb (it was just written); the old slot absorbed one.
        assert new_slot < old_slot

    def test_no_now_means_no_retention_term(self):
        flash, block = programmed(ret_config())
        base = flash.subpage_rbers(block.block_id, 0, [0])[0]
        aged = flash.subpage_rbers(block.block_id, 0, [0], now=1e5)[0]
        assert aged > base

    def test_end_to_end_error_rate_rises(self):
        trace = generate(profile("ts0"), n_requests=1200, seed=6,
                         mean_interarrival_ms=1.0)
        base = Simulator(IPUFTL(tiny_config())).run(trace)
        aged = Simulator(IPUFTL(ret_config(1e-4))).run(trace)
        assert aged.read_error_rate > base.read_error_rate

    def test_negative_rate_rejected(self):
        from repro.errors import ConfigError
        cfg = tiny_config()
        with pytest.raises(ConfigError):
            dataclasses.replace(
                cfg.reliability, retention_unit_per_ms=-1.0).validate()
