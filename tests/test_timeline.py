"""Timeline recorder and the simulator observer hook."""

import pytest

from repro import IPUFTL, Simulator
from repro.metrics.timeline import TimelineRecorder
from repro.traces import generate, profile

from conftest import tiny_config


def recorded_run(n=1500, every=100):
    ftl = IPUFTL(tiny_config())
    recorder = TimelineRecorder(ftl, sample_every=every)
    trace = generate(profile("ts0"), n_requests=n, seed=4,
                     mean_interarrival_ms=0.7)
    Simulator(ftl, observer=recorder).run(trace)
    return recorder


class TestRecorder:
    def test_sample_count(self):
        recorder = recorded_run(n=1000, every=100)
        assert len(recorder.samples) == 10

    def test_samples_ordered(self):
        recorder = recorded_run()
        idx = [s.request_index for s in recorder.samples]
        assert idx == sorted(idx)
        times = [s.now_ms for s in recorder.samples]
        assert times == sorted(times)

    def test_free_fraction_bounds(self):
        recorder = recorded_run()
        for value in recorder.series("free_fraction"):
            assert 0.0 <= value <= 1.0

    def test_counters_monotone(self):
        recorder = recorded_run()
        for name in ("erases_slc", "intra_page_updates", "evicted_subpages"):
            series = recorder.series(name)
            assert all(b >= a for a, b in zip(series, series[1:])), name

    def test_level_series(self):
        recorder = recorded_run()
        work = recorder.series("level:1")
        assert any(v > 0 for v in work)

    def test_unknown_series_rejected(self):
        recorder = recorded_run(n=200, every=100)
        with pytest.raises(KeyError):
            recorder.series("nope")

    def test_render(self):
        recorder = recorded_run()
        text = recorder.render(height=5, width=30)
        assert "SLC free-pool fraction" in text
        assert "W=Work" in text

    def test_render_empty(self):
        ftl = IPUFTL(tiny_config())
        assert TimelineRecorder(ftl).render() == "(no samples)"

    def test_invalid_stride(self):
        ftl = IPUFTL(tiny_config())
        with pytest.raises(ValueError):
            TimelineRecorder(ftl, sample_every=0)


class TestObserverHook:
    def test_observer_called_per_request(self):
        ftl = IPUFTL(tiny_config())
        calls = []
        trace = generate(profile("ts0"), n_requests=50, seed=4)
        Simulator(ftl, observer=lambda i, t: calls.append(i)).run(trace)
        assert len(calls) == 50
        assert calls == sorted(calls)

    def test_no_observer_is_fine(self):
        ftl = IPUFTL(tiny_config())
        trace = generate(profile("ts0"), n_requests=50, seed=4)
        result = Simulator(ftl).run(trace)
        assert result.n_requests == 50
