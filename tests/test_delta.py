"""Delta scheme (Zhang et al. FAST'16 in-place delta compression)."""

import pytest

from repro import DeltaFTL, IPUFTL, Simulator
from repro.ftl.delta import DELTA_LSN
from repro.sim.ops import OpKind
from repro.traces import generate, profile

from conftest import tiny_config


@pytest.fixture
def ftl():
    return DeltaFTL(tiny_config())


class TestDeltaAppend:
    def test_update_stays_in_place(self, ftl):
        ftl.handle_write([0], 0.0)
        before = ftl.lookup(0)
        ftl.handle_write([0], 1.0)
        assert ftl.lookup(0) == before          # mapping unchanged
        assert ftl.chain_length(0) == 1

    def test_append_is_partial_program(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        assert ftl.flash.partial_programs == 1

    def test_disturbs_valid_originals(self, ftl):
        """The behaviour IPU eliminates: deltas land next to live data."""
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        assert ftl.flash.disturbed_valid_subpages >= 1

    def test_deltas_pack_bytewise(self, ftl):
        # delta_ratio=0.35: two 4K deltas (1434 B each) share one slot.
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        ftl.handle_write([0], 2.0)
        ppa = ftl.lookup(0)
        state = ftl._delta_state[(ppa.block, ppa.page)]
        assert state[2] == 2          # chain length
        assert state[1] == 1          # still one delta slot

    def test_delta_slots_carry_sentinel(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        ppa = ftl.lookup(0)
        block = ftl.flash.block(ppa.block)
        assert DELTA_LSN in set(int(x) for x in block.slot_lsn[ppa.page])

    def test_chain_bounded_by_pass_limit(self, ftl):
        ftl.handle_write([0], 0.0)
        for t in range(1, 4):
            ftl.handle_write([0], float(t))
        assert ftl.chain_length(0) == 3
        # Fourth update cannot take another pass: falls out of place.
        before = ftl.lookup(0)
        ftl.handle_write([0], 4.0)
        assert ftl.lookup(0) != before
        assert ftl.chain_length(0) == 0

    def test_capacity_overflow_falls_out_of_place(self):
        ftl = DeltaFTL(tiny_config(), delta_ratio=1.0)
        ftl.handle_write([0, 1, 2], 0.0)   # one free slot = 4096 B
        before = ftl.lookup(0)
        # A full-size delta of a 3-subpage chunk (12 KiB) cannot fit.
        ftl.handle_write([0, 1, 2], 1.0)
        assert ftl.lookup(0) != before

    def test_partial_chunk_update_ok(self, ftl):
        """Deltas are diffs against the original, so unlike IPU a partial
        rewrite can stay in place."""
        ftl.handle_write([0, 1], 0.0)
        before = ftl.lookup(1)
        ftl.handle_write([0], 1.0)
        assert ftl.lookup(1) == before
        assert ftl.chain_length(0) == 1

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            DeltaFTL(tiny_config(), delta_ratio=0.0)


class TestReadPath:
    def test_read_charges_delta_transfer(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        ops = ftl.handle_read([0], 2.0)
        read = next(o for o in ops if o.kind is OpKind.READ)
        assert read.channel_slots == 2   # original + delta slot

    def test_read_without_chain_unchanged(self, ftl):
        ftl.handle_write([0], 0.0)
        ops = ftl.handle_read([0], 1.0)
        read = next(o for o in ops if o.kind is OpKind.READ)
        assert read.channel_slots == 1


class TestGC:
    def test_consolidation_preserves_data(self, ftl):
        lsn, t = 0, 0.0
        written = []
        for i in range(1500):
            ftl.handle_write([lsn], t)
            written.append(lsn)
            lsn += 4
            t += 0.5
        assert ftl.flash.erases_slc > 0
        for w in written:
            assert ftl.lookup(w) is not None
        ftl.check_consistency()

    def test_chain_dropped_after_relocation(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        ppa = ftl.lookup(0)
        victim = ftl.flash.block(ppa.block)
        # Drain the page via the relocation path directly.
        from repro.nand.block import BlockState
        while not victim.is_full:
            victim.program(victim.next_page, [0], [999], 0.0, 4)
            ftl.flash.invalidate(victim.block_id, victim.next_page - 1, 0)
        victim.state = BlockState.VICTIM
        ftl._relocate_slc_page(victim, ppa.page,
                               victim.valid_slots_of_page(ppa.page),
                               [0], 2.0, None)
        assert ftl.chain_length(0) == 0
        new = ftl.lookup(0)
        assert new.block != ppa.block or new.page != ppa.page


class TestComparativeBehaviour:
    def test_delta_disturbs_ipu_does_not(self):
        trace = generate(profile("ts0"), n_requests=1500, seed=12,
                         mean_interarrival_ms=1.0)
        delta_ftl = DeltaFTL(tiny_config())
        ipu_ftl = IPUFTL(tiny_config())
        delta_res = Simulator(delta_ftl).run(trace)
        ipu_res = Simulator(ipu_ftl).run(trace)
        assert delta_ftl.flash.disturbed_valid_subpages > 0
        assert ipu_ftl.flash.disturbed_valid_subpages == 0
        assert delta_res.read_error_rate > ipu_res.read_error_rate
