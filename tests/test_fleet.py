"""Fleet layer: sharding algebra, config round-trips, and the campaign
determinism contracts (resume, parallel fan-out and warm cache must all
reproduce the uninterrupted sequential campaign byte-for-byte).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExperimentError
from repro.fleet import FleetConfig, TenantSpec, run_campaign, shard_of
from repro.fleet.campaign import aggregate_fleet, campaign_json
from repro.fleet.runner import (
    LAT_HIST_EDGES_MS,
    histogram_latencies,
    quantile_from_histogram,
    run_device,
)
from repro.fleet.shard import OffsetStream, ShardedStream, split_extent
from repro.traces import InMemoryStream, materialize
from repro.traces.profiles import profile
from repro.traces.synth import generate
from repro.units import KIB

SETTINGS = settings(max_examples=50, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: A campaign small enough for CI but long enough to cross epochs.
SMALL = dict(n_devices=2, tenants=(TenantSpec("ts0"), TenantSpec("usr0", 0.5)),
             scheme="ipu", scale="smoke", seed=7, n_epochs=3,
             epoch_requests=500)


# -- sharding algebra -------------------------------------------------------


class TestShardOf:
    @SETTINGS
    @given(offset=st.integers(0, 2**44), stripe=st.sampled_from([4, 64, 256]),
           n=st.integers(1, 8))
    def test_every_byte_lands_exactly_once(self, offset, stripe, n):
        stripe_bytes = stripe * KIB
        device, local = shard_of(offset, stripe_bytes, n)
        assert 0 <= device < n
        # Invert: device-local stripe index g//n on device g%n maps back.
        g, r = divmod(offset, stripe_bytes)
        assert device == g % n
        assert local == (g // n) * stripe_bytes + r

    @SETTINGS
    @given(offset=st.integers(0, 2**40), size=st.integers(1, 10 * 256 * KIB),
           n=st.integers(1, 6))
    def test_split_extent_partitions_the_request(self, offset, size, n):
        stripe_bytes = 256 * KIB
        pieces = list(split_extent(offset, size, stripe_bytes, n))
        assert sum(length for _, _, length in pieces) == size
        # Pieces are the stripes the extent crosses, in order, and each
        # piece agrees with the pointwise shard_of of its first byte.
        cursor = offset
        for device, local, length in pieces:
            assert (device, local) == shard_of(cursor, stripe_bytes, n)
            assert length >= 1
            cursor += length

    def test_single_device_is_identity(self):
        assert shard_of(123456, 256 * KIB, 1) == (0, 123456)


class TestShardedStream:
    def test_devices_partition_the_stream(self):
        trace = generate(profile("ts0"), n_requests=400, seed=3)
        base = InMemoryStream(trace, chunk_requests=128)
        n = 3
        shards = [materialize(ShardedStream(base, d, n, 64 * KIB))
                  for d in range(n)]
        total_bytes = sum(int(s.sizes.sum()) for s in shards)
        assert total_bytes == int(trace.sizes.sum())
        assert sum(len(s) for s in shards) >= len(trace)

    def test_chunk_boundaries_align(self):
        trace = generate(profile("ts0"), n_requests=300, seed=4)
        base = InMemoryStream(trace, chunk_requests=100)
        for d in range(2):
            chunks = list(ShardedStream(base, d, 2, 64 * KIB).chunks())
            assert len(chunks) == 3  # one (possibly empty) per base chunk

    def test_rejects_bad_device(self):
        trace = generate(profile("ts0"), n_requests=10, seed=1)
        base = InMemoryStream(trace)
        with pytest.raises(ConfigError):
            ShardedStream(base, 2, 2, 4 * KIB)

    def test_offset_stream_shifts(self):
        trace = generate(profile("ts0"), n_requests=50, seed=1)
        shifted = materialize(
            OffsetStream(InMemoryStream(trace), 1 << 40))
        assert (shifted.offsets == trace.offsets + (1 << 40)).all()


# -- config -----------------------------------------------------------------


class TestFleetConfig:
    def test_roundtrip(self):
        cfg = FleetConfig(**SMALL)
        assert FleetConfig.from_json(cfg.to_json()) == cfg

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError):
            FleetConfig.from_dict({"bogus": 1})

    def test_tenant_requests_sum_exactly(self):
        cfg = FleetConfig(
            n_devices=2,
            tenants=(TenantSpec("ts0", 1.0), TenantSpec("usr0", 0.3),
                     TenantSpec("wdev0", 0.3)),
            n_epochs=3, epoch_requests=1000)
        counts = cfg.tenant_requests()
        assert sum(counts) == cfg.total_requests == 3000
        assert all(c >= 0 for c in counts)

    def test_tenant_seeds_differ_by_index(self):
        cfg = FleetConfig(tenants=(TenantSpec("ts0"), TenantSpec("ts0")))
        assert cfg.tenant_seed(0) != cfg.tenant_seed(1)

    def test_device_keys_differ(self):
        cfg = FleetConfig(**SMALL)
        assert cfg.device_key(0) != cfg.device_key(1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(n_devices=0).validate()
        with pytest.raises(ConfigError):
            FleetConfig(tenants=()).validate()
        with pytest.raises(ConfigError):
            FleetConfig(stripe_bytes=1000).validate()
        with pytest.raises(ConfigError):
            FleetConfig(tenants=(TenantSpec("nope"),)).validate()


# -- histogram percentiles --------------------------------------------------


class TestHistogram:
    def test_counts_cover_everything(self):
        import numpy as np
        lat = np.array([1e-5, 0.5, 2.0, 1e6])
        hist = histogram_latencies(lat)
        assert sum(hist) == 4
        assert hist[0] == 1 and hist[-1] == 1  # under/overflow

    def test_quantile_is_upper_edge(self):
        import numpy as np
        lat = np.full(100, 0.5)
        hist = histogram_latencies(lat)
        q = quantile_from_histogram(hist, 99.0)
        # 0.5 ms falls inside one bin; its upper edge bounds the value.
        edges = LAT_HIST_EDGES_MS
        i = int(np.searchsorted(edges, 0.5, side="right"))
        assert q == float(edges[i])

    def test_empty_is_zero(self):
        import numpy as np
        assert quantile_from_histogram(
            histogram_latencies(np.array([])), 99.0) == 0.0


# -- campaigns --------------------------------------------------------------


@pytest.fixture(scope="module")
def small_campaign():
    cfg = FleetConfig(**SMALL)
    return cfg, run_campaign(cfg, jobs=1)


class TestCampaign:
    def test_structure(self, small_campaign):
        cfg, camp = small_campaign
        assert len(camp["devices"]) == cfg.n_devices
        assert len(camp["epochs"]) == cfg.n_epochs
        for rec in camp["epochs"]:
            assert rec["lat_p50_ms"] <= rec["lat_p99_ms"] <= rec["lat_p999_ms"]
            assert 0.0 <= rec["capacity_loss"] <= 1.0
        assert camp["totals"]["n_requests"] == sum(
            r["n_requests"] for r in camp["epochs"])

    def test_json_roundtrip(self, small_campaign):
        _, camp = small_campaign
        text = campaign_json(camp)
        assert campaign_json(json.loads(text)) == text

    def test_parallel_matches_sequential(self, small_campaign):
        cfg, camp = small_campaign
        parallel = run_campaign(cfg, jobs=2)
        assert campaign_json(parallel) == campaign_json(camp)

    def test_warm_cache_matches(self, small_campaign, tmp_path):
        cfg, camp = small_campaign
        cold = run_campaign(cfg, jobs=1, cache_dir=str(tmp_path))
        warm = run_campaign(cfg, jobs=1, cache_dir=str(tmp_path))
        assert campaign_json(cold) == campaign_json(camp)
        assert campaign_json(warm) == campaign_json(camp)

    def test_stop_resume_byte_identity(self, small_campaign, tmp_path):
        """The acceptance criterion: pause mid-campaign, resume, compare
        canonical JSON bytes with the never-paused run."""
        cfg, camp = small_campaign
        ck = str(tmp_path / "ck")
        paused = run_campaign(cfg, jobs=1, checkpoint_dir=ck,
                              checkpoint_every=1, stop_after_epoch=2)
        assert paused is None
        resumed = run_campaign(cfg, jobs=1, checkpoint_dir=ck,
                               checkpoint_every=1)
        assert campaign_json(resumed) == campaign_json(camp)

    def test_stop_without_checkpoint_dir_raises(self):
        cfg = FleetConfig(**SMALL)
        with pytest.raises(ExperimentError):
            run_device(cfg, 0, stop_after_epoch=1)

    def test_device_payload_epochs_are_cumulative(self, small_campaign):
        cfg, camp = small_campaign
        dev = camp["devices"][0]
        cum_requests = [e["cum"]["n_requests"] for e in dev["epochs"]]
        assert cum_requests == sorted(cum_requests)
        assert cum_requests[-1] == dev["final"]["n_requests"]
        assert dev["final"]["fleet_device"] == 0
        assert dev["final"]["fleet_epoch"] == cfg.n_epochs - 1


class TestFaultyCampaign:
    def test_resume_with_faults(self, tmp_path):
        cfg = FleetConfig(n_devices=2, tenants=(TenantSpec("ts0"),),
                          scheme="mga", scale="smoke", seed=5, n_epochs=2,
                          epoch_requests=400, fault_rate=2.0)
        ref = campaign_json(run_campaign(cfg, jobs=1))
        ck = str(tmp_path / "ck")
        assert run_campaign(cfg, jobs=1, checkpoint_dir=ck,
                            checkpoint_every=1, stop_after_epoch=1) is None
        resumed = campaign_json(
            run_campaign(cfg, jobs=1, checkpoint_dir=ck))
        assert resumed == ref


# -- CLI --------------------------------------------------------------------


class TestFleetCli:
    def test_fleet_command_writes_canonical_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fleet.json"
        rc = main(["fleet", "--devices", "2", "--tenants", "ts0",
                   "--epochs", "2", "--epoch-requests", "300",
                   "--no-cache", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert len(payload["epochs"]) == 2
        assert "Fleet campaign" in capsys.readouterr().out

    def test_fleet_cli_stop_and_resume(self, tmp_path):
        from repro.cli import main
        ck = str(tmp_path / "ck")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ["fleet", "--devices", "2", "--tenants", "ts0",
                "--epochs", "2", "--epoch-requests", "300", "--no-cache"]
        assert main(args + ["--json", str(a)]) == 0
        assert main(args + ["--checkpoint-dir", ck,
                            "--stop-after-epoch", "1"]) == 0
        assert main(args + ["--checkpoint-dir", ck,
                            "--json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
