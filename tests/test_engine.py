"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("b"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_priority_breaks_ties(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append("low"), priority=1)
        engine.schedule(1.0, lambda: log.append("high"), priority=0)
        engine.run()
        assert log == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(1.0, lambda: log.append(2))
        engine.run()
        assert log == [1, 2]

    def test_handler_can_schedule(self):
        engine = Engine()
        log = []

        def first():
            log.append("first")
            engine.schedule_after(1.0, lambda: log.append("second"))

        engine.schedule(0.0, first)
        engine.run()
        assert log == ["first", "second"]
        assert engine.now == 1.0

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)


class TestRun:
    def test_until_bound(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_resume_after_until(self):
        engine = Engine()
        log = []
        engine.schedule(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        engine.run()
        assert log == [10]

    def test_step(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False

    def test_processed_counter(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.processed == 5

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def nested():
            engine.run()

        engine.schedule(0.0, nested)
        with pytest.raises(SimulationError):
            engine.run()
