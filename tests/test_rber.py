"""RBER model calibration and monotonicity."""

import numpy as np
import pytest

from repro.config import ReliabilityConfig
from repro.errors import ConfigError
from repro.error.rber import RberModel


@pytest.fixture
def model():
    return RberModel(ReliabilityConfig())


class TestCalibration:
    def test_conventional_anchor(self, model):
        assert model.base(4000) == pytest.approx(2.8e-4, rel=1e-9)

    def test_partial_anchor(self, model):
        assert model.partial_typical(4000) == pytest.approx(3.8e-4, rel=1e-9)

    def test_fresh_value(self, model):
        assert model.base(0) == pytest.approx(1e-5)

    def test_disturb_unit_at_reference(self, model):
        # (3.8e-4 - 2.8e-4) spread over max_page_programs - 1 = 3 passes.
        assert model.disturb_unit(4000) == pytest.approx(1e-4 / 3)


class TestMonotonicity:
    def test_base_increases_with_pe(self, model):
        values = [model.base(pe) for pe in (0, 1000, 2000, 4000, 8000)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_partial_above_conventional(self, model):
        for pe in (500, 1000, 4000, 8000):
            assert model.partial_typical(pe) > model.base(pe)

    def test_gap_widens_with_pe(self, model):
        """Section 2.2: the difference grows as P/E grows."""
        gaps = [model.partial_typical(pe) - model.base(pe)
                for pe in (1000, 2000, 4000, 8000)]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_disturb_raises_rber(self, model):
        base = model.subpage_rber(4000, True)
        assert model.subpage_rber(4000, True, n_in=1) > base
        assert model.subpage_rber(4000, True, n_nb=1) > base

    def test_neighbor_weaker_than_in_page(self, model):
        in_page = model.subpage_rber(4000, True, n_in=1)
        neighbor = model.subpage_rber(4000, True, n_nb=1)
        assert neighbor < in_page

    def test_mlc_factor(self):
        import dataclasses
        cfg = dataclasses.replace(ReliabilityConfig(), mlc_rber_factor=2.0)
        model = RberModel(cfg)
        assert model.base(4000, slc=False) == pytest.approx(2 * model.base(4000, slc=True))

    def test_negative_pe_rejected(self, model):
        with pytest.raises(ConfigError):
            model.base(-1)


class TestVectorized:
    def test_array_matches_scalar(self, model):
        n_in = np.array([0, 1, 2, 3])
        n_nb = np.array([0, 2, 0, 1])
        arr = model.subpage_rber_array(4000, True, n_in, n_nb)
        for i in range(4):
            scalar = model.subpage_rber(4000, True, int(n_in[i]), int(n_nb[i]))
            assert arr[i] == pytest.approx(scalar)

    def test_curve_shape(self, model):
        curves = model.curve([1000, 2000, 4000])
        assert len(curves["pe"]) == 3
        assert (curves["partial"] > curves["conventional"]).all()

    def test_curve_hits_figure2_point(self, model):
        curves = model.curve([4000])
        assert curves["conventional"][0] == pytest.approx(2.8e-4)
        assert curves["partial"][0] == pytest.approx(3.8e-4)


class TestConsistencyWithSubpageModel:
    def test_full_budget_subpage_equals_partial_curve(self, model):
        """A subpage that absorbed (max_programs - 1) in-page events sits
        exactly on the partial-programming curve."""
        value = model.subpage_rber(4000, True, n_in=3, n_nb=0)
        assert value == pytest.approx(model.partial_typical(4000))
