"""Checkpoint/restore: a replay paused at any point and resumed from a
pickle (or a checkpoint file) must continue bit-identically.

This is the property the whole fleet layer leans on, so it is driven
property-style: hypothesis sweeps the split point, seed, scheme and
fault-injection state, and every combination must produce the same
``deterministic_dict`` as the uninterrupted replay — not approximately,
exactly.  Separate groups pin the numpy-view aliasing the Block pickle
protocol must rebuild and the file-format validation of
:mod:`repro.fleet.checkpoint` (every corruption fails loudly *before*
the payload unpickles).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SCHEMES as factories
from repro.faults import FaultConfig, attach_faults
from repro.fleet.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointStore,
    MAGIC,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim import ClosedLoopReplay, OpenLoopReplay
from repro.traces.model import Trace
from repro.traces.profiles import profile
from repro.traces.synth import generate

from conftest import tiny_config

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SCHEME_NAMES = ("baseline", "mga", "ipu")


def short_trace(seed=11, n_requests=600):
    return generate(profile("ts0"), n_requests=n_requests, seed=seed,
                    mean_interarrival_ms=0.6)


def split(trace: Trace, at: int) -> tuple[Trace, Trace]:
    def cut(a, b):
        return Trace(trace.times_ms[a:b], trace.is_write[a:b],
                     trace.offsets[a:b], trace.sizes[a:b], name=trace.name)
    return cut(0, at), cut(at, len(trace))


def build_replay(scheme, seed=0, fault_rate=0.0, closed=False):
    cfg = tiny_config(seed=seed)
    ftl = factories[scheme](cfg)
    if fault_rate > 0:
        attach_faults(ftl, FaultConfig.from_rate(fault_rate), seed=seed)
    if closed:
        return ClosedLoopReplay(ftl, queue_depth=4, config=cfg)
    return OpenLoopReplay(ftl, cfg)


class TestResumeBitIdentity:
    @SETTINGS
    @given(scheme=st.sampled_from(SCHEME_NAMES),
           seed=st.integers(0, 2**32 - 1),
           frac=st.floats(0.05, 0.95),
           fault_rate=st.sampled_from([0.0, 1.5]))
    def test_pickle_resume_equals_uninterrupted(self, scheme, seed, frac,
                                                fault_rate):
        """Snapshot anywhere, resume, finish: same bytes as never pausing."""
        trace = short_trace(seed=seed % 1000 + 1)
        first, rest = split(trace, int(len(trace) * frac))

        ref = build_replay(scheme, seed=seed, fault_rate=fault_rate)
        ref.feed(trace)
        expected = ref.result(trace.name).deterministic_dict()

        paused = build_replay(scheme, seed=seed, fault_rate=fault_rate)
        paused.feed(first)
        resumed = pickle.loads(pickle.dumps(paused, protocol=5))
        resumed.feed(rest)
        assert resumed.result(trace.name).deterministic_dict() == expected

    @SETTINGS
    @given(seed=st.integers(0, 2**16), frac=st.floats(0.1, 0.9))
    def test_closed_loop_resume(self, seed, frac):
        trace = short_trace(seed=seed % 100 + 1, n_requests=400)
        first, rest = split(trace, int(len(trace) * frac))

        ref = build_replay("ipu", seed=seed, closed=True)
        ref.feed(trace)
        expected = ref.result(trace.name).deterministic_dict()

        paused = build_replay("ipu", seed=seed, closed=True)
        paused.feed(first)
        resumed = pickle.loads(pickle.dumps(paused, protocol=5))
        resumed.feed(rest)
        assert resumed.result(trace.name).deterministic_dict() == expected

    def test_frontend_resume(self):
        """The front-end replay (write buffer + scheduler) resumes too."""
        from repro.frontend import FrontendConfig
        from repro.frontend.simulate import FrontendSimulator

        cfg = tiny_config(seed=3)
        trace = short_trace(seed=5, n_requests=500)
        first, rest = split(trace, 210)
        fc = FrontendConfig.from_qd(4)

        ref = FrontendSimulator(factories["ipu"](cfg), fc, cfg)
        expected = ref.run(trace).deterministic_dict()

        paused = FrontendSimulator(factories["ipu"](cfg), fc, cfg)
        paused.feed(first)
        resumed = pickle.loads(pickle.dumps(paused, protocol=5))
        resumed.feed(rest)
        resumed.finish()
        assert resumed.result(trace.name).deterministic_dict() == expected


class TestViewAliasing:
    def test_blocks_share_region_after_unpickle(self):
        """Block's pickled views rebind onto the restored RegionState —
        shared memory, not silent per-block copies."""
        replay = build_replay("ipu", seed=1)
        replay.feed(short_trace(seed=2, n_requests=300))
        clone = pickle.loads(pickle.dumps(replay, protocol=5))
        flash = clone.ftl.flash
        blocks = list(flash.blocks)
        slc = [b for b in blocks if b.is_slc]
        assert slc, "expected SLC blocks in the tiny config"
        region = slc[0].region
        for block in slc:
            assert block.region is region
            assert np.shares_memory(block.programmed, region.programmed)
            assert np.shares_memory(block.valid, region.valid)
        flash.verify_region_counters()

    def test_unpickled_state_equals_original(self):
        replay = build_replay("mga", seed=9)
        replay.feed(short_trace(seed=4, n_requests=300))
        clone = pickle.loads(pickle.dumps(replay, protocol=5))
        for b1, b2 in zip(replay.ftl.flash.blocks,
                          clone.ftl.flash.blocks):
            np.testing.assert_array_equal(b1.programmed, b2.programmed)
            np.testing.assert_array_equal(b1.valid, b2.valid)
            np.testing.assert_array_equal(b1.slot_lsn, b2.slot_lsn)


class TestCheckpointFile:
    def _roundtrip(self, tmp_path, payload, key="k1"):
        path = tmp_path / "x.ckpt"
        save_checkpoint(path, payload, key=key, epoch=3)
        return path

    def test_roundtrip(self, tmp_path):
        payload = {"numbers": [1, 2, 3], "array": np.arange(5)}
        path = self._roundtrip(tmp_path, payload)
        header, loaded = load_checkpoint(path, key="k1")
        assert header["epoch"] == 3
        assert header["version"] == CHECKPOINT_VERSION
        assert loaded["numbers"] == [1, 2, 3]
        np.testing.assert_array_equal(loaded["array"], np.arange(5))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(MAGIC + b"\x00")
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_key_mismatch(self, tmp_path):
        path = self._roundtrip(tmp_path, {"a": 1}, key="right")
        with pytest.raises(CheckpointError, match="key mismatch"):
            load_checkpoint(path, key="wrong")

    def test_corrupt_payload(self, tmp_path):
        path = self._roundtrip(tmp_path, {"a": 1})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path, key="k1")

    def test_stale_schema(self, tmp_path, monkeypatch):
        path = self._roundtrip(tmp_path, {"a": 1})
        import repro.experiments.cache as cache_mod
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", 9999)
        with pytest.raises(CheckpointError, match="stale snapshot"):
            load_checkpoint(path, key="k1")

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "x.ckpt"
        save_checkpoint(path, {"a": 1}, key="k", epoch=0, kind="other")
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path, key="k")


class TestCheckpointStore:
    def test_latest_epoch_scans_files(self, tmp_path):
        store = CheckpointStore(tmp_path, key="a" * 64)
        assert store.latest_epoch(0) is None
        store.save(0, 1, {"v": 1})
        store.save(0, 4, {"v": 4})
        store.save(1, 2, {"v": 2})
        assert store.latest_epoch(0) == 4
        assert store.latest_epoch(1) == 2
        assert store.load(0, 4) == {"v": 4}

    def test_devices_do_not_collide(self, tmp_path):
        store = CheckpointStore(tmp_path, key="b" * 64)
        store.save(1, 3, {"device": 1})
        assert store.latest_epoch(11) is None
