"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "scheme_comparison", "hot_data_lifecycle",
            "wear_study", "replay_msr", "cache_dynamics",
            "custom_device"} <= names
