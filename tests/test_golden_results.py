"""Golden regression guard: the smoke-scale cells behind the committed
fig5/fig9 reference artifacts must reproduce their headline metrics
exactly (within 1e-9), so refactors cannot silently shift paper numbers.

Regenerate the golden files with ``python results/regenerate.py --golden``
only for a *deliberate* behaviour change; the diff is the audit trail.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import RunContext

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "results" / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*_smoke.json"))

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def smoke_matrix():
    """One sequential replay of the full smoke matrix (shared)."""
    ctx = RunContext(scale="smoke", seed=1)
    return ctx.run_matrix()


def test_golden_files_are_committed():
    assert len(GOLDEN_FILES) >= 2, (
        f"expected the committed fig5/fig9 golden files in {GOLDEN_DIR}")


def test_disabled_frontend_reproduces_golden_cells(smoke_matrix):
    """A carried-but-disabled ``FrontendConfig`` must be the direct
    replay path bit-for-bit: the golden cells reproduce exactly, not
    just within tolerance."""
    from repro.frontend import FrontendConfig

    ctx = RunContext(scale="smoke", seed=1)
    ctx.frontend = FrontendConfig()      # enabled=False
    for cell in (("ts0", "ipu"), ("lun2", "baseline")):
        assert ctx.run(*cell).deterministic_dict() == \
            smoke_matrix[cell].deterministic_dict()
        # And it is the same cache cell: disabled canonicalises to None.
        assert ctx.cell_key(*cell) == \
            RunContext(scale="smoke", seed=1).cell_key(*cell)


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_smoke_cells_match_golden(path, smoke_matrix):
    golden = json.loads(path.read_text())
    assert golden["scale"] == "smoke"
    mismatches = []
    for cell, metrics in golden["cells"].items():
        trace, scheme = cell.split("/")
        result = smoke_matrix[(trace, scheme)]
        for metric, expected in metrics.items():
            got = getattr(result, metric)
            if abs(got - expected) > TOLERANCE:
                mismatches.append(
                    f"{cell}.{metric}: golden {expected!r} != {got!r}")
    assert not mismatches, (
        "headline metrics drifted from the committed golden values "
        "(intentional change? re-run results/regenerate.py --golden):\n"
        + "\n".join(mismatches))
