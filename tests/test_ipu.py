"""IPU scheme: intra-page updates, level hierarchy, degraded movement."""

import pytest

from repro import IPUFTL
from repro.ftl.levels import BlockLevel
from repro.sim.ops import Cause, OpKind

from conftest import tiny_config


@pytest.fixture
def ftl():
    return IPUFTL(tiny_config())


class TestNewData:
    def test_lands_in_work_block(self, ftl):
        ftl.handle_write([0], 0.0)
        ppa = ftl.lookup(0)
        assert ftl.flash.block(ppa.block).level == int(BlockLevel.WORK)
        assert ftl.stats.level_writes[int(BlockLevel.WORK)] == 1

    def test_chunk_compact_at_slot_zero(self, ftl):
        ftl.handle_write([8, 9], 0.0)
        assert ftl.lookup(8).slot == 0
        assert ftl.lookup(9).slot == 1

    def test_pages_not_shared_between_requests(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([100], 1.0)
        a, b = ftl.lookup(0), ftl.lookup(100)
        assert (a.block, a.page) != (b.block, b.page)


class TestIntraPageUpdate:
    def test_update_stays_in_page(self, ftl):
        ftl.handle_write([0], 0.0)
        before = ftl.lookup(0)
        ftl.handle_write([0], 1.0)
        after = ftl.lookup(0)
        assert (after.block, after.page) == (before.block, before.page)
        assert after.slot == before.slot + 1
        assert ftl.stats.intra_page_updates == 1

    def test_old_slot_invalidated_before_partial_pass(self, ftl):
        """The paper's key claim: in-page disturb only hits invalid data."""
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        assert ftl.flash.partial_programs == 1
        assert ftl.flash.disturbed_valid_subpages == 0

    def test_page_marked_updated(self, ftl):
        ftl.handle_write([0], 0.0)
        ppa = ftl.lookup(0)
        ftl.handle_write([0], 1.0)
        assert ftl.flash.block(ppa.block).page_updated[ppa.page]

    def test_two_subpage_update_in_page(self, ftl):
        ftl.handle_write([0, 1], 0.0)
        ftl.handle_write([0, 1], 1.0)
        assert ftl.stats.intra_page_updates == 1
        assert ftl.lookup(0).slot == 2
        assert ftl.lookup(1).slot == 3

    def test_partial_transfer_is_small(self, ftl):
        ftl.handle_write([0], 0.0)
        ops = ftl.handle_write([0], 1.0)
        program = next(o for o in ops if o.kind is OpKind.PROGRAM)
        assert program.channel_slots == 1


class TestUpgradeMovement:
    def test_overflow_promotes_to_monitor(self, ftl):
        ftl.handle_write([0, 1], 0.0)   # slots 0,1
        ftl.handle_write([0, 1], 1.0)   # slots 2,3 (intra-page)
        ftl.handle_write([0, 1], 2.0)   # overflow -> Monitor
        ppa = ftl.lookup(0)
        assert ftl.flash.block(ppa.block).level == int(BlockLevel.MONITOR)
        assert ftl.stats.upgrade_moves == 1

    def test_monitor_promotes_to_hot(self, ftl):
        for t in range(3):
            ftl.handle_write([0, 1], float(t))   # reaches Monitor
        for t in range(3, 5):
            ftl.handle_write([0, 1], float(t))   # fills Monitor page, overflow
        ppa = ftl.lookup(0)
        assert ftl.flash.block(ppa.block).level == int(BlockLevel.HOT)

    def test_hot_stays_hot(self, ftl):
        for t in range(12):
            ftl.handle_write([0, 1], float(t))
        ppa = ftl.lookup(0)
        assert ftl.flash.block(ppa.block).level == int(BlockLevel.HOT)

    def test_single_subpage_takes_three_updates_in_page(self, ftl):
        ftl.handle_write([0], 0.0)
        for t in range(1, 4):
            ftl.handle_write([0], float(t))
        assert ftl.stats.intra_page_updates == 3
        assert ftl.stats.upgrade_moves == 0
        ftl.handle_write([0], 4.0)  # fourth update overflows
        assert ftl.stats.upgrade_moves == 1

    def test_no_second_level_mapping_needed(self, ftl):
        """An SLC page only ever holds one request chunk's data."""
        for i in range(40):
            ftl.handle_write([i * 4], float(i))
        for block in ftl.flash.region_blocks(True):
            for page in range(block.next_page):
                lsns = {int(block.slot_lsn[page, s])
                        for s in block.valid_slots_of_page(page)}
                assert len(lsns) <= 1 or (
                    max(lsns) - min(lsns) < ftl.geometry.subpages_per_page)


class TestGCMovement:
    def fill(self, ftl, n=4000):
        lsn = 0
        for i in range(n):
            ftl.handle_write([lsn], float(i) * 0.5)
            lsn += 4
            if ftl.flash.erases_slc > 4:
                break
        return lsn

    def test_data_preserved_across_gc(self, ftl):
        last = self.fill(ftl)
        assert ftl.flash.erases_slc > 0
        for lsn in range(0, last, 4):
            assert ftl.lookup(lsn) is not None
        ftl.check_consistency()

    def test_cold_work_data_demotes_to_mlc(self, ftl):
        self.fill(ftl)
        assert ftl.stats.evicted_subpages_to_mlc > 0

    def test_isr_policy_in_use(self, ftl):
        from repro.ftl.victim import IsrVictimPolicy
        assert isinstance(ftl.slc_gc.policy, IsrVictimPolicy)

    def test_relocated_page_resets_updated_flag(self, ftl):
        self.fill(ftl)
        # Every page that was just relocated (GC cause) starts unupdated;
        # sample live mappings and confirm flag consistency is possible.
        ftl.check_consistency()

    def test_updated_pages_stay_in_slc(self, ftl):
        """A page updated in its block moves to a same-level SLC block
        during GC rather than being evicted."""
        # Keep one datum hot while filling the cache with cold data.
        hot_lsn = 10_000 * 4
        ftl.handle_write([hot_lsn], 0.0)
        lsn, t = 0, 1.0
        while ftl.flash.erases_slc < 6:
            ftl.handle_write([lsn], t)
            lsn += 4
            t += 0.5
            ftl.handle_write([hot_lsn], t)  # keeps updating -> stays hot
            t += 0.5
        ppa = ftl.lookup(hot_lsn)
        assert ftl.flash.block(ppa.block).mode.is_slc
        ftl.check_consistency()
