"""Fault-interaction regressions for the device front-end.

The write buffer changes *when* data reaches the flash, so every fault
mechanism has to be re-checked against it.  The load-bearing contract is
the power-loss one: a buffered write is either replayed from flash by
the mount scan (it was destaged before the loss, possibly torn) or
dropped with the DRAM buffer (it was still dirty) — **never duplicated**
and never left half-applied.  Program-failure remaps must likewise keep
the device consistent when the failing program came from a coalesced
flush span rather than a host write.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultConfig, attach_faults
from repro.frontend import FrontendConfig
from repro.frontend.simulate import FrontendSimulator
from repro.traces.profiles import profile
from repro.traces.synth import generate

from conftest import tiny_config

SCHEMES = ("baseline", "mga", "ipu")


def short_trace(seed=11, n_requests=800):
    return generate(profile("ts0"), n_requests=n_requests, seed=seed,
                    mean_interarrival_ms=0.6)


def build_ftl(scheme, seed=0):
    from repro import SCHEMES as factories
    return factories[scheme](tiny_config(seed=seed))


#: Small buffer with a huge writeback delay: entries destage only under
#: pressure or at the end-of-run drain, so a power loss almost always
#: finds dirty DRAM contents to drop.
def lazy_frontend(**kw):
    base = dict(enabled=True, queue_depth=4, buffer_subpages=16,
                flush_watermark=0.5, writeback_delay_ms=1e9,
                flush_span_subpages=4)
    base.update(kw)
    return FrontendConfig(**base)


def run_faulty(scheme, faults, fe, *, fault_seed=3, n_requests=800):
    ftl = build_ftl(scheme)
    attach_faults(ftl, faults, seed=fault_seed)
    result = FrontendSimulator(ftl, fe).run(short_trace(n_requests=n_requests))
    return ftl, result


def assert_no_duplicate_bindings(ftl):
    """No LSN may hold more than one valid subpage on the flash — a
    duplicate means a buffered write was both replayed and re-applied."""
    seen = set()
    for block in ftl.flash.blocks:
        valid = block.valid
        slot_lsn = block.slot_lsn
        for page in range(valid.shape[0]):
            for slot in range(valid.shape[1]):
                if not valid[page, slot]:
                    continue
                lsn = int(slot_lsn[page, slot])
                assert lsn not in seen, \
                    f"LSN {lsn} valid twice on flash (scheme {ftl.scheme_name})"
                seen.add(lsn)
    mapped = {lsn for lsn, _ in ftl.iter_bindings()}
    assert mapped <= seen


@pytest.mark.parametrize("scheme", SCHEMES)
class TestPowerLossWithDirtyBuffer:
    FAULTS = FaultConfig(power_loss_per_ms=0.02)

    def test_losses_hit_a_nonempty_buffer_and_recover(self, scheme):
        ftl, result = run_faulty(scheme, self.FAULTS, lazy_frontend())
        assert result.power_loss_events > 0
        # The lazy buffer guarantees dirty contents at (at least) one loss.
        assert result.dropped_subpages > 0
        assert result.recovery_ms > 0
        ftl.check_consistency()
        assert_no_duplicate_bindings(ftl)

    def test_torn_destages_are_replayed_or_dropped_never_both(self, scheme):
        # Aggressive destaging (tiny delay) races flushes against losses,
        # so torn flush spans hit the mount scan's replay path.
        fe = lazy_frontend(writeback_delay_ms=0.5, buffer_subpages=8)
        ftl, result = run_faulty(scheme, self.FAULTS, fe)
        assert result.power_loss_events > 0
        assert result.flushed_subpages > 0
        ftl.check_consistency()
        assert_no_duplicate_bindings(ftl)

    def test_loss_outcome_is_deterministic(self, scheme):
        first = run_faulty(scheme, self.FAULTS, lazy_frontend())[1]
        second = run_faulty(scheme, self.FAULTS, lazy_frontend())[1]
        assert first.deterministic_dict() == second.deterministic_dict()


@pytest.mark.parametrize("scheme", SCHEMES)
class TestProgramFailuresUnderFlushSpans:
    FAULTS = FaultConfig(program_fault_rate=0.05)

    def test_remap_keeps_coalesced_spans_consistent(self, scheme):
        ftl, result = run_faulty(scheme, self.FAULTS, lazy_frontend())
        assert result.program_failures > 0
        assert result.flushes > 0
        ftl.check_consistency()
        assert_no_duplicate_bindings(ftl)

    def test_remap_outcome_is_deterministic(self, scheme):
        first = run_faulty(scheme, self.FAULTS, lazy_frontend())[1]
        second = run_faulty(scheme, self.FAULTS, lazy_frontend())[1]
        assert first.deterministic_dict() == second.deterministic_dict()


def test_rate_zero_faults_reproduce_the_fault_free_frontend():
    """Attaching a disabled fault config must not perturb the front-end
    path at all (the faults-side canonicalisation contract)."""
    fe = lazy_frontend()
    plain = FrontendSimulator(build_ftl("ipu"), fe).run(short_trace())
    ftl = build_ftl("ipu")
    attach_faults(ftl, FaultConfig.from_rate(0.0), seed=9)
    injected = FrontendSimulator(ftl, fe).run(short_trace())
    assert injected.deterministic_dict() == plain.deterministic_dict()
    assert injected.dropped_subpages == 0
    assert injected.power_loss_events == 0
