"""Trace analysis utilities."""

import numpy as np
import pytest

from repro.traces import generate, profile
from repro.traces.analysis import (
    footprint_curve,
    interarrival_stats,
    update_interval_ms,
    write_reuse,
    write_skew,
)
from repro.traces.model import Trace


def simple_trace():
    # Address 0 written at 0, 2, 4; address 4096 once; one read.
    return Trace(
        times_ms=[0.0, 1.0, 2.0, 3.0, 4.0],
        is_write=[True, True, True, False, True],
        offsets=[0, 4096, 0, 0, 0],
        sizes=[4096, 4096, 4096, 4096, 4096],
        name="s",
    )


class TestWriteReuse:
    def test_gaps(self):
        stats = write_reuse(simple_trace())
        assert stats.n_updates == 2
        assert stats.median_gap == pytest.approx(2.0)

    def test_no_updates(self):
        trace = Trace([0.0], [True], [0], [4096])
        assert write_reuse(trace).n_updates == 0

    def test_synthetic_locality(self):
        trace = generate(profile("ts0"), n_requests=6000, seed=4)
        stats = write_reuse(trace)
        assert stats.n_updates > 1000
        # The 8% locality window keeps most update gaps short.
        assert stats.near_fraction > 0.7


class TestFootprintCurve:
    def test_monotone(self):
        trace = generate(profile("ts0"), n_requests=3000, seed=4)
        _, curve = footprint_curve(trace)
        assert (np.diff(curve) >= 0).all()

    def test_final_value_counts_unique_bytes(self):
        _, curve = footprint_curve(simple_trace(), points=5)
        assert curve[-1] == 8192  # two unique 4K addresses

    def test_points_validated(self):
        with pytest.raises(ValueError):
            footprint_curve(simple_trace(), points=0)


class TestWriteSkew:
    def test_uniform_trace_no_skew(self):
        trace = Trace(
            [float(i) for i in range(4)], [True] * 4,
            [i * 4096 for i in range(4)], [4096] * 4)
        assert write_skew(trace, 0.25) == pytest.approx(0.25)

    def test_hot_trace_skewed(self):
        trace = generate(profile("ts0"), n_requests=6000, seed=4)
        skew = write_skew(trace, 0.1)
        assert skew > 0.2  # heavy-tailed hot counts concentrate traffic

    def test_bounds(self):
        with pytest.raises(ValueError):
            write_skew(simple_trace(), 0.0)

    def test_empty_writes(self):
        trace = Trace([0.0], [False], [0], [4096])
        assert write_skew(trace) == 0.0


class TestTiming:
    def test_interarrival(self):
        stats = interarrival_stats(simple_trace())
        assert stats["mean"] == pytest.approx(1.0)
        assert stats["median"] == pytest.approx(1.0)

    def test_single_request(self):
        trace = Trace([0.0], [True], [0], [4096])
        assert interarrival_stats(trace)["mean"] == 0.0

    def test_update_interval(self):
        assert update_interval_ms(simple_trace()) == pytest.approx(2.0)

    def test_update_interval_empty(self):
        trace = Trace([0.0], [False], [0], [4096])
        assert update_interval_ms(trace) == 0.0

    def test_update_interval_scales_with_interarrival(self):
        fast = generate(profile("ts0"), n_requests=2000, seed=4,
                        mean_interarrival_ms=0.1)
        slow = generate(profile("ts0"), n_requests=2000, seed=4,
                        mean_interarrival_ms=1.0)
        assert update_interval_ms(slow) > update_interval_ms(fast) * 5
