"""Fixture- and mutation-driven tests for the K (cache-key soundness)
and P (checkpoint/pickle safety) lint families.

Three layers of coverage:

* good/bad fixture pairs per rule, linted with the real engine — the
  K001 bad case is interprocedural, with the config read two call
  edges below the cached entry point;
* CLI plumbing the families share with everyone else: baseline
  round-trip, SARIF driver rules, ``--changed-only`` scoping, and the
  baseline-rot guard (exit 2 on entries that can never match again);
* mutation demos against a copy of the committed tree: deleting a
  field from a canonical-key emitter trips K001+K003, removing the
  ``_rebind_views()`` call from ``Block.__setstate__`` trips P002.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path: Path, files: "dict[str, str]",
              select: "tuple[str, ...]" = ("K", "P")):
    """Write a fixture tree and lint it with the K/P families."""
    for relpath, code in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
    result = run_lint(tmp_path, select=list(select))
    return [v.rule for v in result.violations], result


# --------------------------------------------------------------------------
# K001 — config field read in a cached cell but missing from the key

#: The read of ``cfg.fault_rate`` happens in ``_interarrival``, two call
#: edges below the cached entry point (simulate_fleet_device ->
#: run_device -> _interarrival), and the emitter lives in a third file.
K001_READS = {
    "fleet/runner.py": """
        from fleet.config import FleetConfig

        def run_device(cfg: FleetConfig):
            return _interarrival(cfg)

        def _interarrival(cfg: FleetConfig):
            return 1.0 / (1.0 + cfg.fault_rate)
        """,
    "experiments/workers.py": """
        from fleet.runner import run_device

        def simulate_fleet_device(cfg):
            return run_device(cfg)
        """,
}

K001_BAD_CONFIG = {
    "fleet/config.py": """
        class FleetConfig:
            n_devices: int
            fault_rate: float

            def to_dict(self) -> dict:
                return {"n_devices": self.n_devices}
        """,
}

K001_GOOD_CONFIG = {
    "fleet/config.py": """
        class FleetConfig:
            n_devices: int
            fault_rate: float

            def to_dict(self) -> dict:
                return {"n_devices": self.n_devices,
                        "fault_rate": self.fault_rate}
        """,
}


def test_k001_flags_interprocedural_read_of_unkeyed_field(tmp_path):
    rules, result = lint_tree(tmp_path, {**K001_BAD_CONFIG, **K001_READS})
    k001 = [v for v in result.violations if v.rule == "K001"]
    assert k001, rules
    assert k001[0].path == "fleet/runner.py"
    assert "fault_rate" in k001[0].message
    assert "simulate_fleet_device" in k001[0].message
    # The structural check fires at the emitter too.
    assert "K003" in rules


def test_k001_quiet_when_field_reaches_the_key(tmp_path):
    rules, _ = lint_tree(tmp_path, {**K001_GOOD_CONFIG, **K001_READS})
    assert "K001" not in rules and "K003" not in rules


def test_k001_quiet_outside_cached_call_tree(tmp_path):
    # Same unkeyed read, but nothing reachable from an entry point.
    files = {**K001_BAD_CONFIG,
             "fleet/runner.py": K001_READS["fleet/runner.py"]}
    rules, _ = lint_tree(tmp_path, files)
    assert "K001" not in rules  # K003 may still fire at the emitter


# --------------------------------------------------------------------------
# K002 — ambient input inside a cached cell

K002_BODY = """
    import os

    def simulate_cell(spec):
        return _run(spec)

    def _run(spec):
        return os.environ.get("REPRO_TWEAK", "0")
    """


def test_k002_flags_env_read_in_cached_cell(tmp_path):
    rules, result = lint_tree(tmp_path, {"experiments/workers.py": K002_BODY})
    assert "K002" in rules
    (v,) = [v for v in result.violations if v.rule == "K002"]
    assert "os.environ" in v.message and "simulate_cell" in v.message


def test_k002_allowlists_harness_files(tmp_path):
    # The same read inside bench.py (host-side harness) is accepted.
    rules, _ = lint_tree(tmp_path, {"bench.py": K002_BODY})
    assert "K002" not in rules


def test_k002_flags_file_read_two_edges_down(tmp_path):
    rules, _ = lint_tree(tmp_path, {"experiments/workers.py": """
        def simulate_cell(spec):
            return _middle(spec)

        def _middle(spec):
            return _leaf(spec)

        def _leaf(spec):
            with open("tweaks.json") as fh:
                return fh.read()
        """})
    assert "K002" in rules


# --------------------------------------------------------------------------
# K003 — canonical-key emitter completeness

def test_k003_flags_explicit_emitter_omitting_a_field(tmp_path):
    rules, result = lint_tree(tmp_path, {"traces/model.py": """
        class TraceProfile:
            name: str
            read_fraction: float

            def to_dict(self) -> dict:
                return {"name": self.name}
        """})
    assert rules == ["K003"]
    assert "read_fraction" in result.violations[0].message


def test_k003_accepts_structural_emitter(tmp_path):
    rules, _ = lint_tree(tmp_path, {"traces/model.py": """
        import dataclasses

        class TraceProfile:
            name: str
            read_fraction: float

            def to_dict(self) -> dict:
                return dataclasses.asdict(self)
        """})
    assert "K003" not in rules


# --------------------------------------------------------------------------
# P001 — loop-carry state vs the pickle protocol

P001_BAD = """
    class OpenLoopReplay:
        def feed(self, chunk):
            self.now = 0.0
            self.n = 0

        def __getstate__(self):
            return {"n": self.n}

        def __setstate__(self, state):
            self.n = state["n"]
    """

P001_GOOD = """
    class OpenLoopReplay:
        def feed(self, chunk):
            self.now = 0.0
            self.n = 0

        def __getstate__(self):
            return {"n": self.n, "now": self.now}

        def __setstate__(self, state):
            self.n = state["n"]
            self.now = state["now"]
    """


def test_p001_flags_getstate_dropping_loop_carry_attr(tmp_path):
    rules, result = lint_tree(tmp_path, {"fleet/replay.py": P001_BAD})
    assert "P001" in rules
    (v,) = [v for v in result.violations if v.rule == "P001"]
    assert "'now'" in v.message


def test_p001_quiet_when_state_round_trips(tmp_path):
    rules, _ = lint_tree(tmp_path, {"fleet/replay.py": P001_GOOD})
    assert "P001" not in rules


def test_p001_quiet_without_custom_getstate(tmp_path):
    # Default pickling keeps __dict__, so plain drivers are fine.
    rules, _ = lint_tree(tmp_path, {"fleet/replay.py": """
        class OpenLoopReplay:
            def feed(self, chunk):
                self.now = 0.0
        """})
    assert "P001" not in rules


def test_p001_flags_unpicklable_loop_carry_value(tmp_path):
    rules, result = lint_tree(tmp_path, {"fleet/replay.py": """
        class OpenLoopReplay:
            def feed(self, chunk):
                self._log = open("replay.log", "a")
        """})
    assert "P001" in rules
    assert "open file handle" in result.violations[0].message


def test_p001_respects_skip_tuple_dictcomp_getstate(tmp_path):
    # The {k: v for k, v in ... if k not in _SKIP} shape: a skipped attr
    # restored by __setstate__ is fine, a skipped-and-forgotten one is not.
    rules, _ = lint_tree(tmp_path, {"fleet/replay.py": """
        _SKIP = ("cursor",)

        class OpenLoopReplay:
            def feed(self, chunk):
                self.cursor = 0

            def __getstate__(self):
                return {k: v for k, v in self.__dict__.items()
                        if k not in _SKIP}

            def __setstate__(self, state):
                self.__dict__.update(state)
                self.cursor = 0
        """})
    assert "P001" not in rules
    rules, _ = lint_tree(tmp_path, {"fleet/replay.py": """
        _SKIP = ("cursor",)

        class OpenLoopReplay:
            def feed(self, chunk):
                self.cursor = 0

            def __getstate__(self):
                return {k: v for k, v in self.__dict__.items()
                        if k not in _SKIP}
        """})
    assert "P001" in rules


# --------------------------------------------------------------------------
# P002 — RegionState views need a __setstate__ rebind

P002_VIEWS = """
    def __init__(self, region, base):
        self.region = region
        self.base = base
        region = self.region
        self.valid_view = region.valid[base:base + 4]
        self.prog_view = region.programmed.reshape(2, 2)
    """

P002_REBIND = """
    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rebind_views()

    def _rebind_views(self):
        region = self.region
        self.valid_view = region.valid[self.base:self.base + 4]
        self.prog_view = region.programmed.reshape(2, 2)
    """


def test_p002_flags_views_without_setstate(tmp_path):
    rules, result = lint_tree(tmp_path, {"nand/block.py": (
        "class Block:\n" + textwrap.indent(textwrap.dedent(P002_VIEWS),
                                           "    "))})
    assert rules.count("P002") == 2  # one per view attribute
    assert "no __setstate__" in result.violations[0].message


def test_p002_quiet_with_rebind_pattern(tmp_path):
    rules, _ = lint_tree(tmp_path, {"nand/block.py": (
        "class Block:\n"
        + textwrap.indent(textwrap.dedent(P002_VIEWS), "    ")
        + textwrap.indent(textwrap.dedent(P002_REBIND), "    "))})
    assert "P002" not in rules


def test_p002_flags_setstate_that_skips_one_view(tmp_path):
    rules, result = lint_tree(tmp_path, {"nand/block.py": """
        class Block:
            def __init__(self, region):
                self.region = region
                self.valid_view = self.region.valid

            def __setstate__(self, state):
                self.__dict__.update(state)
        """})
    assert rules == ["P002"]
    assert "never" in result.violations[0].message


# --------------------------------------------------------------------------
# P003 — unpicklable payloads into the process pool

def test_p003_flags_lambda_into_pool_map(tmp_path):
    rules, result = lint_tree(tmp_path, {"experiments/parallel.py": """
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(xs):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(lambda x: x + 1, xs))
        """})
    assert rules == ["P003"]
    assert "lambda" in result.violations[0].message


def test_p003_flags_closure_into_pool_submit(tmp_path):
    rules, result = lint_tree(tmp_path, {"experiments/parallel.py": """
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(xs):
            def work(x):
                return x + 1
            with ProcessPoolExecutor() as pool:
                return [pool.submit(work, x) for x in xs]
        """})
    assert rules == ["P003"]
    assert "work()" in result.violations[0].message


def test_p003_accepts_module_level_callable(tmp_path):
    # map()'s iterables are consumed parent-side, so a generator
    # argument is fine; only the callable must pickle.
    rules, _ = lint_tree(tmp_path, {"experiments/parallel.py": """
        from concurrent.futures import ProcessPoolExecutor

        def work(x):
            return x + 1

        def fan_out(xs):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, (x for x in xs)))
        """})
    assert "P003" not in rules


# --------------------------------------------------------------------------
# CLI plumbing: clean tree, baseline round-trip, SARIF

def test_clean_tree_select_kp_with_empty_baseline(monkeypatch, capsys):
    """Acceptance contract: the committed tree passes ``--select K,P``
    with the committed (empty) baseline — every real finding was fixed
    in-tree or allowlisted with a rationale, never baselined."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--select", "K,P", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["K001", "K002", "K003",
                                    "P001", "P002", "P003"]
    assert payload["violations"] == []


def seed_k003(tmp_path: Path) -> Path:
    path = tmp_path / "traces" / "model.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent("""
        class TraceProfile:
            name: str
            read_fraction: float

            def to_dict(self) -> dict:
                return {"name": self.name}
        """), encoding="utf-8")
    return path


def test_kp_baseline_round_trip(tmp_path, capsys):
    bad = seed_k003(tmp_path)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--select", "K,P"]) == 1
    assert main(["lint", "--root", root, "--select", "K,P",
                 "--update-baseline"]) == 0
    entries = json.loads(
        (tmp_path / "LINT_BASELINE.json").read_text())["entries"]
    assert [e["rule"] for e in entries] == ["K003"]
    assert main(["lint", "--root", root, "--select", "K,P"]) == 0
    # Fixing the emitter makes the entry stale; the ratchet must shrink.
    bad.write_text(bad.read_text().replace(
        '{"name": self.name}',
        '{"name": self.name, "read_fraction": self.read_fraction}'),
        encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", root, "--select", "K,P"]) == 1
    assert "stale" in capsys.readouterr().out


def test_sarif_includes_kp_driver_rules(tmp_path, capsys):
    seed_k003(tmp_path)
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--select", "K,P",
                 "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    (run,) = doc["runs"]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == ["K001", "K002", "K003", "P001", "P002", "P003"]
    (result,) = run["results"]
    assert result["ruleId"] == "K003"
    assert result["partialFingerprints"]["reproLint/v1"]


# --------------------------------------------------------------------------
# baseline-rot guard (exit 2 on entries that can never match again)

def test_baseline_rot_unknown_rule_exits_2(tmp_path, capsys):
    seed_k003(tmp_path)
    (tmp_path / "LINT_BASELINE.json").write_text(json.dumps({
        "format": 1,
        "entries": [{"rule": "Z999", "path": "traces/model.py",
                     "fingerprint": "deadbeefdeadbeef"}],
    }), encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "unknown rule 'Z999'" in out and "rotted" in out


def test_baseline_rot_deleted_file_exits_2(tmp_path, capsys):
    seed_k003(tmp_path)
    (tmp_path / "LINT_BASELINE.json").write_text(json.dumps({
        "format": 1,
        "entries": [{"rule": "K003", "path": "traces/deleted.py",
                     "fingerprint": "deadbeefdeadbeef"}],
    }), encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path)]) == 2
    assert "deleted file 'traces/deleted.py'" in capsys.readouterr().out


def test_baseline_rot_guard_accepts_live_entries(tmp_path):
    # A real entry (written by --update-baseline) passes the guard.
    seed_k003(tmp_path)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert main(["lint", "--root", root]) == 0


# --------------------------------------------------------------------------
# --changed-only (git-diff-aware scoping)

def _git(tmp_path: Path, *argv: str) -> None:
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    *argv], cwd=tmp_path, check=True, capture_output=True)


def test_changed_only_scopes_to_uncommitted_files(tmp_path, capsys):
    # A committed violation is out of scope; a fresh one is reported.
    committed = seed_k003(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--changed-only"]) == 0
    fresh = tmp_path / "traces" / "fresh.py"
    fresh.write_text(committed.read_text().replace(
        "TraceProfile", "FaultConfig"), encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--changed-only",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["path"] for v in payload["violations"]} == {"traces/fresh.py"}


def test_changed_only_project_rules_still_see_full_tree(tmp_path, capsys):
    # Only fleet/runner.py is dirty.  The K001 finding it hosts depends
    # on the *unchanged* config/entry files being analyzed, and the
    # K003 finding on the unchanged emitter must be scoped out.
    for relpath, code in {**K001_BAD_CONFIG, **K001_READS}.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    runner = tmp_path / "fleet" / "runner.py"
    runner.write_text(runner.read_text() + "\n# touched\n",
                      encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--changed-only",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in payload["violations"]} == {"K001"}
    assert {v["path"] for v in payload["violations"]} == {"fleet/runner.py"}


def test_changed_only_clean_git_tree_exits_fast(tmp_path, capsys):
    seed_k003(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--changed-only"]) == 0
    assert "no changed Python files" in capsys.readouterr().out


def test_changed_only_without_git_falls_back_to_full_run(tmp_path, capsys):
    seed_k003(tmp_path)
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--changed-only"]) == 1
    assert "running the full tree" in capsys.readouterr().out


def test_changed_only_refuses_update_baseline(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path), "--changed-only",
                 "--update-baseline"]) == 2


# --------------------------------------------------------------------------
# mutation demos against a copy of the committed tree

def _mutated_tree(tmp_path: Path, relpath: str, old: str, new: str) -> Path:
    pkg = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", pkg,
                    ignore=shutil.ignore_patterns("__pycache__",
                                                  "*.egg-info"))
    target = pkg / relpath
    text = target.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor missing from {relpath}"
    target.write_text(text.replace(old, new), encoding="utf-8")
    return pkg


def test_mutation_dropping_key_field_trips_k001_and_k003(tmp_path):
    pkg = _mutated_tree(
        tmp_path, "fleet/config.py",
        'return {"profile": self.profile, "weight": self.weight}',
        'return {"profile": self.profile}')
    result = run_lint(pkg, select=["K"])
    rules = {v.rule for v in result.violations}
    assert {"K001", "K003"} <= rules
    k001_paths = {v.path for v in result.violations if v.rule == "K001"}
    # The deepest read is in the fleet runner, reached through
    # simulate_fleet_device -> run_device -> tenant scheduling.
    assert "fleet/runner.py" in k001_paths
    assert all("weight" in v.message for v in result.violations)


def test_mutation_removing_rebind_trips_p002(tmp_path):
    pkg = _mutated_tree(
        tmp_path, "nand/block.py",
        "self._rebind_views()", "pass")
    result = run_lint(pkg, select=["P"])
    p002 = [v for v in result.violations if v.rule == "P002"]
    assert p002 and all(v.path == "nand/block.py" for v in p002)
    assert any("_rebind_views" in v.message for v in p002)


def test_committed_tree_unmutated_is_clean(tmp_path):
    pkg = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", pkg,
                    ignore=shutil.ignore_patterns("__pycache__",
                                                  "*.egg-info"))
    result = run_lint(pkg, select=["K", "P"])
    assert result.violations == []
