"""GC controller: triggers, incremental draining, emergency collection,
wear levelling."""

import pytest

from repro import BaselineFTL, IPUFTL
from repro.nand.block import BlockState
from repro.sim.ops import Cause, OpKind

from conftest import tiny_config


def fill_slc(ftl, target_erases=1, limit=6000, stride=4):
    """Write unique cold data until the SLC region has erased blocks."""
    lsn, t = 0, 0.0
    for _ in range(limit):
        ftl.handle_write([lsn], t)
        lsn += stride
        t += 0.5
        if ftl.flash.erases_slc >= target_erases:
            break
    return lsn


class TestTrigger:
    def test_no_gc_when_plenty_free(self):
        ftl = BaselineFTL(tiny_config())
        ops = ftl.handle_write([0], 0.0)
        assert not any(o.cause is Cause.GC for o in ops)
        assert ftl.slc_gc.stats.collections == 0

    def test_gc_triggers_under_pressure(self):
        ftl = BaselineFTL(tiny_config())
        fill_slc(ftl)
        assert ftl.slc_gc.stats.collections >= 1

    def test_threshold_above_reserve(self):
        ftl = BaselineFTL(tiny_config())
        from repro.ftl.allocator import GC_RESERVE_BLOCKS
        assert ftl.slc_gc._threshold_blocks() > GC_RESERVE_BLOCKS

    def test_restore_above_threshold(self):
        ftl = BaselineFTL(tiny_config())
        assert ftl.slc_gc._restore_blocks() > ftl.slc_gc._threshold_blocks()


class TestIncrementalDrain:
    def test_bounded_pages_per_trigger(self):
        cfg = tiny_config(gc_pages_per_trigger=2)
        ftl = BaselineFTL(cfg)
        lsn, t = 0, 0.0
        max_moves_per_call = 0
        for _ in range(4000):
            ops = ftl.handle_write([lsn], t)
            moves = sum(1 for o in ops
                        if o.cause is Cause.GC and o.kind is OpKind.PROGRAM)
            max_moves_per_call = max(max_moves_per_call, moves)
            lsn += 4
            t += 0.5
            if ftl.flash.erases_slc >= 3:
                break
        assert ftl.flash.erases_slc >= 3
        # 2 pages per region per trigger, both regions may drain.
        assert max_moves_per_call <= 8

    def test_drain_completes_before_new_victim(self):
        ftl = BaselineFTL(tiny_config())
        fill_slc(ftl, target_erases=2)
        gc = ftl.slc_gc
        if gc.draining:
            victim = gc._victim
            assert victim.state is BlockState.VICTIM

    def test_erase_op_emitted_at_completion(self):
        ftl = BaselineFTL(tiny_config())
        lsn, t = 0, 0.0
        saw_erase = False
        for _ in range(6000):
            ops = ftl.handle_write([lsn], t)
            if any(o.kind is OpKind.ERASE for o in ops):
                saw_erase = True
                break
            lsn += 4
            t += 0.5
        assert saw_erase


class TestStats:
    def test_utilization_recorded_per_victim(self):
        ftl = BaselineFTL(tiny_config())
        fill_slc(ftl, target_erases=2)
        stats = ftl.slc_gc.stats
        assert stats.utilization_blocks >= stats.collections
        assert 0.0 < stats.page_utilization <= 1.0

    def test_baseline_utilization_reflects_fragmentation(self):
        ftl = BaselineFTL(tiny_config())
        fill_slc(ftl, target_erases=2)  # single-subpage writes -> 25%
        assert ftl.slc_gc.stats.page_utilization < 0.5

    def test_moved_subpages_counted(self):
        ftl = IPUFTL(tiny_config())
        fill_slc(ftl, target_erases=2)
        assert ftl.slc_gc.stats.moved_subpages > 0


class TestEmergency:
    def test_collect_emergency_frees_blocks(self):
        ftl = BaselineFTL(tiny_config())
        fill_slc(ftl, target_erases=1)
        before = ftl.flash.erases_slc
        ops = ftl.slc_gc.collect_emergency(1e9)
        # Either finished a drain or collected a fresh victim.
        assert ftl.flash.erases_slc >= before

    def test_emergency_noop_when_empty(self):
        ftl = BaselineFTL(tiny_config())
        assert ftl.mlc_gc.collect_emergency(0.0) == []


class TestWearLeveling:
    def test_static_wl_moves_cold_block(self):
        cfg = tiny_config(wear_leveling_gap=1, wear_leveling_period=2)
        ftl = BaselineFTL(cfg)
        fill_slc(ftl, target_erases=8, limit=20000)
        # With an aggressive gap/period the tracker must have fired.
        assert ftl.slc_wear.leveling_moves >= 1

    def test_wl_disabled(self):
        cfg = tiny_config(static_wear_leveling=False)
        ftl = BaselineFTL(cfg)
        fill_slc(ftl, target_erases=8, limit=20000)
        assert ftl.slc_wear.leveling_moves == 0

    def test_wear_spread_bounded(self):
        cfg = tiny_config(wear_leveling_gap=2, wear_leveling_period=2)
        ftl = BaselineFTL(cfg)
        fill_slc(ftl, target_erases=10, limit=30000)
        # Dynamic + static levelling keep the spread moderate.
        assert ftl.slc_wear.spread <= 10
