"""S001 schema-drift guard: extraction, snapshot, and trip scenarios."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import current_schema, run_lint, write_schema_snapshot
from repro.analysis.schema import (
    extract_cache_schema_version,
    extract_result_schema,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

SIMULATOR_TEMPLATE = '''
from dataclasses import dataclass


@dataclass
class SimulationResult:
    """Toy result mirroring the real class shape."""

    NONDETERMINISTIC_FIELDS = ("wall_seconds",)

    scheme: str
    n_requests: int
    wall_seconds: float
{extra_fields}
    def summary(self):
        return {{"scheme": self.scheme, "requests": self.n_requests}}
'''


def make_repo(tmp_path: Path, version: int = 2,
              extra_fields: str = "") -> tuple[Path, Path]:
    """A minimal src/repro tree with a SimulationResult and a cache."""
    pkg = tmp_path / "src" / "repro"
    (pkg / "sim").mkdir(parents=True, exist_ok=True)
    (pkg / "experiments").mkdir(parents=True, exist_ok=True)
    (pkg / "sim" / "simulator.py").write_text(
        SIMULATOR_TEMPLATE.format(extra_fields=extra_fields),
        encoding="utf-8")
    (pkg / "experiments" / "cache.py").write_text(
        f"CACHE_SCHEMA_VERSION = {version}\n", encoding="utf-8")
    return tmp_path, pkg


def s001_violations(repo: Path, pkg: Path):
    result = run_lint(pkg, repo_root=repo, select=["S001"])
    return [v for v in result.violations if v.rule == "S001"]


# --------------------------------------------------------------------------
# extraction


def test_extracts_fields_nondet_and_summary_keys(tmp_path):
    repo, pkg = make_repo(tmp_path)
    schema = extract_result_schema(pkg / "sim" / "simulator.py")
    assert schema["fields"] == ["scheme", "n_requests", "wall_seconds"]
    assert schema["nondeterministic_fields"] == ["wall_seconds"]
    assert schema["summary_keys"] == ["scheme", "requests"]


def test_extracts_cache_schema_version(tmp_path):
    repo, pkg = make_repo(tmp_path, version=7)
    assert extract_cache_schema_version(
        pkg / "experiments" / "cache.py") == 7


def test_committed_snapshot_matches_the_tree():
    """The S001 source of truth: results/schema_snapshot.json must equal
    what AST extraction sees in the committed sources."""
    snapshot = json.loads(
        (REPO_ROOT / "results" / "schema_snapshot.json").read_text())
    assert current_schema(PACKAGE_ROOT) == snapshot


# --------------------------------------------------------------------------
# trip scenarios


def test_missing_snapshot_is_a_violation(tmp_path):
    repo, pkg = make_repo(tmp_path)
    (found,) = s001_violations(repo, pkg)
    assert "missing" in found.message


def test_clean_after_snapshot_written(tmp_path):
    repo, pkg = make_repo(tmp_path)
    write_schema_snapshot(repo)
    assert s001_violations(repo, pkg) == []


def test_field_added_without_version_bump_trips(tmp_path):
    repo, pkg = make_repo(tmp_path)
    write_schema_snapshot(repo)
    make_repo(tmp_path, version=2, extra_fields="    gc_scans: int = 0\n")
    (found,) = s001_violations(repo, pkg)
    assert "without a CACHE_SCHEMA_VERSION bump" in found.message
    assert "gc_scans" in found.message


def test_field_added_with_bump_still_requires_snapshot_refresh(tmp_path):
    repo, pkg = make_repo(tmp_path)
    write_schema_snapshot(repo)
    make_repo(tmp_path, version=3, extra_fields="    gc_scans: int = 0\n")
    (found,) = s001_violations(repo, pkg)
    assert "regenerate" in found.message
    # ... and regenerating re-arms the guard.
    write_schema_snapshot(repo)
    assert s001_violations(repo, pkg) == []


def test_version_bump_alone_requires_snapshot_refresh(tmp_path):
    repo, pkg = make_repo(tmp_path)
    write_schema_snapshot(repo)
    make_repo(tmp_path, version=3)
    (found,) = s001_violations(repo, pkg)
    assert "snapshot records 2" in found.message


def test_summary_key_drift_trips(tmp_path):
    repo, pkg = make_repo(tmp_path)
    write_schema_snapshot(repo)
    sim = pkg / "sim" / "simulator.py"
    sim.write_text(sim.read_text().replace('"requests":', '"n_requests":'),
                   encoding="utf-8")
    (found,) = s001_violations(repo, pkg)
    assert "summary key" in found.message


def test_fixture_trees_without_simulator_are_skipped(tmp_path):
    (tmp_path / "ftl").mkdir()
    (tmp_path / "ftl" / "x.py").write_text("A = 1\n", encoding="utf-8")
    result = run_lint(tmp_path, repo_root=tmp_path, select=["S001"])
    assert result.violations == []


def test_real_tree_passes_s001():
    assert s001_violations(REPO_ROOT, PACKAGE_ROOT) == []
