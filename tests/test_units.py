"""Unit helpers: conversions, alignment, formatting."""

import pytest

from repro import units


class TestSizes:
    def test_kib(self):
        assert units.kib(4) == 4096

    def test_mib(self):
        assert units.mib(1) == 1024 * 1024

    def test_gib(self):
        assert units.gib(2) == 2 * 1024 ** 3

    def test_fractional_kib(self):
        assert units.kib(0.5) == 512

    def test_bytes_to_kib(self):
        assert units.bytes_to_kib(8192) == 8.0

    def test_bytes_to_mib(self):
        assert units.bytes_to_mib(units.mib(3)) == 3.0


class TestCeilDiv:
    def test_exact(self):
        assert units.ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert units.ceil_div(9, 4) == 3

    def test_one(self):
        assert units.ceil_div(1, 4096) == 1

    def test_zero_numerator(self):
        assert units.ceil_div(0, 7) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            units.ceil_div(5, 0)

    def test_rejects_negative_divisor(self):
        with pytest.raises(ValueError):
            units.ceil_div(5, -1)


class TestAlignment:
    def test_align_down(self):
        assert units.align_down(4097, 4096) == 4096

    def test_align_down_exact(self):
        assert units.align_down(8192, 4096) == 8192

    def test_align_up(self):
        assert units.align_up(4097, 4096) == 8192

    def test_align_up_exact(self):
        assert units.align_up(8192, 4096) == 8192

    def test_align_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.align_up(10, 0)
        with pytest.raises(ValueError):
            units.align_down(10, -4)


class TestTime:
    def test_ms_us_roundtrip(self):
        assert units.us_to_ms(units.ms_to_us(0.3)) == pytest.approx(0.3)

    def test_constants(self):
        assert units.US == pytest.approx(1e-3)
        assert units.SEC == pytest.approx(1e3)


class TestFormatting:
    def test_fmt_bytes_small(self):
        assert units.fmt_bytes(512) == "512B"

    def test_fmt_bytes_kib(self):
        assert units.fmt_bytes(4096) == "4.00KiB"

    def test_fmt_bytes_mib(self):
        assert "MiB" in units.fmt_bytes(units.mib(3))

    def test_fmt_ms_sub_millisecond(self):
        assert units.fmt_ms(0.025) == "25.00us"

    def test_fmt_ms_milliseconds(self):
        assert units.fmt_ms(10.0) == "10.000ms"

    def test_fmt_ms_seconds(self):
        assert units.fmt_ms(1500.0) == "1.500s"
