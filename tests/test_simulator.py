"""Trace replay: latency accounting and result aggregation."""

import numpy as np
import pytest

from repro import SCHEMES, Simulator, replay
from repro.traces import generate, profile
from repro.traces.model import Trace

from conftest import tiny_config


def small_trace(n=600, seed=4):
    return generate(profile("ts0"), n_requests=n, seed=seed,
                    mean_interarrival_ms=0.8)


class TestReplay:
    def test_all_requests_served(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        trace = small_trace()
        result = Simulator(ftl).run(trace)
        assert result.n_requests == len(trace)
        assert len(result.read_latencies) == trace.n_reads
        assert len(result.write_latencies) == trace.n_writes

    def test_latencies_positive(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        result = Simulator(ftl).run(small_trace())
        assert (result.read_latencies > 0).all()
        assert (result.write_latencies > 0).all()

    def test_write_latency_at_least_program_time(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        result = Simulator(ftl).run(small_trace())
        assert result.write_latencies.min() >= 0.3

    def test_read_latency_at_least_media_time(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        result = Simulator(ftl).run(small_trace())
        assert result.read_latencies.min() >= 0.025

    def test_deterministic(self, scheme_name):
        cfg = tiny_config()
        r1 = Simulator(SCHEMES[scheme_name](cfg)).run(small_trace())
        r2 = Simulator(SCHEMES[scheme_name](cfg)).run(small_trace())
        assert np.array_equal(r1.read_latencies, r2.read_latencies)
        assert np.array_equal(r1.write_latencies, r2.write_latencies)
        assert r1.read_error_rate == r2.read_error_rate

    def test_error_metric_accumulates_only_on_reads(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        result = Simulator(ftl).run(small_trace())
        assert result.read_bits > 0
        assert result.read_raw_errors > 0
        assert 1e-6 < result.read_error_rate < 1e-2

    def test_mapping_memory_filled(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        result = Simulator(ftl).run(small_trace(n=100))
        assert result.mapping_table_bytes > 0

    def test_summary_keys(self):
        result = replay(SCHEMES["ipu"](tiny_config()), small_trace(n=100))
        summary = result.summary()
        for key in ("scheme", "trace", "avg_latency_ms", "read_error_rate",
                    "erases_slc", "slc_page_utilization"):
            assert key in summary

    def test_replay_helper(self):
        result = replay(SCHEMES["baseline"](tiny_config()), small_trace(n=50))
        assert result.scheme == "baseline"
        assert result.trace_name == "ts0"


class TestGcAccounting:
    def test_gc_delays_later_requests_not_trigger(self):
        """GC runs in the background: the op stream still reserves chips,
        so sustained GC shows up as queueing for subsequent requests."""
        cfg = tiny_config()
        ftl = SCHEMES["baseline"](cfg)
        result = Simulator(ftl).run(small_trace(n=2500))
        assert ftl.flash.erases_slc > 0
        # Queueing exists: the mean exceeds the bare service time.
        assert result.avg_write_latency_ms > 0.3

    def test_sim_time_spans_trace(self):
        trace = small_trace(n=200)
        result = replay(SCHEMES["mga"](tiny_config()), trace)
        assert result.sim_time_ms >= float(trace.times_ms[-1])


class TestEmptyAndEdge:
    def test_single_request(self):
        trace = Trace([0.0], [True], [0], [4096], name="one")
        result = replay(SCHEMES["ipu"](tiny_config()), trace)
        assert result.n_requests == 1
        assert result.avg_read_latency_ms == 0.0

    def test_read_only_trace(self):
        trace = Trace([0.0, 1.0], [False, False], [0, 8192],
                      [4096, 4096], name="ro")
        result = replay(SCHEMES["baseline"](tiny_config()), trace)
        assert result.read_bits == 2 * 4096 * 8
        assert result.programs_slc == 0
