"""Trace characterisation (Tables 1 and 3 regeneration)."""

import pytest

from repro.traces.model import Trace
from repro.traces.stats import HOT_THRESHOLD, characterize, update_size_buckets
from repro.units import KIB


def trace_from(rows):
    """rows: (time, is_write, offset, size)"""
    t, w, o, s = zip(*rows)
    return Trace(t, w, o, s, name="x")


class TestBuckets:
    def test_boundaries(self):
        probs = update_size_buckets([4 * KIB, 8 * KIB, 9 * KIB])
        assert probs == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_4k_inclusive(self):
        assert update_size_buckets([4096]) == (1.0, 0.0, 0.0)

    def test_8k_in_middle(self):
        assert update_size_buckets([8192]) == (0.0, 1.0, 0.0)

    def test_empty(self):
        assert update_size_buckets([]) == (0.0, 0.0, 0.0)


class TestCharacterize:
    def test_update_detection(self):
        trace = trace_from([
            (0.0, True, 0, 4096),       # first write
            (1.0, True, 0, 4096),       # update
            (2.0, True, 4096, 8192),    # first write elsewhere
        ])
        stats = characterize(trace)
        assert stats.n_updates == 1
        assert stats.update_size_probs == (1.0, 0.0, 0.0)

    def test_write_ratio_and_mean(self):
        trace = trace_from([
            (0.0, True, 0, 4096),
            (1.0, False, 0, 4096),
            (2.0, True, 8192, 12288),
        ])
        stats = characterize(trace)
        assert stats.write_ratio == pytest.approx(2 / 3)
        assert stats.mean_write_bytes == pytest.approx((4096 + 12288) / 2)

    def test_hot_threshold_is_paper_value(self):
        assert HOT_THRESHOLD == 4

    def test_hot_ratio_counts_reads_too(self):
        rows = [(float(i), i % 2 == 0, 0, 4096) for i in range(4)]
        rows.append((10.0, True, 4096, 4096))
        stats = characterize(trace_from(rows))
        # Address 0 touched 4 times (hot); address 4096 once.
        assert stats.hot_write_ratio == pytest.approx(0.5)

    def test_three_accesses_not_hot(self):
        rows = [(float(i), True, 0, 4096) for i in range(3)]
        stats = characterize(trace_from(rows))
        assert stats.hot_write_ratio == 0.0

    def test_table_rows_formatted(self):
        trace = trace_from([(0.0, True, 0, 4096)])
        stats = characterize(trace)
        row1 = stats.table1_row()
        row3 = stats.table3_row()
        assert row1["Trace"] == "x"
        assert row3["# of Req."] == "1"
        assert row3["Write R"] == "100.0%"
