"""The P/E sweep experiment module (Figures 13/14 internals)."""

import pytest

from repro.experiments import run
from repro.experiments.sweep import PE_LEVELS, SWEEP_TRACES, sweep_context


class TestSweepStructure:
    def test_pe_levels_include_default(self):
        assert 4000 in PE_LEVELS
        assert list(PE_LEVELS) == sorted(PE_LEVELS)

    def test_all_six_traces_swept(self):
        assert len(SWEEP_TRACES) == 6

    def test_context_memoised_per_scale(self):
        assert sweep_context("smoke", 3) is sweep_context("smoke", 3)
        assert sweep_context("smoke", 3) is not sweep_context("smoke", 4)

    def test_sweep_uses_shorter_traces(self):
        ctx = sweep_context("smoke", 3)
        assert ctx.length_factor < 1.0


class TestSweepArtifacts:
    @pytest.fixture(scope="class")
    def fig14(self):
        return run("fig14", scale="smoke", seed=3)

    def test_rows_cover_matrix(self, fig14):
        assert len(fig14.rows) == len(PE_LEVELS) * 3

    def test_error_monotone_in_pe(self, fig14):
        for scheme in ("baseline", "mga", "ipu"):
            means = [float(r["mean"]) for r in fig14.rows
                     if r["Scheme"] == scheme]
            assert means == sorted(means)

    def test_ipu_below_mga_at_every_age(self, fig14):
        by_pe = {}
        for row in fig14.rows:
            by_pe.setdefault(row["P/E"], {})[row["Scheme"]] = float(row["mean"])
        for pe, values in by_pe.items():
            assert values["ipu"] < values["mga"], f"P/E {pe}"

    def test_fig13_latency_monotone(self):
        fig13 = run("fig13", scale="smoke", seed=3)
        for scheme in ("baseline", "mga", "ipu"):
            means = [float(r["mean"]) for r in fig13.rows
                     if r["Scheme"] == scheme]
            assert means[-1] > means[0]

    def test_chart_attached(self, fig14):
        assert "P/E" in fig14.render() or fig14.chart
        assert fig14.chart
