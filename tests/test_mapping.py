"""Mapping tables."""

import pytest

from repro.errors import MappingError
from repro.ftl.mapping import PageMap, SubpageMap
from repro.nand.geometry import PPA


class TestPageMap:
    def test_lookup_missing(self):
        assert PageMap().lookup(0) is None

    def test_bind_lookup(self):
        pm = PageMap()
        pm.bind(5, 3, 7)
        assert pm.lookup(5) == (3, 7)

    def test_rebind_replaces(self):
        pm = PageMap()
        pm.bind(5, 3, 7)
        pm.bind(5, 4, 0)
        assert pm.lookup(5) == (4, 0)
        assert len(pm) == 1

    def test_unbind(self):
        pm = PageMap()
        pm.bind(5, 3, 7)
        pm.unbind(5)
        assert pm.lookup(5) is None

    def test_unbind_missing_rejected(self):
        with pytest.raises(MappingError):
            PageMap().unbind(5)

    def test_negative_lpn_rejected(self):
        with pytest.raises(MappingError):
            PageMap().bind(-1, 0, 0)

    def test_contains_and_items(self):
        pm = PageMap()
        pm.bind(1, 2, 3)
        assert 1 in pm
        assert 2 not in pm
        assert dict(pm.items()) == {1: (2, 3)}


class TestSubpageMap:
    def test_lookup_missing(self):
        assert SubpageMap().lookup(0) is None

    def test_bind_lookup(self):
        sm = SubpageMap()
        sm.bind(9, PPA(1, 2, 3))
        assert sm.lookup(9) == PPA(1, 2, 3)

    def test_rebind_replaces(self):
        sm = SubpageMap()
        sm.bind(9, PPA(1, 2, 3))
        sm.bind(9, PPA(4, 5, 0))
        assert sm.lookup(9) == PPA(4, 5, 0)
        assert len(sm) == 1

    def test_unbind(self):
        sm = SubpageMap()
        sm.bind(9, PPA(1, 2, 3))
        sm.unbind(9)
        assert 9 not in sm

    def test_unbind_missing_rejected(self):
        with pytest.raises(MappingError):
            SubpageMap().unbind(9)

    def test_negative_lsn_rejected(self):
        with pytest.raises(MappingError):
            SubpageMap().bind(-1, PPA(0, 0, 0))

    def test_items(self):
        sm = SubpageMap()
        sm.bind(1, PPA(0, 0, 1))
        sm.bind(2, PPA(0, 0, 2))
        assert dict(sm.items()) == {1: PPA(0, 0, 1), 2: PPA(0, 0, 2)}
