"""The in-page update feasibility check."""

import pytest

from repro.core.intra_page import plan_intra_page_update
from repro.nand.block import Block, BlockState
from repro.nand.cell import CellMode
from repro.nand.geometry import PPA


def make_block(mode=CellMode.SLC):
    block = Block(0, mode, 4, 4)
    block.open_as(1, 0.0)
    return block


def plan(chunk, mappings, block, max_programs=4):
    return plan_intra_page_update(
        chunk, mappings, get_block=lambda _id: block,
        max_page_programs=max_programs)


class TestFeasible:
    def test_single_subpage_update(self):
        block = make_block()
        block.program(0, [0], [7], 0.0, 4)
        result = plan([7], [PPA(0, 0, 0)], block)
        assert result is not None
        assert result.target_slots == (1,)
        assert result.old_slots == (0,)

    def test_two_subpage_update(self):
        block = make_block()
        block.program(0, [0, 1], [7, 8], 0.0, 4)
        result = plan([7, 8], [PPA(0, 0, 0), PPA(0, 0, 1)], block)
        assert result.target_slots == (2, 3)

    def test_targets_lowest_free_slots(self):
        block = make_block()
        block.program(0, [0, 2], [7, 8], 0.0, 4)
        block.invalidate(0, 2)  # stale older version
        result = plan([7], [PPA(0, 0, 0)], block)
        assert result.target_slots == (1,)

    def test_partial_rewrite_rejected(self):
        """An update that covers only part of the page's live data must
        not partial-program in place (it would disturb the sibling)."""
        block = make_block()
        block.program(0, [0, 1], [7, 8], 0.0, 4)
        assert plan([7], [PPA(0, 0, 0)], block) is None

    def test_works_on_full_block(self):
        block = make_block()
        for page in range(4):
            block.program(page, [0], [page], 0.0, 4)
        assert block.state is BlockState.FULL
        assert plan([0], [PPA(0, 0, 0)], block) is not None


class TestInfeasible:
    def test_unmapped_chunk(self):
        block = make_block()
        assert plan([7], [None], block) is None

    def test_partially_mapped_chunk(self):
        block = make_block()
        block.program(0, [0], [7], 0.0, 4)
        assert plan([7, 8], [PPA(0, 0, 0), None], block) is None

    def test_split_across_pages(self):
        block = make_block()
        block.program(0, [0], [7], 0.0, 4)
        block.program(1, [0], [8], 0.0, 4)
        assert plan([7, 8], [PPA(0, 0, 0), PPA(0, 1, 0)], block) is None

    def test_not_enough_free_slots(self):
        block = make_block()
        block.program(0, [0, 1, 2], [7, 8, 9], 0.0, 4)
        assert plan([7, 8], [PPA(0, 0, 0), PPA(0, 0, 1)], block) is None

    def test_pass_limit_reached(self):
        block = make_block()
        block.program(0, [0], [7], 0.0, 2)
        block.program(0, [1], [8], 0.0, 2)
        assert plan([7], [PPA(0, 0, 0)], block, max_programs=2) is None

    def test_mlc_resident_data(self):
        block = make_block(CellMode.MLC)
        block.program(0, [0], [7], 0.0, 4)
        assert plan([7], [PPA(0, 0, 0)], block) is None

    def test_victim_block_rejected(self):
        block = make_block()
        block.program(0, [0], [7], 0.0, 4)
        block.state = BlockState.VICTIM
        assert plan([7], [PPA(0, 0, 0)], block) is None

    def test_empty_chunk(self):
        block = make_block()
        assert plan([], [], block) is None

    def test_mismatched_lengths(self):
        block = make_block()
        assert plan([7], [], block) is None
