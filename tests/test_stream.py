"""Streaming trace replay: chunked generation, merging and replay must
be byte-identical to the in-memory path they generalise.

The contracts under test:

* chunked synthetic generation reproduces ``generate()`` exactly,
* :class:`MsrStream` reproduces the eager parser on sorted files and
  refuses unsorted ones,
* :class:`MergedStream` is a stable time-sort of its inputs,
* replaying a stream through ``Simulator.run``/``run_closed`` (and the
  front-end) equals replaying the materialised trace — including the
  committed golden cells, which pins the streamed path to the same
  bytes the classic path is pinned to.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import SCHEMES
from repro.errors import SimulationError, TraceError
from repro.experiments.runner import RunContext
from repro.sim import Simulator
from repro.traces import (
    InMemoryStream,
    MergedStream,
    MsrStream,
    SyntheticTraceGenerator,
    materialize,
    profile,
)
from repro.traces.model import Trace
from repro.traces.msr import write_msr_csv
from repro.traces.stream import DEFAULT_CHUNK_REQUESTS

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "results" / "golden"


def small_trace(n=400, seed=11):
    gen = SyntheticTraceGenerator(profile("ts0"), n_requests=n, seed=seed)
    return gen.generate()


def assert_traces_equal(a: Trace, b: Trace):
    np.testing.assert_array_equal(a.times_ms, b.times_ms)
    np.testing.assert_array_equal(a.is_write, b.is_write)
    np.testing.assert_array_equal(a.offsets, b.offsets)
    np.testing.assert_array_equal(a.sizes, b.sizes)


class TestInMemoryStream:
    def test_chunks_cover_trace(self):
        trace = small_trace()
        stream = InMemoryStream(trace, chunk_requests=64)
        chunks = list(stream.chunks())
        assert all(len(c) <= 64 for c in chunks)
        assert sum(len(c) for c in chunks) == len(trace)
        assert_traces_equal(materialize(stream), trace)

    def test_reiterable(self):
        stream = InMemoryStream(small_trace(), chunk_requests=100)
        first = [len(c) for c in stream.chunks()]
        second = [len(c) for c in stream.chunks()]
        assert first == second

    def test_materialize_passes_trace_through(self):
        trace = small_trace()
        assert materialize(trace) is trace

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(TraceError):
            InMemoryStream(small_trace(), chunk_requests=0)


class TestSyntheticStream:
    def test_chunked_equals_generate(self):
        """Lazy chunked generation is the same design, byte for byte."""
        gen = SyntheticTraceGenerator(profile("ts0"), n_requests=777, seed=5)
        whole = gen.generate()
        gen2 = SyntheticTraceGenerator(profile("ts0"), n_requests=777, seed=5)
        chunks = list(gen2.iter_chunks(chunk_requests=128))
        assert len(chunks) == 7
        merged = Trace(
            np.concatenate([c.times_ms for c in chunks]),
            np.concatenate([c.is_write for c in chunks]),
            np.concatenate([c.offsets for c in chunks]),
            np.concatenate([c.sizes for c in chunks]),
        )
        assert_traces_equal(whole, merged)

    def test_stream_equals_generate(self):
        gen = SyntheticTraceGenerator(profile("usr0"), n_requests=300, seed=2)
        whole = gen.generate()
        stream = gen.stream(chunk_requests=90)
        assert_traces_equal(materialize(stream), whole)
        # Re-iteration regenerates deterministically.
        assert_traces_equal(materialize(stream), whole)

    def test_default_chunk_size(self):
        stream = SyntheticTraceGenerator(
            profile("ts0"), n_requests=10, seed=1).stream()
        assert stream.chunk_requests == DEFAULT_CHUNK_REQUESTS


class TestMsrStream:
    def _write(self, tmp_path, trace):
        path = tmp_path / "trace.csv"
        with open(path, "w", encoding="utf-8") as fh:
            write_msr_csv(trace, fh)
        return path

    def test_equals_eager_parser(self, tmp_path):
        from repro.traces import parse_msr_csv
        trace = small_trace(n=250)
        path = self._write(tmp_path, trace)
        with open(path, encoding="utf-8") as fh:
            eager = parse_msr_csv(fh)
        streamed = materialize(MsrStream(path, chunk_requests=64))
        assert_traces_equal(streamed, eager)

    def test_rejects_unsorted(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("200,h,0,Write,4096,4096,0\n"
                        "100,h,0,Read,0,4096,0\n")
        with pytest.raises(TraceError, match="backwards"):
            list(MsrStream(path).chunks())

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError, match="no requests"):
            list(MsrStream(path).chunks())

    def test_max_requests(self, tmp_path):
        trace = small_trace(n=100)
        path = self._write(tmp_path, trace)
        streamed = materialize(MsrStream(path, max_requests=30))
        assert len(streamed) == 30


class TestMergedStream:
    def test_merge_is_stable_time_sort(self):
        traces = [small_trace(n=120, seed=s) for s in (1, 2, 3)]
        streams = [InMemoryStream(t, chunk_requests=50) for t in traces]
        merged = materialize(MergedStream(streams, chunk_requests=70))
        times = np.concatenate([t.times_ms for t in traces])
        order = np.argsort(times, kind="stable")
        # Stable on (time, stream index): concatenation order is stream
        # order, so argsort's tie-break matches the heap's.
        np.testing.assert_array_equal(merged.times_ms, times[order])
        offsets = np.concatenate([t.offsets for t in traces])
        np.testing.assert_array_equal(merged.offsets, offsets[order])
        assert len(merged) == sum(len(t) for t in traces)

    def test_merge_single_stream_is_identity(self):
        trace = small_trace()
        merged = materialize(
            MergedStream([InMemoryStream(trace, chunk_requests=64)],
                         chunk_requests=128))
        assert_traces_equal(merged, trace)


@pytest.fixture(scope="module")
def ctx():
    return RunContext(scale="smoke", seed=1)


class TestStreamedReplay:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_open_loop_stream_equals_trace(self, ctx, scheme):
        trace = ctx.trace("ts0")
        cfg = ctx.trace_config("ts0")
        direct = Simulator(SCHEMES[scheme](cfg), cfg).run(trace)
        streamed = Simulator(SCHEMES[scheme](cfg), cfg).run(
            InMemoryStream(trace, chunk_requests=333))
        assert direct.deterministic_dict() == streamed.deterministic_dict()

    def test_closed_loop_stream_equals_trace(self, ctx):
        trace = ctx.trace("ts0")
        cfg = ctx.trace_config("ts0")
        direct = Simulator(SCHEMES["ipu"](cfg), cfg).run_closed(
            trace, queue_depth=4)
        streamed = Simulator(SCHEMES["ipu"](cfg), cfg).run_closed(
            InMemoryStream(trace, chunk_requests=251), queue_depth=4)
        assert direct.deterministic_dict() == streamed.deterministic_dict()

    def test_frontend_stream_equals_trace(self, ctx):
        from repro.frontend import FrontendConfig
        from repro.frontend.simulate import FrontendSimulator
        trace = ctx.trace("ts0")
        cfg = ctx.trace_config("ts0")
        fc = FrontendConfig.from_qd(4)
        direct = FrontendSimulator(SCHEMES["ipu"](cfg), fc, cfg).run(trace)
        streamed = FrontendSimulator(SCHEMES["ipu"](cfg), fc, cfg).run(
            InMemoryStream(trace, chunk_requests=199))
        assert direct.deterministic_dict() == streamed.deterministic_dict()

    def test_rejects_non_stream(self, ctx):
        cfg = ctx.trace_config("ts0")
        with pytest.raises(SimulationError):
            Simulator(SCHEMES["ipu"](cfg), cfg).run(object())


class TestStreamedGolden:
    def test_streamed_replay_reproduces_golden_cells(self, ctx):
        """The committed golden pins hold on the streamed path too."""
        golden = json.loads((GOLDEN_DIR / "fig5_smoke.json").read_text())
        for cell in ("ts0/ipu", "ts0/baseline"):
            trace_name, scheme = cell.split("/")
            trace = ctx.trace(trace_name)
            cfg = ctx.trace_config(trace_name)
            result = Simulator(SCHEMES[scheme](cfg), cfg).run(
                InMemoryStream(trace, chunk_requests=500))
            for metric, expected in golden["cells"][cell].items():
                assert getattr(result, metric) == pytest.approx(
                    expected, abs=1e-9), (cell, metric)
