"""MSR-Cambridge CSV parsing and round-trip."""

import io

import pytest

from repro.errors import TraceError
from repro.traces import generate, parse_msr_csv, profile
from repro.traces.msr import write_msr_csv

SAMPLE = """128166372003061629,hm,0,Read,383496192,32768,1331
128166372016853566,hm,0,Write,310378496,4096,2326
128166372026893794,hm,0,Write,310382592,8192,connector
"""


def valid_sample():
    return "\n".join(SAMPLE.splitlines()[:2]) + "\n"


class TestParse:
    def test_parses_requests(self):
        trace = parse_msr_csv(io.StringIO(valid_sample()), name="hm")
        assert len(trace) == 2
        assert trace.n_reads == 1
        assert trace.n_writes == 1

    def test_rebases_time(self):
        trace = parse_msr_csv(io.StringIO(valid_sample()))
        assert trace.times_ms[0] == 0.0
        # 13791937 ticks = 1379.1937 ms
        assert trace.times_ms[1] == pytest.approx(1379.1937)

    def test_fields(self):
        trace = parse_msr_csv(io.StringIO(valid_sample()))
        req = trace[0]
        assert req.offset == 383496192
        assert req.size == 32768
        assert not req.is_write

    def test_sorts_by_time(self):
        shuffled = (
            "200,h,0,Write,4096,4096,0\n"
            "100,h,0,Read,0,4096,0\n"
        )
        trace = parse_msr_csv(io.StringIO(shuffled))
        assert not trace[0].is_write

    def test_max_requests(self):
        trace = parse_msr_csv(io.StringIO(valid_sample()), max_requests=1)
        assert len(trace) == 1

    def test_skips_comments_and_blanks(self):
        text = "# comment\n\n" + valid_sample()
        assert len(parse_msr_csv(io.StringIO(text))) == 2

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(valid_sample())
        trace = parse_msr_csv(path)
        assert trace.name == "t"
        assert len(trace) == 2


class TestErrors:
    def test_short_row(self):
        with pytest.raises(TraceError):
            parse_msr_csv(io.StringIO("1,2,3\n"))

    def test_bad_op(self):
        with pytest.raises(TraceError):
            parse_msr_csv(io.StringIO("1,h,0,Flush,0,4096,0\n"))

    def test_bad_int(self):
        with pytest.raises(TraceError):
            parse_msr_csv(io.StringIO("x,h,0,Read,0,4096,0\n"))

    def test_zero_size(self):
        with pytest.raises(TraceError):
            parse_msr_csv(io.StringIO("1,h,0,Read,0,0,0\n"))

    def test_empty_input(self):
        with pytest.raises(TraceError):
            parse_msr_csv(io.StringIO(""))


class TestRoundTrip:
    def test_synthetic_roundtrip(self, tmp_path):
        original = generate(profile("ads"), n_requests=300, seed=3)
        path = tmp_path / "ads.csv"
        write_msr_csv(original, path)
        parsed = parse_msr_csv(path, name="ads")
        assert len(parsed) == len(original)
        assert parsed.n_writes == original.n_writes
        assert list(parsed.offsets) == list(original.offsets)
        assert list(parsed.sizes) == list(original.sizes)
