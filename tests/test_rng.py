"""Deterministic RNG derivation."""

import numpy as np

from repro.rng import DEFAULT_SEED, derive_seed, make_rng, spawn


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_key_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        value = derive_seed(123456789, "trace:ts0")
        assert 0 <= value < 2 ** 64


class TestMakeRng:
    def test_reproducible(self):
        a = make_rng(7, "x").random(5)
        b = make_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        a = make_rng(7, "x").random(5)
        b = make_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).random(3)
        b = make_rng(DEFAULT_SEED).random(3)
        assert np.array_equal(a, b)

    def test_empty_key_is_root(self):
        a = make_rng(3).random(3)
        b = make_rng(3, "").random(3)
        assert np.array_equal(a, b)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(make_rng(1), 4)
        assert len(children) == 4

    def test_spawn_children_differ(self):
        children = spawn(make_rng(1), 2)
        assert not np.array_equal(children[0].random(4), children[1].random(4))

    def test_spawn_zero(self):
        assert spawn(make_rng(1), 0) == []

    def test_spawn_negative_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)
