"""Idle-time background garbage collection."""

import numpy as np
import pytest

from repro import IPUFTL, BaselineFTL, Simulator
from repro.traces import generate, profile
from repro.traces.model import Trace

from conftest import tiny_config


def bursty_trace(n=1200, burst=50, gap_ms=30.0):
    """Writes in dense bursts separated by long idle gaps."""
    base = generate(profile("ts0"), n_requests=n, seed=4,
                    mean_interarrival_ms=0.1)
    times = np.array(base.times_ms, copy=True)
    bump = 0.0
    for i in range(n):
        if i and i % burst == 0:
            bump += gap_ms
        times[i] += bump
    return Trace(times, base.is_write, base.offsets, base.sizes, name="bursty")


class TestIdleCollect:
    def test_idle_collect_noop_when_clean(self):
        ftl = IPUFTL(tiny_config())
        assert ftl.idle_collect(0.0) == []

    def test_idle_collect_reaches_restore(self):
        ftl = BaselineFTL(tiny_config())
        lsn = 0
        while not ftl.slc_gc.needs_collection():
            ftl.write([lsn], 0.0)
            lsn += 4
        ops = ftl.idle_collect(1.0)
        assert ops
        assert not ftl.slc_gc.needs_collection()
        assert not ftl.slc_gc.draining

    def test_state_consistent(self):
        ftl = BaselineFTL(tiny_config())
        lsn = 0
        while ftl.flash.erases_slc < 1:
            ftl.write([lsn], 0.0)
            lsn += 4
            ftl.idle_collect(float(lsn))
        ftl.check_consistency()


class TestSimulatorIdleGc:
    def test_idle_gc_reduces_foreground_gc_bursts(self):
        trace = bursty_trace()
        plain = Simulator(IPUFTL(tiny_config())).run(trace)
        idle = Simulator(IPUFTL(tiny_config()), idle_gc=True,
                         idle_threshold_ms=5.0).run(trace)
        # Same work gets done; idle collection cannot make latency worse
        # (GC runs while the device would otherwise sit quiet).
        assert idle.erases_slc >= plain.erases_slc * 0.8
        assert idle.avg_latency_ms <= plain.avg_latency_ms * 1.05

    def test_idle_gc_preserves_data(self):
        trace = bursty_trace(n=800)
        ftl = IPUFTL(tiny_config())
        Simulator(ftl, idle_gc=True, idle_threshold_ms=5.0).run(trace)
        ftl.check_consistency()

    def test_disabled_by_default(self):
        sim = Simulator(IPUFTL(tiny_config()))
        assert sim.idle_gc is False
