"""ISR arithmetic (Equations 1 and 2)."""

import math

import numpy as np
import pytest

from repro.ftl.hotcold import block_coldness, block_isr, coldness_weight
from repro.nand.block import Block
from repro.nand.cell import CellMode


def make_block(pages=4, spp=4):
    block = Block(0, CellMode.SLC, pages, spp)
    block.open_as(1, 0.0)
    return block


class TestColdnessWeight:
    def test_zero_age(self):
        assert coldness_weight(np.array([0.0]), 10.0)[0] == 0.0

    def test_approaches_one(self):
        assert coldness_weight(np.array([1e9]), 1.0)[0] == pytest.approx(1.0)

    def test_formula(self):
        t, T = 5.0, 10.0
        expected = 1 - math.exp(-t / T)
        assert coldness_weight(np.array([t]), T)[0] == pytest.approx(expected)

    def test_monotone_in_age(self):
        ages = np.array([1.0, 2.0, 4.0, 8.0])
        weights = coldness_weight(ages, 3.0)
        assert (np.diff(weights) > 0).all()

    def test_degenerate_mean(self):
        assert (coldness_weight(np.array([1.0, 2.0]), 0.0) == 0.0).all()


class TestBlockColdness:
    def test_empty_block(self):
        assert block_coldness(make_block(), 10.0) == 0.0

    def test_uniform_ages(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        # Ages both 10, T = 10 => each weight = 1 - e^-1.
        value = block_coldness(block, 10.0)
        assert value == pytest.approx(2 * (1 - math.exp(-1)))

    def test_updated_pages_excluded(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.program(1, [0], [2], 0.0, 4)
        block.mark_page_updated(0)
        full = block_coldness(block, 10.0)
        # Only page 1's subpage contributes.
        assert full == pytest.approx(1 - math.exp(-1))

    def test_all_updated_gives_zero(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.mark_page_updated(0)
        assert block_coldness(block, 10.0) == 0.0

    def test_mlc_block_rejected(self):
        block = Block(0, CellMode.MLC, 4, 4)
        with pytest.raises(ValueError):
            block_coldness(block, 1.0)

    def test_recent_access_reduces_coldness(self):
        cold = make_block()
        cold.program(0, [0], [1], 0.0, 4)
        warm = make_block()
        warm.program(0, [0], [1], 0.0, 4)
        warm.touch(0, [0], 9.0)
        # Shared region mean T makes ages comparable across blocks.
        t_mean = 5.5
        assert (block_coldness(warm, 10.0, t_mean)
                < block_coldness(cold, 10.0, t_mean))

    def test_block_local_mean_is_default(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        import math
        # Single uniform-age subpage: t/T = 1 under the self-normalised
        # variant, regardless of the absolute age.
        assert block_coldness(block, 50.0) == pytest.approx(1 - math.exp(-1))


class TestBlockIsr:
    def test_figure4_style_comparison(self):
        """A block with equal invalid count but cold valid data scores
        higher (the paper's GC candidate B beats candidate A)."""
        a = make_block()
        b = make_block()
        for blk in (a, b):
            blk.program(0, [0, 1], [1, 2], 0.0, 4)
            blk.invalidate(0, 0)
        # Block A's survivor was accessed recently; B's has been idle.
        a.touch(0, [1], 99.0)
        t_mean = 50.0
        assert block_isr(b, 100.0, t_mean) > block_isr(a, 100.0, t_mean)

    def test_invalid_dominates(self):
        block = make_block()
        block.program(0, [0, 1, 2, 3], [1, 2, 3, 4], 0.0, 4)
        before = block_isr(block, 10.0)
        block.invalidate(0, 0)
        assert block_isr(block, 10.0) > before

    def test_bounds(self):
        block = make_block(pages=1)
        block.program(0, [0, 1, 2, 3], [1, 2, 3, 4], 0.0, 4)
        for slot in range(4):
            block.invalidate(0, slot)
        assert block_isr(block, 10.0) == pytest.approx(1.0)

    def test_empty_block_zero(self):
        assert block_isr(make_block(), 5.0) == 0.0

    def test_worked_example(self):
        """ISR = (IS + IS') / TS with explicit numbers."""
        block = make_block(pages=1)  # TS = 4
        block.program(0, [0, 1, 2], [1, 2, 3], 0.0, 4)
        block.invalidate(0, 0)       # IS = 1
        now = 10.0                   # both survivors age 10, T = 10
        is_prime = 2 * (1 - math.exp(-1.0))
        assert block_isr(block, now) == pytest.approx((1 + is_prime) / 4)
