"""Synthetic trace generator: calibration and structure."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import characterize, profile
from repro.traces.profiles import TRACE_NAMES
from repro.traces.synth import SyntheticTraceGenerator, generate

N = 12_000


@pytest.fixture(scope="module")
def generators():
    gens = {}
    for name in TRACE_NAMES:
        gen = SyntheticTraceGenerator(profile(name), n_requests=N, seed=5)
        trace = gen.generate()
        gens[name] = (gen, trace, characterize(trace))
    return gens


class TestMarginals:
    def test_request_count_exact(self, generators):
        for name, (_, trace, _) in generators.items():
            assert len(trace) == N

    def test_write_ratio(self, generators):
        for name, (_, _, stats) in generators.items():
            target = profile(name).write_ratio
            assert stats.write_ratio == pytest.approx(target, abs=0.005)

    def test_mean_write_size(self, generators):
        for name, (_, _, stats) in generators.items():
            target = profile(name).mean_write_bytes
            assert stats.mean_write_bytes == pytest.approx(target, rel=0.08)

    def test_hot_write_ratio(self, generators):
        for name, (_, _, stats) in generators.items():
            target = profile(name).hot_write_ratio
            assert stats.hot_write_ratio == pytest.approx(target, abs=0.03)

    def test_update_size_buckets(self, generators):
        for name, (_, _, stats) in generators.items():
            target = profile(name).update_size_probs
            for measured, expected in zip(stats.update_size_probs, target):
                assert measured == pytest.approx(expected, abs=0.06)


class TestStructure:
    def test_extents_non_overlapping(self, generators):
        gen, _, _ = generators["ts0"]
        ext = gen.extents
        order = np.argsort(ext.starts)
        starts = ext.starts[order]
        ends = starts + ext.sizes[order]
        assert (starts[1:] >= ends[:-1]).all()

    def test_hot_extents_have_4plus_writes(self, generators):
        gen, _, _ = generators["ts0"]
        ext = gen.extents
        assert (ext.write_counts[ext.is_hot] >= 4).all()

    def test_cold_extents_below_4(self, generators):
        gen, _, _ = generators["ts0"]
        ext = gen.extents
        assert (ext.write_counts[~ext.is_hot] < 4).all()

    def test_counts_sum_to_writes(self, generators):
        gen, trace, _ = generators["ts0"]
        assert int(gen.extents.write_counts.sum()) == trace.n_writes

    def test_write_sizes_subpage_aligned(self, generators):
        _, trace, _ = generators["ts0"]
        assert (trace.sizes % 4096 == 0).all()

    def test_updates_fully_cover_previous_version(self, generators):
        """Every rewrite of an extent uses the same offset and size, so
        page-mapped schemes never leak partially-superseded pages."""
        _, trace, _ = generators["ts0"]
        seen: dict[int, int] = {}
        for i in range(len(trace)):
            if not trace.is_write[i]:
                continue
            off, size = int(trace.offsets[i]), int(trace.sizes[i])
            if off in seen:
                assert seen[off] == size
            seen[off] = size

    def test_page_footprint_at_least_byte_footprint(self, generators):
        gen, _, _ = generators["ts0"]
        assert gen.extents.page_footprint_bytes() >= gen.extents.footprint_bytes

    def test_times_strictly_increasing_enough(self, generators):
        _, trace, _ = generators["ts0"]
        assert (np.diff(trace.times_ms) >= 0).all()
        assert trace.times_ms[-1] > 0

    def test_temporal_locality(self, generators):
        """An extent's writes span much less than the whole trace."""
        gen, trace, _ = generators["ts0"]
        positions: dict[int, list[int]] = {}
        for i in range(len(trace)):
            if trace.is_write[i]:
                positions.setdefault(int(trace.offsets[i]), []).append(i)
        spans = [max(p) - min(p) for p in positions.values() if len(p) >= 4]
        assert spans, "expected hot extents"
        # The locality window is 8% of the trace; allow slack.
        assert np.median(spans) < 0.2 * len(trace)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate(profile("ts0"), n_requests=2000, seed=9)
        b = generate(profile("ts0"), n_requests=2000, seed=9)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.is_write, b.is_write)

    def test_different_seed_differs(self):
        a = generate(profile("ts0"), n_requests=2000, seed=9)
        b = generate(profile("ts0"), n_requests=2000, seed=10)
        assert not np.array_equal(a.offsets, b.offsets)

    def test_profiles_use_independent_streams(self):
        a = generate(profile("ts0"), n_requests=2000, seed=9)
        b = generate(profile("wdev0"), n_requests=2000, seed=9)
        assert not np.array_equal(a.offsets, b.offsets)


class TestValidation:
    def test_zero_requests_rejected(self):
        with pytest.raises(TraceError):
            SyntheticTraceGenerator(profile("ts0"), n_requests=0)

    def test_bad_interarrival_rejected(self):
        with pytest.raises(TraceError):
            SyntheticTraceGenerator(profile("ts0"), n_requests=10,
                                    mean_interarrival_ms=0.0)

    def test_tiny_trace_generates(self):
        trace = generate(profile("ads"), n_requests=50, seed=1)
        assert len(trace) == 50

    def test_write_only_profileish(self):
        # ts0 at minimum size still respects per-extent ordering.
        trace = generate(profile("ts0"), n_requests=10, seed=2)
        assert len(trace) == 10
