"""Public API surface and exception hierarchy."""

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.ProgramOrderError, errors.FlashError)
        assert issubclass(errors.PartialProgramLimitError, errors.FlashError)
        assert issubclass(errors.OutOfSpaceError, errors.AllocationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("x")


class TestPublicApi:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scheme_registry(self):
        assert set(repro.SCHEMES) == {"baseline", "mga", "ipu", "delta"}
        for name, cls in repro.SCHEMES.items():
            assert cls.scheme_name == name

    def test_partial_programming_flags(self):
        assert not repro.BaselineFTL.uses_partial_programming
        assert repro.MGAFTL.uses_partial_programming
        assert repro.IPUFTL.uses_partial_programming
        assert repro.DeltaFTL.uses_partial_programming

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_runs(self):
        """The module docstring's quickstart must actually work."""
        from repro import IPUFTL, Simulator, scaled_config
        from repro.traces import generate, profile

        config = scaled_config("smoke", seed=1)
        trace = generate(profile("ts0"), n_requests=300, seed=1)
        result = Simulator(IPUFTL(config)).run(trace)
        assert result.n_requests == 300
