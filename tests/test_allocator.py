"""Region allocator: striping, wear-aware pools, reserve, staleness."""

import pytest

from repro.errors import AllocationError
from repro.ftl.allocator import GC_RESERVE_BLOCKS, RegionAllocator
from repro.nand import FlashArray
from repro.nand.block import BlockState

from conftest import tiny_config


@pytest.fixture
def flash():
    return FlashArray(tiny_config())


@pytest.fixture
def alloc(flash):
    return RegionAllocator(flash, flash.slc_block_ids, "slc")


class TestPoolState:
    def test_initially_all_free(self, alloc):
        assert alloc.free_blocks == alloc.total_blocks
        assert alloc.free_fraction == 1.0

    def test_alloc_opens_block(self, alloc):
        block, page = alloc.alloc_page(1, 0.0)
        assert block.state is BlockState.OPEN
        assert block.level == 1
        assert page == 0
        assert alloc.free_blocks == alloc.total_blocks - 1

    def test_empty_region_rejected(self, flash):
        with pytest.raises(AllocationError):
            RegionAllocator(flash, [], "empty")


class TestStriping:
    def test_rotates_over_stripes(self, flash, alloc):
        if alloc.stripes < 2:
            pytest.skip("single-stripe region")
        a, _ = alloc.alloc_page(1, 0.0)
        b, _ = alloc.alloc_page(1, 0.0)
        assert flash.geometry.plane_of(a.block_id) != flash.geometry.plane_of(b.block_id)

    def test_sequential_pages_within_stripe(self, flash, alloc):
        first = {}
        for _ in range(alloc.stripes * 2):
            block, page = alloc.alloc_page(1, 0.0)
            block.program(page, [0], [1], 0.0, 4)
            if block.block_id in first:
                assert page == first[block.block_id] + 1
            else:
                first[block.block_id] = page

    def test_max_stripes_cap(self, flash):
        alloc = RegionAllocator(flash, flash.slc_block_ids, "slc", max_stripes=1)
        assert alloc.stripes == 1


class TestWearAwareness:
    def test_pops_least_worn(self, flash, alloc):
        # Age every block except one.
        for block_id in flash.slc_block_ids[1:]:
            flash.block(block_id).erase_count = 5
        # Rebuild allocator so heaps see the wear.
        alloc = RegionAllocator(flash, flash.slc_block_ids, "slc", max_stripes=1)
        block, _ = alloc.alloc_page(1, 0.0)
        assert block.block_id == flash.slc_block_ids[0]


class TestLevels:
    def test_levels_get_separate_actives(self, alloc):
        a, _ = alloc.alloc_page(1, 0.0)
        b, _ = alloc.alloc_page(2, 0.0)
        assert a.block_id != b.block_id
        assert a.level == 1
        assert b.level == 2


class TestStaleActives:
    def test_erased_active_replaced(self, flash, alloc):
        block, page = alloc.alloc_page(1, 0.0)
        block.program(page, [0], [1], 0.0, 4)
        flash.invalidate(block.block_id, page, 0)
        # Drain remaining pages so it can be erased.
        while not block.is_full:
            block.program(block.next_page, [0], [9], 0.0, 4)
            flash.invalidate(block.block_id, block.next_page - 1, 0)
        flash.erase(block.block_id)
        alloc.release(block.block_id)
        nxt, npage = alloc.alloc_page(1, 0.0)
        assert nxt.state is BlockState.OPEN
        assert npage == 0

    def test_full_active_replaced(self, flash, alloc):
        block, page = alloc.alloc_page(1, 0.0)
        while not block.is_full:
            block.program(block.next_page, [0], [9], 0.0, 4)
        # Keep requesting from the same level until a fresh block shows up
        # (for_gc bypasses the host reserve in this tiny region).
        for _ in range(alloc.stripes):
            nxt, _ = alloc.alloc_page(1, 0.0, for_gc=True)
        assert nxt.block_id != block.block_id

    def test_relabelled_active_not_reused(self, flash, alloc):
        block, page = alloc.alloc_page(1, 0.0)
        block.level = 3  # another level claimed it
        nxt, _ = alloc.alloc_page(1, 0.0)
        assert nxt.level == 1


class TestReserve:
    def test_host_blocked_at_reserve(self, flash):
        alloc = RegionAllocator(flash, flash.slc_block_ids, "slc", max_stripes=1)
        opened = 0
        while alloc.alloc_page(opened + 10, 0.0) is not None:
            opened += 1  # each call a new level -> new block
        assert alloc.free_blocks == GC_RESERVE_BLOCKS

    def test_gc_can_use_reserve(self, flash):
        alloc = RegionAllocator(flash, flash.slc_block_ids, "slc", max_stripes=1)
        level = 10
        while alloc.alloc_page(level, 0.0) is not None:
            level += 1
        res = alloc.alloc_page(level, 0.0, for_gc=True)
        assert res is not None

    def test_release_requires_free_state(self, flash, alloc):
        block, _ = alloc.alloc_page(1, 0.0)
        with pytest.raises(AllocationError):
            alloc.release(block.block_id)


class TestCandidates:
    def test_only_full_blocks(self, flash, alloc):
        block, page = alloc.alloc_page(1, 0.0)
        block.program(page, [0], [1], 0.0, 4)
        assert alloc.victim_candidates() == []
        while not block.is_full:
            block.program(block.next_page, [0], [9], 0.0, 4)
        assert block in alloc.victim_candidates()

    def test_occupancy_snapshot(self, alloc):
        occ = alloc.occupancy()
        assert occ["free"] == alloc.total_blocks
