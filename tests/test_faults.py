"""The fault-injection subsystem: config, injectors, device response,
campaigns and the cache/determinism contracts.

The two load-bearing properties:

* **rate 0 is bit-identical** — attaching a disabled config (or none)
  must reproduce every simulation field exactly, for all three schemes
  and arbitrary seeds (hypothesis sweeps them);
* **injector counts are monotone in the rate** — the single-draw
  injectors compare one shared uniform sequence against the threshold,
  so the same seed at a higher rate can only fire more often.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import RunContext
from repro.faults import BadBlockTable, FaultConfig, FaultPlan, attach_faults
from repro.faults.campaign import CURVE_FIELDS, campaign_json, run_campaign
from repro.nand.block import BlockState
from repro.nand.flash import FlashArray
from repro.rng import faults_rng, make_rng
from repro.sim import Simulator
from repro.traces.profiles import profile
from repro.traces.synth import generate

from conftest import tiny_config

SCHEMES = ("baseline", "mga", "ipu")

#: Short cells keep full-simulation tests affordable.
FAST = dict(scale="smoke", seed=7, length_factor=0.25)

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def short_trace(seed=11, n_requests=800):
    return generate(profile("ts0"), n_requests=n_requests, seed=seed,
                    mean_interarrival_ms=0.6)


def build_ftl(scheme, seed=0):
    from repro import SCHEMES as factories
    return factories[scheme](tiny_config(seed=seed))


# --------------------------------------------------------------------------
# FaultConfig


class TestFaultConfig:
    def test_default_is_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        cfg.validate()

    def test_from_rate_zero_is_exactly_disabled(self):
        assert FaultConfig.from_rate(0.0) == FaultConfig()

    def test_from_rate_negative_raises(self):
        with pytest.raises(ConfigError):
            FaultConfig.from_rate(-0.5)

    def test_from_rate_enables_every_mechanism(self):
        cfg = FaultConfig.from_rate(1.0)
        assert cfg.read_fault_scale > 0
        assert 0 < cfg.program_fault_rate <= 1
        assert 0 < cfg.erase_fault_rate <= 1
        assert cfg.power_loss_per_ms > 0
        cfg.validate()

    def test_roundtrip_dict_and_json(self):
        cfg = FaultConfig.from_rate(0.7)
        assert FaultConfig.from_dict(cfg.to_dict()) == cfg
        assert FaultConfig.from_json(cfg.to_json()) == cfg

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            FaultConfig.from_dict({"read_fault_scale": 1.0, "bogus": 2})

    @pytest.mark.parametrize("kwargs", [
        dict(read_fault_scale=-1.0),
        dict(program_fault_rate=1.5),
        dict(erase_fault_rate=-0.1),
        dict(power_loss_per_ms=-2.0),
        dict(read_retries_max=0),
        dict(retry_success_scale=0.0),
        dict(relocate_after_retries=0),
        dict(torn_window_ms=-1.0),
        dict(max_retire_fraction=1.5),
        dict(program_retry_limit=0),
    ])
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(**kwargs).validate()


# --------------------------------------------------------------------------
# RNG streams


class TestFaultStreams:
    def test_mechanisms_are_independent_streams(self):
        a = faults_rng(3, "read").random(8).tolist()
        b = faults_rng(3, "program").random(8).tolist()
        assert a != b

    def test_stream_is_reproducible(self):
        assert (faults_rng(5, "erase").random(8).tolist()
                == faults_rng(5, "erase").random(8).tolist())

    def test_namespaced_away_from_plain_streams(self):
        """A fault stream never collides with a same-named model stream."""
        assert (faults_rng(1, "read").random(4).tolist()
                != make_rng(1, "read").random(4).tolist())

    def test_empty_mechanism_rejected(self):
        with pytest.raises(ValueError):
            faults_rng(1, "")


# --------------------------------------------------------------------------
# Injectors


class TestReadOutcome:
    def test_disabled_scale_draws_nothing(self):
        plan = FaultPlan(FaultConfig(), seed=1)
        assert plan.read_outcome(1.0) == (0, False)
        assert plan.stats.read_faults == 0

    def test_certain_failure_climbs_ladder(self):
        """p pinned at 1 by retry_success_scale=1: the ladder exhausts,
        the read is uncorrectable and the page must be reclaimed."""
        cfg = FaultConfig(read_fault_scale=1.0, retry_success_scale=1.0,
                          read_retries_max=3)
        plan = FaultPlan(cfg, seed=1)
        retries, reclaim = plan.read_outcome(1.0)
        assert retries == 3 and reclaim
        assert plan.stats.read_faults == 1
        assert plan.stats.read_retries == 3
        assert plan.stats.uncorrectable_reads == 1

    def test_retries_bounded_by_ladder_depth(self):
        cfg = FaultConfig(read_fault_scale=1e9, read_retries_max=4)
        plan = FaultPlan(cfg, seed=2)
        for _ in range(200):
            retries, _ = plan.read_outcome(1.0)
            assert 0 <= retries <= 4
        assert plan.stats.read_faults > 0

    def test_zero_probability_never_fires(self):
        cfg = FaultConfig(read_fault_scale=5.0)
        plan = FaultPlan(cfg, seed=3)
        assert plan.read_outcome(0.0) == (0, False)
        assert plan.stats.read_faults == 0


class TestInjectorMonotonicity:
    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1),
           r1=st.floats(0.0, 1.0), r2=st.floats(0.0, 1.0))
    def test_program_failures_monotone_in_rate(self, seed, r1, r2):
        lo, hi = sorted((r1, r2))
        counts = []
        for rate in (lo, hi):
            plan = FaultPlan(FaultConfig(program_fault_rate=rate), seed=seed)
            counts.append(sum(plan.program_fails() for _ in range(300)))
        assert counts[0] <= counts[1]

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1),
           r1=st.floats(0.0, 1.0), r2=st.floats(0.0, 1.0))
    def test_erase_failures_monotone_in_rate(self, seed, r1, r2):
        lo, hi = sorted((r1, r2))
        flash = FlashArray(tiny_config())
        counts = []
        for rate in (lo, hi):
            # Uncapped budget: every sampled failure retires, so the
            # stat counts the raw draws.
            plan = FaultPlan(FaultConfig(erase_fault_rate=rate,
                                         max_retire_fraction=1.0), seed=seed)
            plan.bind(flash)
            for block in flash.blocks:
                plan.should_retire_after_erase(block)
            counts.append(plan.stats.erase_failures)
        assert counts[0] <= counts[1]


class TestBadBlockTable:
    def test_budget_caps_retirement(self):
        flash = FlashArray(tiny_config())
        table = BadBlockTable(flash, max_retire_fraction=0.1)
        slc = True
        admitted = 0
        while table.can_retire(slc):
            table.note_retired(admitted, slc)
            admitted += 1
        # Nonzero budget always admits at least one block, then stops.
        assert admitted >= 1
        assert not table.can_retire(slc)

    def test_zero_budget_never_retires(self):
        flash = FlashArray(tiny_config())
        table = BadBlockTable(flash, max_retire_fraction=0.0)
        assert not table.can_retire(True)
        assert not table.can_retire(False)

    def test_condemn_and_pardon(self):
        flash = FlashArray(tiny_config())
        table = BadBlockTable(flash, max_retire_fraction=0.5)
        table.condemn(4)
        assert table.is_condemned(4)
        table.pardon(4)
        assert not table.is_condemned(4)

    def test_over_budget_failure_pardons_block(self):
        """Past the budget the plan still counts the failure but returns
        the block to service."""
        flash = FlashArray(tiny_config())
        plan = FaultPlan(FaultConfig(erase_fault_rate=1.0,
                                     max_retire_fraction=0.0), seed=1)
        plan.bind(flash)
        block = flash.blocks[0]
        assert not plan.should_retire_after_erase(block)
        assert plan.stats.erase_failures == 1
        assert plan.stats.retired_blocks == 0


# --------------------------------------------------------------------------
# Rate 0 == no subsystem, bit for bit


class TestRateZeroBitIdentity:
    def test_attach_disabled_config_is_noop(self):
        ftl = build_ftl("ipu")
        assert attach_faults(ftl, FaultConfig()) is None
        assert attach_faults(ftl, None) is None
        assert ftl.faults is None and ftl.flash.faults is None

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_rate_zero_reproduces_exactly(self, scheme, seed):
        trace = short_trace(seed=seed % 1000, n_requests=400)
        plain_ftl = build_ftl(scheme)
        plain = Simulator(plain_ftl).run(trace).deterministic_dict()
        ftl = build_ftl(scheme)
        attach_faults(ftl, FaultConfig.from_rate(0.0), seed=seed)
        injected = Simulator(ftl).run(trace).deterministic_dict()
        assert injected == plain

    def test_rate_zero_result_has_zero_fault_fields(self):
        ftl = build_ftl("mga")
        result = Simulator(ftl).run(short_trace(n_requests=400))
        for field in CURVE_FIELDS:
            assert getattr(result, field) == 0


# --------------------------------------------------------------------------
# Full-simulation integration at a hot rate


class TestFaultIntegration:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_mechanism_fires_and_device_stays_consistent(self, scheme):
        ftl = build_ftl(scheme)
        plan = attach_faults(ftl, FaultConfig.from_rate(1.0), seed=3)
        assert plan is not None
        result = Simulator(ftl).run(short_trace(n_requests=2000))
        ftl.check_consistency()
        assert result.read_faults > 0
        assert result.read_retries >= result.read_faults
        assert result.fault_relocations > 0
        assert result.program_failures > 0
        assert result.retired_blocks > 0
        assert result.power_loss_events > 0
        assert result.recovery_ms > 0
        # Retired capacity is visible to the allocators.
        retired = (ftl.slc_alloc.retired_blocks + ftl.mlc_alloc.retired_blocks)
        assert retired == result.retired_blocks
        for block in ftl.flash.blocks:
            if block.state is BlockState.RETIRED:
                assert not any(block.valid.flat)

    def test_same_seed_same_faults(self):
        outcomes = []
        for _ in range(2):
            ftl = build_ftl("ipu")
            attach_faults(ftl, FaultConfig.from_rate(0.8), seed=5)
            result = Simulator(ftl).run(short_trace(n_requests=1200))
            outcomes.append(result.deterministic_dict())
        assert outcomes[0] == outcomes[1]


# --------------------------------------------------------------------------
# Cache keys (satellite: fault campaigns never reuse fault-free entries)


class TestFaultCacheKeys:
    def test_disabled_config_canonicalises_to_no_faults_key(self):
        plain = RunContext(**FAST)
        disabled = RunContext(faults=FaultConfig(), **FAST)
        assert (plain.cell_key("ts0", "ipu")
                == disabled.cell_key("ts0", "ipu"))

    def test_enabled_config_moves_the_key(self):
        plain = RunContext(**FAST)
        faulty = RunContext(faults=FaultConfig.from_rate(1.0), **FAST)
        assert (plain.cell_key("ts0", "ipu")
                != faulty.cell_key("ts0", "ipu"))

    def test_different_rates_have_different_keys(self):
        a = RunContext(faults=FaultConfig.from_rate(0.5), **FAST)
        b = RunContext(faults=FaultConfig.from_rate(1.0), **FAST)
        assert a.cell_key("ts0", "ipu") != b.cell_key("ts0", "ipu")

    def test_cold_then_warm_fault_campaign(self, tmp_path):
        cache = ResultCache(tmp_path)
        faults = FaultConfig.from_rate(1.0)
        cold = RunContext(cache=cache, faults=faults, **FAST)
        first = cold.run("ts0", "ipu")
        assert cold.executed_cells == 1
        assert first.program_failures > 0

        warm = RunContext(cache=ResultCache(tmp_path), faults=faults, **FAST)
        second = warm.run("ts0", "ipu")
        assert warm.executed_cells == 0
        assert second.deterministic_dict() == first.deterministic_dict()

        # A fault-free context sharing the cache must NOT see that entry.
        plain = RunContext(cache=ResultCache(tmp_path), **FAST)
        clean = plain.run("ts0", "ipu")
        assert plain.executed_cells == 1
        assert clean.program_failures == 0


# --------------------------------------------------------------------------
# Campaign runner


class TestCampaign:
    RATES = (0.0, 1.0)

    def run(self, **kwargs):
        return run_campaign(rates=self.RATES, scale="smoke", seed=9,
                            traces=("ts0",), schemes=SCHEMES, **kwargs)

    def test_payload_shape_and_degradation(self):
        payload = self.run()
        assert payload["rates"] == list(self.RATES)
        assert sorted(payload["curves"]) == sorted(SCHEMES)
        for scheme in SCHEMES:
            points = payload["curves"][scheme]
            assert [p["rate"] for p in points] == list(self.RATES)
            clean, faulty = points
            for field in CURVE_FIELDS:
                assert clean[field] == 0
            assert faulty["read_retries"] > 0
            assert faulty["retired_blocks"] > 0
            assert faulty["program_failures"] > 0
            assert faulty["power_loss_events"] > 0
            assert clean["by_trace"]["ts0"]["avg_latency_ms"] > 0

    def test_same_seed_is_byte_identical(self):
        assert campaign_json(self.run()) == campaign_json(self.run())

    def test_parallel_matches_sequential(self, tmp_path):
        seq = self.run()
        par = self.run(jobs=2)
        assert campaign_json(seq) == campaign_json(par)

    def test_rate_zero_point_matches_ordinary_run(self):
        payload = self.run()
        ctx = RunContext(scale="smoke", seed=9)
        for scheme in SCHEMES:
            expect = ctx.run("ts0", scheme).avg_latency_ms
            got = payload["curves"][scheme][0]["avg_latency_ms"]
            # The campaign re-weights by request count; x*n/n can move
            # the last ulp, so compare within float tolerance.
            assert got == pytest.approx(expect, rel=1e-12)
