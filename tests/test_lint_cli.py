"""End-to-end tests of the ``repro-ssd lint`` subcommand: exit codes,
report formats, and the baseline/ratchet workflow."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

BAD_SNIPPET = """
    def drain(ids):
        for i in set(ids):
            yield i
    """


def seed_violation(tmp_path: Path, code: str = BAD_SNIPPET) -> Path:
    path = tmp_path / "ftl" / "bad.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# exit codes and formats


def test_lint_clean_on_committed_tree(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 new, 0 baselined, 0 stale" in out


def test_lint_json_format_on_committed_tree(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["new"] == 0
    assert payload["rules_run"] == ["D001", "D002", "D003", "S001", "S002",
                                    "C001", "U001", "U002", "U003",
                                    "M001", "M002", "N001", "N002",
                                    "K001", "K002", "K003",
                                    "P001", "P002", "P003"]
    assert payload["files_checked"] > 50


def test_lint_nonzero_on_seeded_violation(tmp_path, capsys):
    seed_violation(tmp_path)
    assert main(["lint", "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "D003" in out and "ftl/bad.py" in out


def test_lint_json_reports_seeded_violation(tmp_path, capsys):
    seed_violation(tmp_path)
    assert main(["lint", "--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (violation,) = payload["violations"]
    assert violation["rule"] == "D003"
    assert violation["path"] == "ftl/bad.py"
    assert violation["fingerprint"]


@pytest.mark.parametrize("rule", ["D001", "D002", "D003", "S001", "S002",
                                  "C001", "U001", "U002", "U003",
                                  "M001", "M002", "N001", "N002",
                                  "K001", "K002", "K003",
                                  "P001", "P002", "P003"])
def test_every_rule_listed(rule, capsys):
    assert main(["lint", "--list-rules"]) == 0
    assert rule in capsys.readouterr().out


def test_select_unknown_rule_exits_2(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path), "--select", "Z999"]) == 2


# --------------------------------------------------------------------------
# baseline / ratchet workflow


def test_baseline_workflow_ratchets(tmp_path, capsys):
    bad = seed_violation(tmp_path)
    root = str(tmp_path)

    # 1. New violation fails.
    assert main(["lint", "--root", root]) == 1
    # 2. Grandfather it; the run goes green with it recorded.
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    baseline = tmp_path / "LINT_BASELINE.json"
    assert baseline.is_file()
    assert len(json.loads(baseline.read_text())["entries"]) == 1
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 0
    assert "[baselined]" in capsys.readouterr().out
    # 3. Fixing the code makes the entry stale — the ratchet fails until
    #    the baseline shrinks.
    bad.write_text("def drain(ids):\n    return sorted(set(ids))\n",
                   encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["entries"] == []
    assert main(["lint", "--root", root]) == 0


def test_baseline_survives_line_drift(tmp_path):
    bad = seed_violation(tmp_path)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Unrelated edits above the violation shift its line number; the
    # text-keyed fingerprint keeps the entry matched.
    bad.write_text("# leading comment\n# another\n" + bad.read_text(),
                   encoding="utf-8")
    assert main(["lint", "--root", root]) == 0


def test_explicit_baseline_path(tmp_path):
    seed_violation(tmp_path)
    baseline = tmp_path / "custom-baseline.json"
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert baseline.is_file()
    assert main(["lint", "--root", root, "--baseline", str(baseline)]) == 0
    # The default baseline name was never created.
    assert not (tmp_path / "LINT_BASELINE.json").exists()


def test_committed_baseline_is_empty():
    """Satellite contract: the repo baseline stays (near-)empty; every
    entry that does exist must carry a documenting note."""
    data = json.loads((REPO_ROOT / "LINT_BASELINE.json").read_text())
    assert data["format"] == 1
    for entry in data["entries"]:
        assert entry.get("note"), f"undocumented baseline entry: {entry}"
    assert len(data["entries"]) == 0


# --------------------------------------------------------------------------
# baseline / ratchet workflow with U-rules (interprocedural findings)

U_BAD_SNIPPET = """
    def cost(delay_ms, size_bytes):
        return delay_ms + size_bytes
    """


def test_u_rule_baseline_round_trip(tmp_path, capsys):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)

    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "U001" in capsys.readouterr().out
    # Grandfather the interprocedural finding, then go green.
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    baseline = tmp_path / "LINT_BASELINE.json"
    entries = json.loads(baseline.read_text())["entries"]
    assert [e["rule"] for e in entries] == ["U001"]
    assert main(["lint", "--root", root]) == 0


def test_u_rule_fingerprint_survives_line_drift(tmp_path):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Project-rule findings use the same text-keyed fingerprints as
    # per-file ones: unrelated edits above must not orphan the entry.
    bad.write_text("# leading comment\n# another\n" + bad.read_text(),
                   encoding="utf-8")
    assert main(["lint", "--root", root]) == 0


def test_u_rule_stale_entry_fails_ratchet(tmp_path, capsys):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Fix the unit mix: the baselined entry goes stale and the ratchet
    # demands the baseline shrink.
    bad.write_text("def cost(delay_ms, other_ms):\n"
                   "    return delay_ms + other_ms\n", encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert json.loads(
        (tmp_path / "LINT_BASELINE.json").read_text())["entries"] == []


def test_cli_select_family_prefix(tmp_path, capsys):
    seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    capsys.readouterr()
    assert main(["lint", "--root", root, "--select", "U",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["U001", "U002", "U003"]
    # The D-family alone does not see the unit mix.
    assert main(["lint", "--root", root, "--select", "D"]) == 0


def test_cli_select_unknown_prefix_exits_2(tmp_path, capsys):
    seed_violation(tmp_path, U_BAD_SNIPPET)
    assert main(["lint", "--root", str(tmp_path), "--select", "Q"]) == 2
    assert "unknown rule" in capsys.readouterr().out


# --------------------------------------------------------------------------
# M/N families: clean-tree contract and --select plumbing

M_BAD_SNIPPET = """
    class Block:
        def program(self, page):
            self.next_page += 1
            if page < 0:
                raise ValueError("bad page")
            self.pass_counts[page] += 1
    """


def test_clean_tree_with_mn_families_and_empty_baseline(monkeypatch, capsys):
    """Acceptance contract: ``--select M,N`` exits 0 on the committed
    tree with the (empty) committed baseline — every real finding was
    fixed or carries an in-code suppression, never a baseline entry."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--select", "M,N", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["M001", "M002", "N001", "N002"]
    assert payload["violations"] == []


def test_cli_select_m_family_prefix(tmp_path, capsys):
    path = tmp_path / "nand" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(textwrap.dedent(M_BAD_SNIPPET), encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--select", "M",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["M001", "M002"]
    assert any(v["rule"] == "M001" for v in payload["violations"])
    # The N-family alone does not see the torn write.
    assert main(["lint", "--root", str(tmp_path), "--select", "N"]) == 0


# --------------------------------------------------------------------------
# SARIF output


def _sarif_run(doc: dict) -> dict:
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    (run,) = doc["runs"]
    return run


def test_sarif_clean_tree_schema(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--format", "sarif"]) == 0
    run = _sarif_run(json.loads(capsys.readouterr().out))
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-ssd-lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == ["D001", "D002", "D003", "S001", "S002", "C001",
                        "U001", "U002", "U003", "M001", "M002", "N001",
                        "N002", "K001", "K002", "K003", "P001", "P002",
                        "P003"]
    assert all(r["shortDescription"]["text"] for r in driver["rules"])
    assert run["results"] == []


def test_sarif_round_trips_seeded_violation(tmp_path, capsys):
    seed_violation(tmp_path)
    root = str(tmp_path)
    capsys.readouterr()
    assert main(["lint", "--root", root, "--format", "sarif"]) == 1
    run = _sarif_run(json.loads(capsys.readouterr().out))
    (result,) = run["results"]
    assert result["ruleId"] == "D003"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "ftl/bad.py"
    assert loc["region"]["startLine"] >= 1
    assert loc["region"]["startColumn"] >= 1  # SARIF columns are 1-based
    assert result["partialFingerprints"]["reproLint/v1"]
    # The SARIF location agrees with the JSON reporter's 0-based column.
    capsys.readouterr()
    assert main(["lint", "--root", root, "--format", "json"]) == 1
    (violation,) = json.loads(capsys.readouterr().out)["violations"]
    assert loc["region"]["startLine"] == violation["line"]
    assert loc["region"]["startColumn"] == violation["col"] + 1
    assert (result["partialFingerprints"]["reproLint/v1"]
            == violation["fingerprint"])


def test_sarif_rebases_uris_on_repo_root(tmp_path, capsys):
    """With a repo-shaped ``--root`` (``src/repro`` layout) violation
    paths are package-root relative; SARIF annotations must target
    ``src/repro/...`` so code scanning lands them on the right files."""
    (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
    bad = tmp_path / "src" / "repro" / "ftl" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent(BAD_SNIPPET), encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--format", "sarif"]) == 1
    run = _sarif_run(json.loads(capsys.readouterr().out))
    (result,) = run["results"]
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/ftl/bad.py"


def test_sarif_baselined_findings_are_notes(tmp_path, capsys):
    seed_violation(tmp_path)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", "--root", root, "--format", "sarif"]) == 0
    run = _sarif_run(json.loads(capsys.readouterr().out))
    (result,) = run["results"]
    assert result["level"] == "note"


def test_sarif_output_flag_writes_file(tmp_path, capsys):
    seed_violation(tmp_path)
    out_path = tmp_path / "lint.sarif"
    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path), "--format", "sarif",
                 "--output", str(out_path)]) == 1
    summary = capsys.readouterr().out
    assert "wrote sarif report" in summary and "1 new" in summary
    run = _sarif_run(json.loads(out_path.read_text(encoding="utf-8")))
    assert [r["ruleId"] for r in run["results"]] == ["D003"]
