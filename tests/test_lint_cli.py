"""End-to-end tests of the ``repro-ssd lint`` subcommand: exit codes,
report formats, and the baseline/ratchet workflow."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

BAD_SNIPPET = """
    def drain(ids):
        for i in set(ids):
            yield i
    """


def seed_violation(tmp_path: Path, code: str = BAD_SNIPPET) -> Path:
    path = tmp_path / "ftl" / "bad.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# exit codes and formats


def test_lint_clean_on_committed_tree(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 new, 0 baselined, 0 stale" in out


def test_lint_json_format_on_committed_tree(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["new"] == 0
    assert payload["rules_run"] == ["D001", "D002", "D003", "S001", "S002",
                                    "C001", "U001", "U002", "U003"]
    assert payload["files_checked"] > 50


def test_lint_nonzero_on_seeded_violation(tmp_path, capsys):
    seed_violation(tmp_path)
    assert main(["lint", "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "D003" in out and "ftl/bad.py" in out


def test_lint_json_reports_seeded_violation(tmp_path, capsys):
    seed_violation(tmp_path)
    assert main(["lint", "--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (violation,) = payload["violations"]
    assert violation["rule"] == "D003"
    assert violation["path"] == "ftl/bad.py"
    assert violation["fingerprint"]


@pytest.mark.parametrize("rule", ["D001", "D002", "D003", "S001", "S002",
                                  "C001", "U001", "U002", "U003"])
def test_every_rule_listed(rule, capsys):
    assert main(["lint", "--list-rules"]) == 0
    assert rule in capsys.readouterr().out


def test_select_unknown_rule_exits_2(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path), "--select", "Z999"]) == 2


# --------------------------------------------------------------------------
# baseline / ratchet workflow


def test_baseline_workflow_ratchets(tmp_path, capsys):
    bad = seed_violation(tmp_path)
    root = str(tmp_path)

    # 1. New violation fails.
    assert main(["lint", "--root", root]) == 1
    # 2. Grandfather it; the run goes green with it recorded.
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    baseline = tmp_path / "LINT_BASELINE.json"
    assert baseline.is_file()
    assert len(json.loads(baseline.read_text())["entries"]) == 1
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 0
    assert "[baselined]" in capsys.readouterr().out
    # 3. Fixing the code makes the entry stale — the ratchet fails until
    #    the baseline shrinks.
    bad.write_text("def drain(ids):\n    return sorted(set(ids))\n",
                   encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["entries"] == []
    assert main(["lint", "--root", root]) == 0


def test_baseline_survives_line_drift(tmp_path):
    bad = seed_violation(tmp_path)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Unrelated edits above the violation shift its line number; the
    # text-keyed fingerprint keeps the entry matched.
    bad.write_text("# leading comment\n# another\n" + bad.read_text(),
                   encoding="utf-8")
    assert main(["lint", "--root", root]) == 0


def test_explicit_baseline_path(tmp_path):
    seed_violation(tmp_path)
    baseline = tmp_path / "custom-baseline.json"
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert baseline.is_file()
    assert main(["lint", "--root", root, "--baseline", str(baseline)]) == 0
    # The default baseline name was never created.
    assert not (tmp_path / "LINT_BASELINE.json").exists()


def test_committed_baseline_is_empty():
    """Satellite contract: the repo baseline stays (near-)empty; every
    entry that does exist must carry a documenting note."""
    data = json.loads((REPO_ROOT / "LINT_BASELINE.json").read_text())
    assert data["format"] == 1
    for entry in data["entries"]:
        assert entry.get("note"), f"undocumented baseline entry: {entry}"
    assert len(data["entries"]) == 0


# --------------------------------------------------------------------------
# baseline / ratchet workflow with U-rules (interprocedural findings)

U_BAD_SNIPPET = """
    def cost(delay_ms, size_bytes):
        return delay_ms + size_bytes
    """


def test_u_rule_baseline_round_trip(tmp_path, capsys):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)

    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "U001" in capsys.readouterr().out
    # Grandfather the interprocedural finding, then go green.
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    baseline = tmp_path / "LINT_BASELINE.json"
    entries = json.loads(baseline.read_text())["entries"]
    assert [e["rule"] for e in entries] == ["U001"]
    assert main(["lint", "--root", root]) == 0


def test_u_rule_fingerprint_survives_line_drift(tmp_path):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Project-rule findings use the same text-keyed fingerprints as
    # per-file ones: unrelated edits above must not orphan the entry.
    bad.write_text("# leading comment\n# another\n" + bad.read_text(),
                   encoding="utf-8")
    assert main(["lint", "--root", root]) == 0


def test_u_rule_stale_entry_fails_ratchet(tmp_path, capsys):
    bad = seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    # Fix the unit mix: the baselined entry goes stale and the ratchet
    # demands the baseline shrink.
    bad.write_text("def cost(delay_ms, other_ms):\n"
                   "    return delay_ms + other_ms\n", encoding="utf-8")
    capsys.readouterr()
    assert main(["lint", "--root", root]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert json.loads(
        (tmp_path / "LINT_BASELINE.json").read_text())["entries"] == []


def test_cli_select_family_prefix(tmp_path, capsys):
    seed_violation(tmp_path, U_BAD_SNIPPET)
    root = str(tmp_path)
    capsys.readouterr()
    assert main(["lint", "--root", root, "--select", "U",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules_run"] == ["U001", "U002", "U003"]
    # The D-family alone does not see the unit mix.
    assert main(["lint", "--root", root, "--select", "D"]) == 0


def test_cli_select_unknown_prefix_exits_2(tmp_path, capsys):
    seed_violation(tmp_path, U_BAD_SNIPPET)
    assert main(["lint", "--root", str(tmp_path), "--select", "Q"]) == 2
    assert "unknown rule" in capsys.readouterr().out
