"""Pipelined bus model (optional timing refinement)."""

import dataclasses

import pytest

from repro import IPUFTL, Simulator
from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.nand.geometry import Geometry
from repro.sim.ops import Cause, OpKind, OpRecord
from repro.sim.resources import ResourceSet
from repro.sim.timing import TimingModel
from repro.traces import generate, profile

from conftest import tiny_config


def pipe_config():
    cfg = tiny_config()
    return dataclasses.replace(
        cfg, timing=dataclasses.replace(cfg.timing, pipelined_bus=True))


@pytest.fixture
def rs():
    geo = Geometry(GeometryConfig(
        channels=2, chips_per_channel=2, planes_per_chip=1, total_blocks=32))
    return ResourceSet(geo)


class TestAcquirePipelined:
    def test_read_chip_then_channel(self, rs):
        start, end = rs.acquire_pipelined(0, 0.0, chip_ms=0.025,
                                          channel_ms=0.04, chip_first=True)
        assert (start, end) == (0.0, pytest.approx(0.065))
        assert rs.chip_for_block(0).next_free == pytest.approx(0.025)
        assert rs.channel_for_block(0).next_free == pytest.approx(0.065)

    def test_program_channel_then_chip(self, rs):
        start, end = rs.acquire_pipelined(0, 0.0, chip_ms=0.3,
                                          channel_ms=0.04, chip_first=False)
        assert end == pytest.approx(0.34)
        assert rs.channel_for_block(0).next_free == pytest.approx(0.04)
        assert rs.chip_for_block(0).next_free == pytest.approx(0.34)

    def test_erase_chip_only(self, rs):
        start, end = rs.acquire_pipelined(0, 0.0, chip_ms=10.0,
                                          channel_ms=0.0, chip_first=True)
        assert end == 10.0
        assert rs.channel_for_block(0).next_free == 0.0

    def test_channel_freed_during_media_time(self, rs):
        """Two programs to different chips on one channel overlap their
        media phases — the point of pipelining."""
        geo = rs.geometry
        b0 = 0
        b1 = next(b for b in range(32)
                  if geo.channel_of(b) == geo.channel_of(b0)
                  and geo.chip_of(b) != geo.chip_of(b0))
        rs.acquire_pipelined(b0, 0.0, chip_ms=0.3, channel_ms=0.04,
                             chip_first=False)
        _, end = rs.acquire_pipelined(b1, 0.0, chip_ms=0.3, channel_ms=0.04,
                                      chip_first=False)
        assert end == pytest.approx(0.08 + 0.3)  # waits only for transfer

    def test_negative_stage_rejected(self, rs):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            rs.acquire_pipelined(0, 0.0, chip_ms=-1.0, channel_ms=0.0,
                                 chip_first=True)


class TestSegments:
    def test_read_segments(self):
        timing = TimingModel(tiny_config())
        op = OpRecord(kind=OpKind.READ, block_id=0, page=0, n_slots=2,
                      is_slc=True, cause=Cause.HOST, ecc_ms=0.01)
        chip, chan, chip_first = timing.segments_ms(op)
        assert chip == pytest.approx(0.025)
        assert chan == pytest.approx(2 * 0.04 + 0.01)
        assert chip_first

    def test_program_segments(self):
        timing = TimingModel(tiny_config())
        op = OpRecord(kind=OpKind.PROGRAM, block_id=0, page=0, n_slots=1,
                      is_slc=False, cause=Cause.HOST, transfer_slots=4)
        chip, chan, chip_first = timing.segments_ms(op)
        assert chip == pytest.approx(0.9)
        assert chan == pytest.approx(4 * 0.04)
        assert not chip_first

    def test_segments_sum_to_duration(self):
        timing = TimingModel(tiny_config())
        for kind, slots in ((OpKind.READ, 3), (OpKind.PROGRAM, 2),
                            (OpKind.ERASE, 0)):
            op = OpRecord(kind=kind, block_id=0, page=0, n_slots=slots,
                          is_slc=True, cause=Cause.HOST, ecc_ms=0.002
                          if kind is OpKind.READ else 0.0)
            chip, chan, _ = timing.segments_ms(op)
            assert chip + chan == pytest.approx(timing.duration_ms(op))


class TestEndToEnd:
    def test_pipelining_never_hurts(self):
        trace = generate(profile("ts0"), n_requests=1500, seed=8,
                         mean_interarrival_ms=0.6)
        both = Simulator(IPUFTL(tiny_config())).run(trace)
        piped = Simulator(IPUFTL(pipe_config())).run(trace)
        assert piped.avg_latency_ms <= both.avg_latency_ms * 1.01

    def test_results_still_consistent(self):
        trace = generate(profile("ts0"), n_requests=800, seed=8,
                         mean_interarrival_ms=0.8)
        ftl = IPUFTL(pipe_config())
        Simulator(ftl).run(trace)
        ftl.check_consistency()
