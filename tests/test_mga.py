"""MGA scheme: packing, partial programming, buffered eviction."""

import pytest

from repro import MGAFTL
from repro.sim.ops import OpKind

from conftest import tiny_config


@pytest.fixture
def ftl():
    return MGAFTL(tiny_config())


class TestPacking:
    def test_small_writes_share_a_page(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([100], 1.0)
        a, b = ftl.lookup(0), ftl.lookup(100)
        assert (a.block, a.page) == (b.block, b.page)
        assert a.slot != b.slot

    def test_second_write_is_partial_program(self, ftl):
        ftl.handle_write([0], 0.0)
        assert ftl.flash.partial_programs == 0
        ftl.handle_write([100], 1.0)
        assert ftl.flash.partial_programs == 1

    def test_page_fills_to_capacity(self, ftl):
        for i in range(4):
            ftl.handle_write([i * 10], float(i))
        locations = {(ftl.lookup(i * 10).block, ftl.lookup(i * 10).page)
                     for i in range(4)}
        assert len(locations) == 1
        # Fifth write opens a new page.
        ftl.handle_write([40], 4.0)
        fifth = ftl.lookup(40)
        assert (fifth.block, fifth.page) not in locations or fifth.slot is None

    def test_respects_pass_limit(self, ftl):
        import dataclasses
        cfg = tiny_config()
        cfg = dataclasses.replace(
            cfg, reliability=dataclasses.replace(
                cfg.reliability, max_page_programs=2))
        ftl = MGAFTL(cfg)
        ftl.handle_write([0], 0.0)
        ftl.handle_write([10], 1.0)  # second pass, page at limit
        ftl.handle_write([20], 2.0)  # must go elsewhere
        a, c = ftl.lookup(0), ftl.lookup(20)
        assert (a.block, a.page) != (c.block, c.page)
        for b in ftl.flash.blocks:
            if b.mode.is_slc:
                assert (b.program_count <= 2).all()

    def test_multi_subpage_write_single_pass_when_fresh(self, ftl):
        ops = ftl.handle_write([0, 1, 2, 3], 0.0)
        programs = [o for o in ops if o.kind is OpKind.PROGRAM]
        assert len(programs) == 1
        assert programs[0].n_slots == 4

    def test_write_splits_across_pack_boundary(self, ftl):
        ftl.handle_write([0, 1, 2], 0.0)       # page has 1 free slot
        ops = ftl.handle_write([10, 11], 1.0)  # 1 slot here, 1 in a new page
        programs = [o for o in ops if o.kind is OpKind.PROGRAM]
        assert len(programs) == 2
        ftl.check_consistency()

    def test_partial_transfer_only_written_slots(self, ftl):
        ops = ftl.handle_write([0], 0.0)
        program = next(o for o in ops if o.kind is OpKind.PROGRAM)
        assert program.channel_slots == 1


class TestUpdates:
    def test_update_invalidates_and_repacks(self, ftl):
        ftl.handle_write([0], 0.0)
        old = ftl.lookup(0)
        ftl.handle_write([0], 1.0)
        new = ftl.lookup(0)
        assert new != old
        assert not ftl.flash.block(old.block).valid[old.page, old.slot]
        ftl.check_consistency()

    def test_disturb_accrues_on_valid_neighbors(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([10], 1.0)
        assert ftl.flash.disturbed_valid_subpages >= 1


class TestGC:
    def fill_cache(self, ftl, n=4000):
        lsn = 0
        for i in range(n):
            ftl.handle_write([lsn], float(i))
            lsn += 4
            if ftl.flash.erases_slc > 3:
                break
        return lsn

    def test_gc_triggers_and_preserves_data(self, ftl):
        last = self.fill_cache(ftl)
        assert ftl.flash.erases_slc > 0
        for lsn in range(0, last, 4):
            assert ftl.lookup(lsn) is not None
        ftl.check_consistency()

    def test_eviction_buffer_drains(self, ftl):
        self.fill_cache(ftl)
        assert ftl._evict_buffer == [] or ftl.slc_gc.draining
        assert ftl.stats.evicted_subpages_to_mlc > 0

    def test_evictions_pack_mlc_pages(self, ftl):
        self.fill_cache(ftl)
        # Packed eviction: MLC program ops average close to 4 subpages.
        if ftl.stats.gc_programs_mlc:
            avg = ftl.stats.gc_subpages_mlc / ftl.stats.gc_programs_mlc
            assert avg > 2.0

    def test_write_to_buffered_lsn_cancels_eviction(self, ftl):
        """A host write racing a partially-drained victim must not let the
        flush resurrect stale data."""
        self.fill_cache(ftl)
        # Force a drain in progress, then rewrite something buffered.
        if ftl._evict_buffer:
            lsn = ftl._evict_buffer[0]
            ftl.handle_write([lsn], 1e6)
            assert lsn not in ftl._evict_buffer
            ftl.check_consistency()

    def test_utilization_is_high(self, ftl):
        self.fill_cache(ftl)
        assert ftl.slc_gc.stats.page_utilization > 0.9
