"""Closed-loop (queue-depth) replay mode."""

import numpy as np
import pytest

from repro import SCHEMES, Simulator
from repro.errors import SimulationError
from repro.traces import generate, profile

from conftest import tiny_config


def small_trace(n=800):
    return generate(profile("ts0"), n_requests=n, seed=4,
                    mean_interarrival_ms=0.5)


class TestClosedLoop:
    def test_runs_all_requests(self, scheme_name):
        result = Simulator(SCHEMES[scheme_name](tiny_config())).run_closed(
            small_trace(), queue_depth=4)
        assert result.n_requests == 800

    def test_qd1_is_serial(self):
        """At queue depth 1 every request waits for its predecessor, so
        the makespan is at least the sum of latencies."""
        result = Simulator(SCHEMES["ipu"](tiny_config())).run_closed(
            small_trace(200), queue_depth=1)
        total = result.read_latencies.sum() + result.write_latencies.sum()
        assert result.sim_time_ms >= total * 0.999

    def test_deeper_queue_finishes_sooner(self):
        times = {}
        for qd in (1, 8):
            result = Simulator(SCHEMES["ipu"](tiny_config())).run_closed(
                small_trace(), queue_depth=qd)
            times[qd] = result.sim_time_ms
        assert times[8] < times[1]

    def test_throughput_saturates(self):
        """Beyond the device's parallelism, more QD cannot help much."""
        times = {}
        for qd in (8, 64):
            result = Simulator(SCHEMES["ipu"](tiny_config())).run_closed(
                small_trace(), queue_depth=qd)
            times[qd] = result.sim_time_ms
        assert times[64] >= times[8] * 0.5

    def test_state_consistent_after_closed_replay(self, scheme_name):
        ftl = SCHEMES[scheme_name](tiny_config())
        Simulator(ftl).run_closed(small_trace(), queue_depth=8)
        ftl.check_consistency()

    def test_error_metric_matches_open_loop(self):
        """The error metric is timing-independent: open- and closed-loop
        replays of one trace see the same data placement history only if
        GC decisions coincide; at minimum both must be positive and of the
        same magnitude."""
        trace = small_trace()
        open_res = Simulator(SCHEMES["ipu"](tiny_config())).run(trace)
        closed_res = Simulator(SCHEMES["ipu"](tiny_config())).run_closed(
            trace, queue_depth=8)
        assert closed_res.read_error_rate == pytest.approx(
            open_res.read_error_rate, rel=0.2)

    def test_invalid_queue_depth(self):
        with pytest.raises(SimulationError):
            Simulator(SCHEMES["ipu"](tiny_config())).run_closed(
                small_trace(100), queue_depth=0)

    def test_observer_invoked(self):
        calls = []
        sim = Simulator(SCHEMES["ipu"](tiny_config()),
                        observer=lambda i, t: calls.append(i))
        sim.run_closed(small_trace(100), queue_depth=4)
        assert len(calls) == 100

    def test_latencies_positive(self):
        result = Simulator(SCHEMES["mga"](tiny_config())).run_closed(
            small_trace(300), queue_depth=16)
        assert (result.write_latencies > 0).all()
        assert (result.read_latencies > 0).all()
