"""Operation records and the latency model."""

import pytest

from repro.config import SSDConfig
from repro.sim.ops import Cause, OpKind, OpRecord
from repro.sim.timing import TimingModel

from conftest import tiny_config


def op(kind=OpKind.READ, slc=True, n_slots=1, cause=Cause.HOST,
       ecc_ms=0.0, transfer_slots=0):
    return OpRecord(kind=kind, block_id=0, page=0, n_slots=n_slots,
                    is_slc=slc, cause=cause, ecc_ms=ecc_ms,
                    transfer_slots=transfer_slots)


@pytest.fixture
def timing():
    return TimingModel(tiny_config())


class TestOpRecord:
    def test_is_host(self):
        assert op(cause=Cause.HOST).is_host
        assert not op(cause=Cause.GC).is_host

    def test_channel_slots_defaults_to_n_slots(self):
        assert op(n_slots=3).channel_slots == 3

    def test_channel_slots_override(self):
        assert op(n_slots=1, transfer_slots=4).channel_slots == 4

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            op(n_slots=-1)

    def test_negative_ecc_rejected(self):
        with pytest.raises(ValueError):
            op(ecc_ms=-0.1)

    def test_slots_reject_new_attributes(self):
        # OpRecord is a slots dataclass (hot-path construction cost);
        # unknown attributes are still rejected.
        record = op()
        with pytest.raises(AttributeError):
            record.not_a_field = 1.0


class TestTiming:
    def test_erase_duration(self, timing):
        assert timing.duration_ms(op(kind=OpKind.ERASE, n_slots=0)) == 10.0

    def test_slc_program(self, timing):
        t = timing.config.timing
        expected = t.transfer_ms_per_subpage * 2 + t.slc_write_ms
        assert timing.duration_ms(
            op(kind=OpKind.PROGRAM, n_slots=2)) == pytest.approx(expected)

    def test_mlc_program_slower(self, timing):
        slc = timing.duration_ms(op(kind=OpKind.PROGRAM, slc=True))
        mlc = timing.duration_ms(op(kind=OpKind.PROGRAM, slc=False))
        assert mlc - slc == pytest.approx(0.9 - 0.3)

    def test_full_page_transfer_costs_more(self, timing):
        partial = timing.duration_ms(op(kind=OpKind.PROGRAM, n_slots=1))
        full = timing.duration_ms(
            op(kind=OpKind.PROGRAM, n_slots=1, transfer_slots=4))
        t = timing.config.timing
        assert full - partial == pytest.approx(3 * t.transfer_ms_per_subpage)

    def test_read_includes_ecc(self, timing):
        base = timing.duration_ms(op())
        with_ecc = timing.duration_ms(op(ecc_ms=0.05))
        assert with_ecc - base == pytest.approx(0.05)

    def test_slc_read_faster(self, timing):
        slc = timing.duration_ms(op(slc=True))
        mlc = timing.duration_ms(op(slc=False))
        assert mlc - slc == pytest.approx(0.05 - 0.025)

    def test_pseudo_read_helpers(self, timing):
        ecc = timing.pseudo_read_ecc_ms()
        assert 0.0005 <= ecc <= 0.0968
        errors = timing.pseudo_read_raw_errors(2)
        assert errors > 0
        assert errors == pytest.approx(2 * timing.pseudo_read_raw_errors(1))
