"""Property tests (hypothesis): the optimised hot-path structures agree
with naive reference implementations over randomized device states.

Three families:

* victim policies — ``select`` (naive scan) and ``select_indexed`` (the
  incremental :class:`~repro.ftl.allocator.VictimIndex` path) must pick
  the block a from-scratch reference scan picks, including the
  lowest-``block_id`` tie-break, before and after further mutations;
* vectorised ECC decode latency — ``decode_ms_many`` must equal the
  scalar ``decode_ms`` element by element, bit for bit;
* vectorised op pricing — ``TimingModel.durations_ms`` must equal
  ``duration_ms`` per record, bit for bit.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.error import EccModel
from repro.ftl.allocator import VictimIndex
from repro.ftl.hotcold import block_age_sum, block_coldness
from repro.ftl.victim import (
    GreedyPageVictimPolicy,
    GreedyVictimPolicy,
    IsrVictimPolicy,
)
from repro.nand.block import Block
from repro.nand.cell import CellMode
from repro.sim.ops import Cause, OpKind, OpRecord
from repro.sim.timing import TimingModel

from conftest import tiny_config

PAGES = 2
SPP = 4
NOW = 100.0

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: One block's randomized state: per-slot invalidation mask, per-slot
#: last-access time (before NOW), per-page "resident data was updated"
#: flag, and a second invalidation wave applied after the index exists.
block_state = st.tuples(
    st.lists(st.booleans(), min_size=PAGES * SPP, max_size=PAGES * SPP),
    st.lists(st.integers(min_value=0, max_value=90),
             min_size=PAGES * SPP, max_size=PAGES * SPP),
    st.lists(st.booleans(), min_size=PAGES, max_size=PAGES),
    st.lists(st.booleans(), min_size=PAGES * SPP, max_size=PAGES * SPP),
)

region = st.lists(block_state, min_size=1, max_size=8)


def build_block(block_id, state):
    """A FULL SLC block with the given invalidation/age pattern."""
    invalid, times, updated, _late = state
    block = Block(block_id, CellMode.SLC, PAGES, SPP)
    block.open_as(1, 0.0)
    lsn = block_id * PAGES * SPP
    for page in range(PAGES):
        block.program(page, list(range(SPP)),
                      list(range(lsn + page * SPP, lsn + (page + 1) * SPP)),
                      0.0, SPP)
        if updated[page]:
            block.mark_page_updated(page)
    for page in range(PAGES):
        for slot in range(SPP):
            block.touch(page, [slot], float(times[page * SPP + slot]))
            if invalid[page * SPP + slot]:
                block.invalidate(page, slot)
    return block


def apply_late_invalidations(blocks, states):
    """Second mutation wave, exercising the index watcher callbacks."""
    for block, (_invalid, _times, _updated, late) in zip(blocks, states):
        for page in range(PAGES):
            for slot in range(SPP):
                if late[page * SPP + slot] and block.valid[page, slot]:
                    block.invalidate(page, slot)


class _RegionStub:
    """Minimal ``FlashArray`` stand-in: the index only calls ``block``."""

    def __init__(self, blocks):
        self._by_id = {b.block_id: b for b in blocks}

    def block(self, block_id):
        return self._by_id[block_id]


def make_index(blocks):
    return VictimIndex(_RegionStub(blocks), [b.block_id for b in blocks])


# -- naive references (ascending block_id; strict > keeps lowest id) ----

def ref_greedy(blocks):
    best, best_score = None, 0
    for block in sorted(blocks, key=lambda b: b.block_id):
        score = block.total_subpages - block.n_valid
        if score > best_score:
            best, best_score = block, score
    return best


def ref_greedy_page(blocks):
    best, best_score = None, 0
    for block in sorted(blocks, key=lambda b: b.block_id):
        score = block.pages - block.pages_with_valid
        if score > best_score:
            best, best_score = block, score
    return best


def ref_isr(blocks, now):
    ordered = sorted(blocks, key=lambda b: b.block_id)
    total_age, total_count = 0.0, 0
    for block in ordered:  # same accumulation order as the policy
        age_sum, count = block_age_sum(block, now)
        total_age += age_sum
        total_count += count
    t_mean = total_age / total_count if total_count else 0.0
    best, best_score = None, 0.0
    for block in ordered:
        score = (block.n_invalid
                 + block_coldness(block, now, t_mean)) / block.total_subpages
        if score > best_score:
            best, best_score = block, score
    return best


class TestVictimPolicyEquivalence:
    @SETTINGS
    @given(region)
    def test_greedy_matches_reference(self, states):
        blocks = [build_block(i, s) for i, s in enumerate(states)]
        expected = ref_greedy(blocks)
        # Naive scan must not depend on candidate order (integer scores).
        assert GreedyVictimPolicy().select(blocks[::-1], NOW) is expected
        index = make_index(blocks)
        assert GreedyVictimPolicy().select_indexed(index, NOW) is expected
        apply_late_invalidations(blocks, states)
        assert (GreedyVictimPolicy().select_indexed(index, NOW)
                is ref_greedy(blocks))
        index.verify()

    @SETTINGS
    @given(region)
    def test_greedy_page_matches_reference(self, states):
        blocks = [build_block(i, s) for i, s in enumerate(states)]
        expected = ref_greedy_page(blocks)
        assert GreedyPageVictimPolicy().select(blocks[::-1], NOW) is expected
        index = make_index(blocks)
        assert GreedyPageVictimPolicy().select_indexed(index, NOW) is expected
        apply_late_invalidations(blocks, states)
        assert (GreedyPageVictimPolicy().select_indexed(index, NOW)
                is ref_greedy_page(blocks))
        index.verify()

    @SETTINGS
    @given(region)
    def test_isr_matches_reference(self, states):
        # ISR candidates keep ascending-id order (as victim_candidates
        # serves them): the region-mean accumulation is a float sum, so
        # only the documented order is bit-reproducible.
        blocks = [build_block(i, s) for i, s in enumerate(states)]
        expected = ref_isr(blocks, NOW)
        assert IsrVictimPolicy().select(blocks, NOW) is expected
        index = make_index(blocks)
        assert IsrVictimPolicy().select_indexed(index, NOW) is expected
        apply_late_invalidations(blocks, states)
        assert (IsrVictimPolicy().select_indexed(index, NOW)
                is ref_isr(blocks, NOW))
        index.verify()

    @SETTINGS
    @given(region)
    def test_modelled_scan_cost_counts_candidates(self, states):
        # The Figure 12 cost model charges every candidate examined,
        # independent of the host-side selection shortcut.
        blocks = [build_block(i, s) for i, s in enumerate(states)]
        naive, indexed = GreedyVictimPolicy(), GreedyVictimPolicy()
        naive.select(blocks, NOW)
        indexed.select_indexed(make_index(blocks), NOW)
        assert naive.scanned_blocks == indexed.scanned_blocks == len(blocks)
        assert naive.modelled_scan_ms == indexed.modelled_scan_ms


class TestVectorisedAccounting:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=0.02,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=32))
    def test_decode_ms_many_matches_scalar(self, rbers):
        config = tiny_config()
        ecc = EccModel(config.timing, config.reliability)
        many = ecc.decode_ms_many(np.array(rbers, dtype=np.float64))
        assert many.shape == (len(rbers),)
        for rber, got in zip(rbers, many):
            assert float(got) == ecc.decode_ms(rber)

    op_record = st.tuples(
        st.sampled_from([OpKind.READ, OpKind.PROGRAM, OpKind.ERASE]),
        st.integers(min_value=0, max_value=3),   # n_slots (0 for erase ok)
        st.booleans(),                           # is_slc
        st.integers(min_value=0, max_value=4),   # transfer_slots
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),  # ecc_ms
    )

    @SETTINGS
    @given(st.lists(op_record, min_size=1, max_size=24))
    def test_durations_ms_matches_scalar(self, specs):
        timing = TimingModel(tiny_config())
        ops = [OpRecord(kind=kind, block_id=0, page=0,
                        n_slots=n_slots if kind is not OpKind.ERASE else 0,
                        is_slc=slc, cause=Cause.HOST,
                        transfer_slots=transfer,
                        ecc_ms=ecc_ms if kind is OpKind.READ else 0.0)
               for kind, n_slots, slc, transfer, ecc_ms in specs]
        batch = timing.durations_ms(ops)
        assert batch.shape == (len(ops),)
        for op, got in zip(ops, batch):
            assert float(got) == timing.duration_ms(op)
