"""Differential tests: array-backed block kernel vs pure-python reference.

The structure-of-arrays kernel (:mod:`repro.nand.block` over
:class:`repro.nand.state.RegionState`) earns its optimisations — flat
scalar stores, python-int bitmasks, derived counters — only if it is
observationally identical to the obvious implementation.
:class:`repro.nand.reference.ReferenceBlock` *is* the obvious
implementation; hypothesis drives randomized operation sequences through
both and asserts, after every single step:

* identical raised exception type (or none) and return value,
* identical observable state (slot matrices, lsns, times, disturb
  counters, lifecycle, epochs, occupancy),
* the kernel's own :meth:`Block.verify_array_state` cross-check passes.

A second group pins the array RBER/ECC kernels (``rber_many``,
``decode_ms_many``) to their scalar fast paths bit-for-bit — the batch
pricing paths are only byte-identical to the sequential replay if every
element matches the scalar result exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ReliabilityConfig, TimingConfig
from repro.error.ecc import EccModel
from repro.error.rber import RberModel
from repro.nand.block import Block, BlockState
from repro.nand.cell import CellMode
from repro.nand.reference import ReferenceBlock

# Small geometry: enough pages for neighbour disturb and ordering rules,
# small enough that random sequences exercise full/erase transitions.
PAGES = 4
SPP = 4
MAX_PROGRAMS = 4

# ---------------------------------------------------------------------------
# Observable-state snapshot (shared shape for both implementations)


def snapshot(b) -> dict:
    """Every quantity the simulator can observe about a block."""
    as_list = (lambda m: m.tolist()) if isinstance(b, Block) else (
        lambda m: [list(row) for row in m])
    snap = {
        "state": b.state,
        "level": b.level,
        "next_page": b.next_page,
        "erase_count": b.erase_count,
        "alloc_time": b.alloc_time,
        "content_epoch": b.content_epoch,
        "n_valid": b.n_valid,
        "n_invalid": b.n_invalid,
        "n_programmed": b.n_programmed,
        "page_valid": list(b.page_valid),
        "page_programmed": list(b.page_programmed),
        "pass_counts": list(b.pass_counts),
        "pages_with_valid": b.pages_with_valid,
        "is_full": b.is_full,
        "reclaimable": b.reclaimable_subpages,
        "programmed": as_list(b.programmed),
        "valid": as_list(b.valid),
        "slot_lsn": as_list(b.slot_lsn),
        "free_slots": [b.free_slots_of_page(p) for p in range(PAGES)],
        "valid_slots": [b.valid_slots_of_page(p) for p in range(PAGES)],
        "lsns": [b.slot_lsns(p, list(range(SPP))) for p in range(PAGES)],
        "can_partial": [b.can_partial_program(p, 1, MAX_PROGRAMS)
                        for p in range(PAGES)],
    }
    if b.is_slc:
        snap["slot_time"] = as_list(b.slot_time)
        snap["slot_program_time"] = as_list(b.slot_program_time)
        snap["disturb_in"] = as_list(b.disturb_in)
        snap["disturb_nb"] = as_list(b.disturb_nb)
        snap["page_updated"] = list(b.page_updated)
    return snap


# ---------------------------------------------------------------------------
# Operation strategy

page_idx = st.integers(min_value=0, max_value=PAGES - 1)
slot_idx = st.integers(min_value=0, max_value=SPP - 1)
# Slightly out-of-range slots exercise the validation paths (only
# non-negative: a negative slot is a caller bug both implementations
# reject differently at the int-shift level).
loose_slot = st.integers(min_value=0, max_value=SPP + 1)
slot_list = st.lists(slot_idx, min_size=1, max_size=SPP, unique=True)
loose_slots = st.lists(loose_slot, min_size=0, max_size=SPP + 1)

operation = st.one_of(
    st.tuples(st.just("open"), st.integers(min_value=0, max_value=2)),
    # Program the next fresh page (usually valid).
    st.tuples(st.just("prog_next"), slot_list),
    # Partial-program free slots of an already-programmed page.
    st.tuples(st.just("prog_partial"), page_idx,
              st.integers(min_value=1, max_value=SPP)),
    # Raw program with arbitrary page/slots — exercises every rejection.
    st.tuples(st.just("prog_raw"), st.integers(min_value=0, max_value=PAGES),
              loose_slots),
    st.tuples(st.just("reprogram"), page_idx),
    st.tuples(st.just("invalidate"), page_idx, loose_slot),
    # Invalidate the first k currently-valid slots of a page.
    st.tuples(st.just("invalidate_valid"), page_idx,
              st.integers(min_value=0, max_value=SPP)),
    st.tuples(st.just("invalidate_many_raw"), page_idx, loose_slots),
    st.tuples(st.just("touch"), page_idx, slot_list),
    st.tuples(st.just("mark_updated"), page_idx),
    st.tuples(st.just("add_disturb"), page_idx, slot_list),
    st.tuples(st.just("drain_page"), page_idx),
    st.tuples(st.just("erase"),),
    st.tuples(st.just("victim"),),
    st.tuples(st.just("retire"),),
)
op_sequence = st.lists(operation, min_size=1, max_size=60)


class _Driver:
    """Applies one op stream to one implementation, deterministically.

    Selector-style ops (``prog_partial``, ``invalidate_valid``,
    ``drain_page``) resolve against the implementation's *own* state, so
    the two drivers diverge the moment observable state does.
    """

    def __init__(self, block):
        self.b = block
        self.now = 0.0
        self.lsn = 0

    def apply(self, op):
        b = self.b
        kind = op[0]
        self.now += 0.5
        if kind == "open":
            return b.open_as(op[1], self.now)
        if kind == "prog_next":
            slots = op[1]
            lsns = [self._next_lsn() for _ in slots]
            return b.program_disturb(b.next_page, slots, lsns, self.now,
                                     MAX_PROGRAMS)
        if kind == "prog_partial":
            page = op[1] % max(1, b.next_page)
            slots = b.free_slots_of_page(page)[:op[2]]
            lsns = [self._next_lsn() for _ in slots]
            return b.program_disturb(page, slots, lsns, self.now, MAX_PROGRAMS)
        if kind == "prog_raw":
            slots = op[2]
            lsns = [self._next_lsn() for _ in slots]
            return b.program_disturb(op[1], slots, lsns, self.now, MAX_PROGRAMS)
        if kind == "reprogram":
            return b.reprogram_pass(op[1], MAX_PROGRAMS)
        if kind == "invalidate":
            return b.invalidate(op[1], op[2])
        if kind == "invalidate_valid":
            page = op[1]
            return b.invalidate_many(page, b.valid_slots_of_page(page)[:op[2]])
        if kind == "invalidate_many_raw":
            return b.invalidate_many(op[1], op[2])
        if kind == "touch":
            return b.touch(op[1], op[2], self.now)
        if kind == "mark_updated":
            return b.mark_page_updated(op[1])
        if kind == "add_disturb":
            return b.add_disturb(op[1], op[2])
        if kind == "drain_page":
            # GC idiom: invalidate every valid slot of one page.
            page = op[1]
            return b.invalidate_many(page, b.valid_slots_of_page(page))
        if kind == "erase":
            return b.erase()
        if kind == "victim":
            if b.state is BlockState.FULL:  # mark_victim has no guard
                return b.mark_victim()
            return None
        if kind == "retire":
            return b.retire()
        raise AssertionError(f"unknown op {kind}")

    def _next_lsn(self) -> int:
        self.lsn += 1
        return self.lsn


def run_differential(mode: CellMode, ops) -> None:
    kernel = _Driver(Block(0, mode, PAGES, SPP))
    reference = _Driver(ReferenceBlock(0, mode, PAGES, SPP))
    for op in ops:
        try:
            kr, ke = kernel.apply(op), None
        except Exception as exc:  # noqa: BLE001 - differential capture
            kr, ke = None, exc
        try:
            rr, re = reference.apply(op), None
        except Exception as exc:  # noqa: BLE001 - differential capture
            rr, re = None, exc
        assert type(ke) is type(re), (op, ke, re)
        assert kr == rr, (op, kr, rr)
        assert snapshot(kernel.b) == snapshot(reference.b), op
        kernel.b.verify_array_state()


class TestDifferentialBlockState:
    @given(ops=op_sequence)
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_slc_block_matches_reference(self, ops):
        run_differential(CellMode.SLC, ops)

    @given(ops=op_sequence)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mlc_block_matches_reference(self, ops):
        run_differential(CellMode.MLC, ops)

    def test_snapshot_covers_slc_arrays(self):
        block = Block(0, CellMode.SLC, PAGES, SPP)
        snap = snapshot(block)
        assert "disturb_in" in snap and "slot_time" in snap

    def test_rejected_program_leaves_state_untouched(self):
        # The regression the differential suite first caught: a rejected
        # fresh-page program must not advance next_page.
        block = Block(0, CellMode.SLC, PAGES, SPP)
        block.open_as(1, 0.0)
        before = snapshot(block)
        with pytest.raises(Exception):
            block.program_disturb(0, [0, 0], [1, 2], 0.0, MAX_PROGRAMS)
        assert snapshot(block) == before

    def test_empty_invalidate_many_is_a_noop(self):
        block = Block(0, CellMode.SLC, PAGES, SPP)
        block.open_as(1, 0.0)
        block.program(0, [0], [7], 0.0, MAX_PROGRAMS)
        block.invalidate(0, 0)
        before = snapshot(block)
        block.invalidate_many(0, [])
        assert snapshot(block) == before
        block.verify_array_state()


# ---------------------------------------------------------------------------
# Array RBER/ECC kernels vs scalar fast paths (bit equality)


def _models():
    reliability = ReliabilityConfig()
    timing = TimingConfig()
    return RberModel(reliability), EccModel(timing, reliability)


rber_values = st.lists(
    st.floats(min_value=0.0, max_value=5e-3, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=24)


class TestArrayKernelsBitIdentical:
    @given(values=rber_values)
    @settings(max_examples=100, deadline=None)
    def test_decode_ms_many_equals_scalar(self, values):
        _, ecc = _models()
        batch = ecc.decode_ms_many(np.asarray(values)).tolist()
        assert batch == [ecc.decode_ms(v) for v in values]

    @given(values=rber_values)
    @settings(max_examples=100, deadline=None)
    def test_decode_ms_list_equals_array_form(self, values):
        _, ecc = _models()
        assert ecc.decode_ms_list(values) == ecc.decode_ms_for_subpages(values)

    @given(n_in=st.lists(st.integers(min_value=0, max_value=40),
                         min_size=1, max_size=16),
           pe=st.integers(min_value=0, max_value=6000),
           read_count=st.integers(min_value=0, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_rber_many_equals_scalar(self, n_in, pe, read_count):
        rber, _ = _models()
        n_nb = [(v * 3) % 17 for v in n_in]
        in_arr = np.asarray(n_in, dtype=np.int64)
        nb_arr = np.asarray(n_nb, dtype=np.int64)
        unit = rber.disturb_unit(pe)
        ratio = rber.config.neighbor_disturb_ratio
        base = rber.base(pe, True)
        read_disturb = read_count * ratio * unit
        batch = rber.rber_many(pe, True, in_arr, nb_arr, read_disturb).tolist()
        # Operation-for-operation the scalar fast path of
        # FlashArray.read_list: base + unit*(n_in + ratio*n_nb) + extra.
        scalar = [base + unit * (float(i) + ratio * float(n)) + read_disturb
                  for i, n in zip(n_in, n_nb)]
        assert batch == scalar

    def test_decode_ms_many_rejects_negative(self):
        _, ecc = _models()
        with pytest.raises(Exception):
            ecc.decode_ms_many(np.asarray([1e-4, -1e-9]))
