"""Metric models: mapping memory, latency helpers, report rendering."""

import numpy as np
import pytest

from repro.config import paper_config
from repro.errors import ExperimentError
from repro.metrics.latency import latency_distribution, percentile_summary
from repro.metrics.memory import mapping_breakdown
from repro.metrics.report import format_comparison, format_table


class TestMappingMemory:
    def test_baseline_is_page_table_only(self):
        b = mapping_breakdown("baseline", paper_config())
        assert b.second_level_bytes == 0
        assert b.label_bytes == 0
        assert b.metadata_bytes == 0
        assert b.mapping_bytes == b.page_table_bytes

    def test_mga_overhead_near_paper(self):
        cfg = paper_config()
        base = mapping_breakdown("baseline", cfg)
        mga = mapping_breakdown("mga", cfg)
        # Paper: +23.7%; our entry-size model lands within a few points.
        assert 1.15 < mga.normalized_to(base) < 1.30

    def test_ipu_overhead_near_paper(self):
        cfg = paper_config()
        base = mapping_breakdown("baseline", cfg)
        ipu = mapping_breakdown("ipu", cfg)
        # Paper: +0.84%.
        assert 1.003 < ipu.normalized_to(base) < 1.02

    def test_ipu_label_bytes_match_paper_arithmetic(self):
        """Section 4.4.1: 2 bits x 5% x 65536 blocks = 820 B."""
        b = mapping_breakdown("ipu", paper_config())
        assert b.label_bytes == pytest.approx(820, rel=0.01)

    def test_ipu_isr_metadata_matches_paper_arithmetic(self):
        """Section 4.4.1: 4 B x 5% x 65536 x 64 pages = 819.2 KB."""
        b = mapping_breakdown("ipu", paper_config())
        assert b.metadata_bytes == pytest.approx(819.2e3, rel=0.03)

    def test_ordering(self):
        cfg = paper_config()
        sizes = {s: mapping_breakdown(s, cfg).mapping_bytes
                 for s in ("baseline", "ipu", "mga")}
        assert sizes["baseline"] < sizes["ipu"] < sizes["mga"]

    def test_unknown_scheme(self):
        with pytest.raises(ExperimentError):
            mapping_breakdown("nope", paper_config())


class TestLatencyHelpers:
    def test_percentiles(self):
        summary = percentile_summary(np.array([1.0, 2.0, 3.0, 4.0]))
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_percentiles_empty(self):
        assert percentile_summary(np.array([])) == {
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_distribution_sums_to_one(self):
        dist = latency_distribution(np.array([0.05, 0.2, 0.7, 2.0, 9.0]))
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["<0.1ms"] == pytest.approx(0.2)
        assert dist[">=5.0ms"] == pytest.approx(0.2)

    def test_distribution_custom_edges(self):
        dist = latency_distribution(np.array([1.0, 3.0]), edges_ms=[2.0])
        assert dist["<2.0ms"] == pytest.approx(0.5)

    def test_distribution_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            latency_distribution(np.array([1.0]), edges_ms=[2.0, 1.0])

    def test_distribution_empty(self):
        dist = latency_distribution(np.array([]))
        assert all(v == 0.0 for v in dist.values())


class TestReport:
    def test_format_table_aligns(self):
        text = format_table([
            {"a": 1, "b": "xx"},
            {"a": 22, "b": "y"},
        ], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_comparison(self):
        text = format_comparison({"baseline": 2.0, "ipu": 1.5}, "baseline")
        assert "-25.0%" in text

    def test_format_comparison_missing_reference(self):
        with pytest.raises(KeyError):
            format_comparison({"a": 1.0}, "b")

    def test_small_floats_scientific(self):
        text = format_table([{"x": 2.8e-4}])
        assert "2.800e-04" in text
