"""Cross-scheme integration: replay one workload through all three FTLs
and check the qualitative relationships the paper reports.

These use a mid-size synthetic workload on a small device (bigger than the
unit-test fixtures, far smaller than the benchmark scale), so the asserted
orderings are the robust ones.
"""

import numpy as np
import pytest

from repro import SCHEMES, Simulator
from repro.experiments.runner import RunContext
from repro.traces import generate, profile


@pytest.fixture(scope="module")
def context():
    return RunContext(scale="smoke", seed=21)


@pytest.fixture(scope="module")
def results(context):
    out = {}
    for scheme in ("baseline", "mga", "ipu"):
        result = context.run("ts0", scheme)
        # The context memoises results but not FTL instances; rebuild one
        # replay to inspect FTL state directly.
        ftl = SCHEMES[scheme](context.trace_config("ts0"))
        Simulator(ftl).run(context.trace("ts0"))
        out[scheme] = (ftl, result)
    return out


class TestCorrectness:
    def test_mapping_consistency_after_replay(self, results):
        for scheme, (ftl, _) in results.items():
            ftl.check_consistency()

    def test_every_written_lsn_mapped(self, results, context):
        trace = context.trace("ts0")
        written = set()
        for i in range(len(trace)):
            if trace.is_write[i]:
                start = int(trace.offsets[i]) // 4096
                n = int(trace.sizes[i]) // 4096
                written.update(range(start, start + n))
        for scheme, (ftl, _) in results.items():
            missing = [lsn for lsn in written if ftl.lookup(lsn) is None]
            assert not missing, f"{scheme} lost {len(missing)} subpages"

    def test_no_lsn_double_mapped(self, results):
        for scheme, (ftl, _) in results.items():
            seen = {}
            for lsn, ppa in ftl.iter_bindings():
                assert ppa not in seen.values()
                assert lsn not in seen
                seen[lsn] = ppa

    def test_gc_happened_everywhere(self, results):
        for scheme, (_, r) in results.items():
            assert r.erases_slc > 0, f"{scheme} never collected"


class TestPaperOrderings:
    def test_fig5_baseline_worst_latency(self, results):
        base = results["baseline"][1].avg_latency_ms
        assert results["ipu"][1].avg_latency_ms < base
        assert results["mga"][1].avg_latency_ms < base

    def test_fig8_error_rate_ordering(self, results):
        """Baseline < IPU < MGA (IPU nearly eliminates the partial-
        programming penalty; MGA pays it in full)."""
        base = results["baseline"][1].read_error_rate
        ipu = results["ipu"][1].read_error_rate
        mga = results["mga"][1].read_error_rate
        assert base <= ipu < mga

    def test_fig8_ipu_penalty_small(self, results):
        base = results["baseline"][1].read_error_rate
        ipu = results["ipu"][1].read_error_rate
        mga = results["mga"][1].read_error_rate
        # IPU's increase is a small fraction of MGA's (paper: 3.5% vs 14%).
        assert (ipu - base) < 0.5 * (mga - base)

    def test_fig9_utilization_ordering(self, results):
        base = results["baseline"][1].slc_page_utilization
        ipu = results["ipu"][1].slc_page_utilization
        mga = results["mga"][1].slc_page_utilization
        assert base < ipu < mga
        assert mga > 0.95

    def test_fig10a_slc_erase_ordering(self, results):
        base = results["baseline"][1].erases_slc
        ipu = results["ipu"][1].erases_slc
        mga = results["mga"][1].erases_slc
        assert mga < ipu <= base

    def test_fig6_ipu_keeps_writes_out_of_mlc(self, results):
        base = (results["baseline"][1].host_subpages_mlc
                + results["baseline"][1].evicted_subpages_to_mlc)
        ipu = (results["ipu"][1].host_subpages_mlc
               + results["ipu"][1].evicted_subpages_to_mlc)
        assert ipu < base

    def test_ipu_disturbs_no_valid_in_page_data(self, results):
        """The headline mechanism: IPU's partial passes never hit live
        in-page data; MGA's do."""
        assert results["ipu"][0].flash.disturbed_valid_subpages == 0
        assert results["mga"][0].flash.disturbed_valid_subpages > 0

    def test_ipu_uses_all_three_levels(self, results):
        levels = results["ipu"][1].level_writes
        assert levels.get(1, 0) > 0
        assert levels.get(2, 0) > 0
        assert levels.get(3, 0) > 0

    def test_fig7_work_is_plurality(self, results):
        levels = results["ipu"][1].level_writes
        work, monitor, hot = (levels.get(k, 0) for k in (1, 2, 3))
        assert work > monitor and work > hot

    def test_fig7_hot_exceeds_monitor(self, results):
        """Paper: Hot (~32.9%) well above Monitor (the transit level)."""
        levels = results["ipu"][1].level_writes
        assert levels.get(3, 0) > levels.get(2, 0)

    def test_intra_page_updates_dominate_updates(self, results):
        r = results["ipu"][1]
        assert r.intra_page_updates > 0
        assert r.intra_page_updates > 0.3 * r.update_writes

    def test_fig11_memory_ordering(self, results):
        base = results["baseline"][1].mapping_table_bytes
        ipu = results["ipu"][1].mapping_table_bytes
        mga = results["mga"][1].mapping_table_bytes
        assert base < ipu < mga

    def test_fig12_isr_scan_budget(self, results):
        """Paper: the ISR search stays under 2.48 ms."""
        r = results["ipu"][1]
        assert r.gc_scans > 0
        assert r.gc_scan_seconds / r.gc_scans < 2.48e-3


class TestWearSweep:
    def test_error_and_latency_grow_with_pe(self, context):
        """Figures 13/14: both metrics increase with device age."""
        errors, latencies = [], []
        for pe in (1000, 4000, 8000):
            result = context.run("ts0", "ipu", pe=pe)
            errors.append(result.read_error_rate)
            latencies.append(result.avg_read_latency_ms)
        assert errors[0] < errors[1] < errors[2]
        assert latencies[0] < latencies[1] < latencies[2]
