"""Block state machine: sequential programming, partial passes, disturb."""

import numpy as np
import pytest

from repro.errors import (
    EraseError,
    PartialProgramLimitError,
    ProgramOrderError,
    SubpageStateError,
)
from repro.nand.block import Block, BlockState, NO_LSN
from repro.nand.cell import CellMode


def make_block(mode=CellMode.SLC, pages=4, spp=4, block_id=0):
    block = Block(block_id, mode, pages, spp)
    block.open_as(level=1, now=0.0)
    return block


class TestLifecycle:
    def test_starts_free(self):
        block = Block(0, CellMode.SLC, 4, 4)
        assert block.state is BlockState.FREE
        assert block.level is None

    def test_open_sets_level(self):
        block = make_block()
        assert block.state is BlockState.OPEN
        assert block.level == 1

    def test_open_twice_rejected(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.open_as(2, 0.0)

    def test_full_after_all_pages(self):
        block = make_block(pages=2)
        block.program(0, [0], [10], 0.0, 4)
        assert block.state is BlockState.OPEN
        block.program(1, [0], [11], 0.0, 4)
        assert block.state is BlockState.FULL
        assert block.is_full

    def test_program_while_free_rejected(self):
        block = Block(0, CellMode.SLC, 4, 4)
        with pytest.raises(SubpageStateError):
            block.program(0, [0], [1], 0.0, 4)


class TestProgramming:
    def test_initial_program_not_partial(self):
        block = make_block()
        assert block.program(0, [0, 1], [10, 11], 0.0, 4) is False

    def test_second_pass_is_partial(self):
        block = make_block()
        block.program(0, [0], [10], 0.0, 4)
        assert block.program(0, [1], [11], 0.0, 4) is True

    def test_out_of_order_rejected(self):
        block = make_block()
        with pytest.raises(ProgramOrderError):
            block.program(2, [0], [10], 0.0, 4)

    def test_slot_reuse_rejected(self):
        block = make_block()
        block.program(0, [0], [10], 0.0, 4)
        with pytest.raises(SubpageStateError):
            block.program(0, [0], [11], 0.0, 4)

    def test_duplicate_slots_rejected(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.program(0, [1, 1], [10, 11], 0.0, 4)

    def test_empty_slots_rejected(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.program(0, [], [], 0.0, 4)

    def test_mismatched_lsns_rejected(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.program(0, [0, 1], [10], 0.0, 4)

    def test_slot_out_of_range(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.program(0, [4], [10], 0.0, 4)

    def test_partial_program_limit(self):
        block = make_block()
        for i in range(4):
            block.program(0, [i], [10 + i], 0.0, 4)
        block2 = make_block(pages=1)
        # program_count == max -> further pass rejected even with free slots
        block2.program(0, [0], [1], 0.0, 2)
        block2.program(0, [1], [2], 0.0, 2)
        with pytest.raises(PartialProgramLimitError):
            block2.program(0, [2], [3], 0.0, 2)

    def test_mlc_partial_program_rejected(self):
        block = make_block(mode=CellMode.MLC)
        block.program(0, [0], [10], 0.0, 4)
        with pytest.raises(SubpageStateError):
            block.program(0, [1], [11], 0.0, 4)

    def test_program_records_lsn_and_time(self):
        block = make_block()
        block.program(0, [2], [42], 7.5, 4)
        assert block.slot_lsn[0, 2] == 42
        assert block.slot_time[0, 2] == 7.5

    def test_counters(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        assert block.n_programmed == 2
        assert block.n_valid == 2
        assert block.n_invalid == 0

    def test_can_partial_program(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        assert block.can_partial_program(0, 2, 4)
        assert not block.can_partial_program(0, 3, 4)
        assert not block.can_partial_program(1, 1, 4)  # unwritten page

    def test_content_epoch_bumps(self):
        block = make_block()
        e0 = block.content_epoch
        block.program(0, [0], [1], 0.0, 4)
        assert block.content_epoch > e0


class TestInvalidate:
    def test_invalidate_moves_counters(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.invalidate(0, 0)
        assert block.n_valid == 0
        assert block.n_invalid == 1

    def test_double_invalidate_rejected(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.invalidate(0, 0)
        with pytest.raises(SubpageStateError):
            block.invalidate(0, 0)

    def test_invalidate_unprogrammed_rejected(self):
        block = make_block()
        with pytest.raises(SubpageStateError):
            block.invalidate(0, 3)

    def test_reclaimable(self):
        block = make_block(pages=1)
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        assert block.reclaimable_subpages == 2
        block.invalidate(0, 0)
        assert block.reclaimable_subpages == 3


class TestDisturb:
    def test_in_page_disturb_hits_valid_neighbors(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        hit = block.add_disturb(0, [2])
        assert hit == 2
        assert block.disturb_in[0][0] == 1
        assert block.disturb_in[0][1] == 1
        assert block.disturb_in[0][2] == 0  # just-written slot spared

    def test_invalid_subpages_still_counted_in_array_not_in_hits(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        block.invalidate(0, 0)
        hit = block.add_disturb(0, [2])
        assert hit == 1  # only the valid one matters
        assert block.disturb_in[0][0] == 1  # array still tracks programmed cells

    def test_neighbor_disturb(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.program(1, [0, 1], [2, 3], 0.0, 4)
        block.program(2, [0], [4], 0.0, 4)
        block.add_disturb(1, [2])
        assert block.disturb_nb[0][0] == 1
        assert block.disturb_nb[2][0] == 1
        assert block.disturb_nb[1][0] == 0  # own page gets in-page, not nb

    def test_neighbor_disturb_edge_pages(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.add_disturb(0, [1])  # page -1 does not exist
        assert sum(map(sum, block.disturb_nb)) == 0

    def test_mlc_disturb_rejected(self):
        block = make_block(mode=CellMode.MLC)
        block.program(0, [0], [1], 0.0, 4)
        with pytest.raises(SubpageStateError):
            block.add_disturb(0, [1])


class TestErase:
    def test_erase_resets_everything(self):
        block = make_block()
        block.program(0, [0, 1], [1, 2], 0.0, 4)
        block.invalidate(0, 0)
        block.invalidate(0, 1)
        block.erase()
        assert block.state is BlockState.FREE
        assert block.erase_count == 1
        assert block.next_page == 0
        assert block.n_programmed == 0
        assert block.n_invalid == 0
        assert not block.programmed.any()
        assert (block.slot_lsn == NO_LSN).all()
        assert block.level is None

    def test_erase_with_valid_rejected(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        with pytest.raises(EraseError):
            block.erase()

    def test_erase_free_block_rejected(self):
        block = Block(0, CellMode.SLC, 4, 4)
        with pytest.raises(EraseError):
            block.erase()

    def test_reuse_after_erase(self):
        block = make_block(pages=1)
        block.program(0, [0], [1], 0.0, 4)
        block.invalidate(0, 0)
        block.erase()
        block.open_as(2, 1.0)
        assert block.program(0, [0], [5], 1.0, 4) is False
        assert block.level == 2


class TestHelpers:
    def test_free_and_valid_slots(self):
        block = make_block()
        block.program(0, [0, 2], [1, 2], 0.0, 4)
        assert block.free_slots_of_page(0) == [1, 3]
        assert block.valid_slots_of_page(0) == [0, 2]
        block.invalidate(0, 0)
        assert block.valid_slots_of_page(0) == [2]

    def test_page_updated_flag(self):
        block = make_block()
        assert not block.page_updated[0]
        block.mark_page_updated(0)
        assert block.page_updated[0]

    def test_touch_refreshes_time(self):
        block = make_block()
        block.program(0, [0], [1], 0.0, 4)
        block.touch(0, [0], 9.0)
        assert block.slot_time[0, 0] == 9.0

    def test_mlc_block_has_no_slc_arrays(self):
        block = Block(0, CellMode.MLC, 4, 4)
        assert block.slot_time is None
        assert block.disturb_in is None
        assert block.page_updated is None
