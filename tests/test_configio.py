"""Config and artifact serialisation."""

import json

import pytest

from repro.config import SSDConfig, scaled_config
from repro.configio import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.errors import ConfigError
from repro.experiments.artifact import Artifact

from conftest import tiny_config


class TestConfigRoundTrip:
    def test_dict_round_trip(self):
        cfg = tiny_config(gc_pages_per_trigger=3)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = scaled_config("smoke", seed=7)
        path = tmp_path / "device.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_defaults_fill_missing_sections(self):
        cfg = config_from_dict({"seed": 3})
        assert cfg == SSDConfig(seed=3)

    def test_partial_section(self):
        cfg = config_from_dict({"timing": {"erase_ms": 5.0}})
        assert cfg.timing.erase_ms == 5.0
        assert cfg.timing.slc_read_ms == 0.025

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"tuning": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"timing": {"warp_factor": 9}})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"cache": {"slc_ratio": 2.0}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict([1, 2])
        with pytest.raises(ConfigError):
            config_from_dict({"timing": 5})

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            load_config(path)

    def test_json_is_pretty_and_stable(self, tmp_path):
        path = tmp_path / "a.json"
        save_config(tiny_config(), path)
        text = path.read_text()
        assert json.loads(text)  # valid
        assert text.endswith("\n")
        save_config(tiny_config(), tmp_path / "b.json")
        assert (tmp_path / "b.json").read_text() == text


class TestArtifactJson:
    def test_to_dict(self):
        art = Artifact(id="x", title="T", rows=[{"a": 1}], notes="n",
                       scale="smoke", chart="ignored")
        d = art.to_dict()
        assert d["id"] == "x"
        assert d["rows"] == [{"a": 1}]
        assert "chart" not in d

    def test_save_json(self, tmp_path):
        art = Artifact(id="x", title="T", rows=[{"a": 1}])
        path = tmp_path / "art.json"
        art.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["rows"] == [{"a": 1}]

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fig2.json"
        assert main(["run", "fig2", "--scale", "smoke", "--seed", "3",
                     "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["id"] == "fig2"
        assert len(data["rows"]) >= 6
