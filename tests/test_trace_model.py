"""Trace container semantics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.model import OpType, Trace, TraceRequest


def make_trace():
    return Trace(
        times_ms=[0.0, 1.0, 2.5],
        is_write=[True, False, True],
        offsets=[0, 4096, 8192],
        sizes=[4096, 8192, 4096],
        name="t",
    )


class TestTrace:
    def test_len(self):
        assert len(make_trace()) == 3

    def test_iteration_yields_requests(self):
        reqs = list(make_trace())
        assert all(isinstance(r, TraceRequest) for r in reqs)
        assert reqs[0].op is OpType.WRITE
        assert reqs[1].op is OpType.READ

    def test_indexing(self):
        req = make_trace()[2]
        assert req.offset == 8192
        assert req.time_ms == 2.5

    def test_counts(self):
        trace = make_trace()
        assert trace.n_writes == 2
        assert trace.n_reads == 1
        assert trace.write_ratio == pytest.approx(2 / 3)

    def test_footprint(self):
        assert make_trace().footprint_bytes == 8192 + 4096

    def test_head(self):
        head = make_trace().head(2)
        assert len(head) == 2
        assert head.name == "t"

    def test_head_negative_rejected(self):
        with pytest.raises(TraceError):
            make_trace().head(-1)

    def test_empty_trace(self):
        trace = Trace([], [], [], [])
        assert len(trace) == 0
        assert trace.write_ratio == 0.0
        assert trace.footprint_bytes == 0


class TestValidation:
    def test_mismatched_columns(self):
        with pytest.raises(TraceError):
            Trace([0.0], [True, False], [0], [1])

    def test_decreasing_times(self):
        with pytest.raises(TraceError):
            Trace([1.0, 0.5], [True, True], [0, 0], [1, 1])

    def test_zero_size(self):
        with pytest.raises(TraceError):
            Trace([0.0], [True], [0], [0])

    def test_negative_offset(self):
        with pytest.raises(TraceError):
            Trace([0.0], [True], [-4096], [4096])


class TestTraceRequest:
    def test_is_write(self):
        req = TraceRequest(0.0, OpType.WRITE, 0, 4096)
        assert req.is_write

    def test_end(self):
        req = TraceRequest(0.0, OpType.READ, 4096, 8192)
        assert req.end == 12288
