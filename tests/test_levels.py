"""Block-level hierarchy (Work/Monitor/Hot)."""

from repro.ftl.levels import SLC_LEVELS, BlockLevel


class TestBlockLevel:
    def test_ascending_order(self):
        assert (BlockLevel.HIGH_DENSITY < BlockLevel.WORK
                < BlockLevel.MONITOR < BlockLevel.HOT)

    def test_is_slc(self):
        assert not BlockLevel.HIGH_DENSITY.is_slc
        for level in SLC_LEVELS:
            assert level.is_slc

    def test_promotion_chain(self):
        assert BlockLevel.HIGH_DENSITY.promoted() is BlockLevel.WORK
        assert BlockLevel.WORK.promoted() is BlockLevel.MONITOR
        assert BlockLevel.MONITOR.promoted() is BlockLevel.HOT

    def test_hot_promotes_to_itself(self):
        assert BlockLevel.HOT.promoted() is BlockLevel.HOT

    def test_demotion_chain(self):
        assert BlockLevel.HOT.demoted() is BlockLevel.MONITOR
        assert BlockLevel.MONITOR.demoted() is BlockLevel.WORK
        assert BlockLevel.WORK.demoted() is BlockLevel.HIGH_DENSITY

    def test_high_density_floor(self):
        assert BlockLevel.HIGH_DENSITY.demoted() is BlockLevel.HIGH_DENSITY

    def test_slc_levels_tuple(self):
        assert SLC_LEVELS == (BlockLevel.WORK, BlockLevel.MONITOR, BlockLevel.HOT)

    def test_int_values_match_algorithm1(self):
        # Algorithm 1: block_flag (0, 1, 2, 3).
        assert [int(l) for l in BlockLevel] == [0, 1, 2, 3]
