"""Differential determinism tests for the device front-end.

Three contracts from ``docs/FRONTEND.md``:

* the :class:`MultiQueueScheduler` dispatch order is a pure function of
  the submission history (round-robin arbitration, FIFO per queue,
  seq-number tie-break, global depth bound);
* a frontend-enabled run is byte-identical across repeated runs and
  across ``--jobs 1`` vs ``--jobs N``, at every queue depth;
* a *disabled* ``FrontendConfig`` is indistinguishable from no frontend
  at all — same results, same cache keys.
"""

import pytest

from repro.errors import SimulationError
from repro.frontend import FrontendConfig, FrontRequest, MultiQueueScheduler
from repro.experiments.runner import RunContext


# -- scheduler unit tests ----------------------------------------------------

def record_issue(log, service_ms=1.0):
    """An issue callback that logs ``(index, issue_ms)`` and prices every
    request at a fixed service time."""
    def issue(request, issue_ms):
        log.append((request.index, issue_ms))
        return issue_ms + service_ms
    return issue


def req(index, arrival_ms=0.0):
    return FrontRequest(index=index, arrival_ms=arrival_ms,
                        lsns=[index], is_write=True)


class TestScheduler:
    def test_round_robin_across_queues_fifo_within(self):
        log = []
        sched = MultiQueueScheduler(3, 1, record_issue(log))
        # Backlog: queue0=[0,1], queue1=[2], queue2=[3,4]; QD=1 so only
        # request 0 dispatches on submit, the rest drain in RR order.
        for index, qid in [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2)]:
            sched.submit(req(index), qid, 0.0)
        sched.drain()
        assert [i for i, _ in log] == [0, 2, 3, 1, 4]

    def test_queue_depth_bounds_inflight(self):
        for qd in (1, 2, 4):
            log = []
            sched = MultiQueueScheduler(2, qd, record_issue(log))
            for index in range(10):
                sched.submit(req(index), index % 2, 0.0)
                assert len(sched._inflight) <= qd
            sched.drain()
            assert sched.max_inflight == min(qd, 10)
            assert len(log) == 10

    def test_completion_frees_slot_for_backlog(self):
        log = []
        sched = MultiQueueScheduler(1, 1, record_issue(log, service_ms=2.0))
        sched.submit(req(0, arrival_ms=0.0), 0, 0.0)
        sched.submit(req(1, arrival_ms=0.5), 0, 0.5)   # queued behind 0
        sched.submit(req(2, arrival_ms=5.0), 0, 5.0)   # slot idle by then
        last = sched.drain()
        # 0 issues at 0.0; 1 waits for the slot (2.0); 2 at its arrival.
        assert log == [(0, 0.0), (1, 2.0), (2, 5.0)]
        assert last == 7.0

    def test_issue_never_precedes_arrival(self):
        log = []
        sched = MultiQueueScheduler(2, 8, record_issue(log))
        sched.submit(req(0, arrival_ms=1.5), 0, 1.5)
        sched.submit(req(1, arrival_ms=2.5), 1, 2.5)
        sched.drain()
        assert all(issue_ms >= arrival
                   for (_, issue_ms), arrival in zip(log, [1.5, 2.5]))

    def test_dispatch_history_is_reproducible(self):
        def run_once():
            log = []
            sched = MultiQueueScheduler(4, 3, record_issue(log, 0.7))
            for index in range(40):
                sched.submit(req(index, arrival_ms=index * 0.3),
                             index % 4, index * 0.3)
            sched.drain()
            return log
        assert run_once() == run_once()

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(SimulationError):
            MultiQueueScheduler(0, 4, lambda r, t: t)
        with pytest.raises(SimulationError):
            MultiQueueScheduler(2, 0, lambda r, t: t)


# -- end-to-end determinism --------------------------------------------------

def frontend_context(qd):
    ctx = RunContext(scale="smoke", seed=1)
    ctx.frontend = FrontendConfig.from_qd(qd)
    return ctx


@pytest.mark.parametrize("qd", [1, 4, 32])
def test_repeated_runs_are_byte_identical(qd):
    first = frontend_context(qd).run("ts0", "ipu").deterministic_dict()
    second = frontend_context(qd).run("ts0", "ipu").deterministic_dict()
    assert first == second
    assert first["frontend_queue_depth"] == qd


def test_parallel_matches_sequential():
    cells = [("ts0", scheme, None) for scheme in ("baseline", "mga", "ipu")]
    seq = frontend_context(4)
    par = frontend_context(4)
    seq.run_cells(cells, jobs=1)
    par.run_cells(cells, jobs=3)
    for trace_name, scheme, pe in cells:
        assert seq.run(trace_name, scheme, pe).deterministic_dict() == \
            par.run(trace_name, scheme, pe).deterministic_dict()


def test_queue_depth_changes_latency_not_conservation():
    shallow = frontend_context(1).run("ts0", "ipu")
    deep = frontend_context(32).run("ts0", "ipu")
    # Dispatch depth may reorder buffer traffic (hit/merge counts can
    # shift), but the conservation laws are depth-invariant: every read
    # subpage is a hit or a miss, every write subpage merges or flushes.
    assert shallow.cache_read_hits + shallow.cache_read_misses == \
        deep.cache_read_hits + deep.cache_read_misses
    assert shallow.merged_writes + shallow.flushed_subpages == \
        deep.merged_writes + deep.flushed_subpages
    # The dispatch backpressure shows up in the tail.
    assert shallow.lat_p99_ms != deep.lat_p99_ms


def test_disabled_frontend_is_the_direct_path():
    plain = RunContext(scale="smoke", seed=1)
    disabled = RunContext(scale="smoke", seed=1)
    disabled.frontend = FrontendConfig()     # enabled=False
    plain_result = plain.run("ts0", "ipu")
    disabled_result = disabled.run("ts0", "ipu")
    assert plain_result.deterministic_dict() == \
        disabled_result.deterministic_dict()
    # Frontend counters stay zero on the direct path.
    assert plain_result.cache_read_hits == 0
    assert plain_result.frontend_queue_depth == 0
    assert plain_result.lat_p99_ms == 0.0


def test_disabled_frontend_shares_cache_keys():
    plain = RunContext(scale="smoke", seed=1)
    disabled = RunContext(scale="smoke", seed=1)
    disabled.frontend = FrontendConfig()
    enabled = RunContext(scale="smoke", seed=1)
    enabled.frontend = FrontendConfig.from_qd(4)
    assert plain.cell_key("ts0", "ipu") == disabled.cell_key("ts0", "ipu")
    assert plain.cell_key("ts0", "ipu") != enabled.cell_key("ts0", "ipu")
    # Different QDs are different experiments — different keys.
    deeper = RunContext(scale="smoke", seed=1)
    deeper.frontend = FrontendConfig.from_qd(8)
    assert enabled.cell_key("ts0", "ipu") != deeper.cell_key("ts0", "ipu")
