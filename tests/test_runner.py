"""Experiment runner: sizing, pacing, memoisation details."""

import pytest

from repro.config import SCALES
from repro.experiments.runner import (
    CACHE_OVER_HOTSET,
    MLC_OVER_FOOTPRINT,
    RunContext,
    estimate_interarrival_ms,
)
from repro.traces.profiles import PROFILES, profile
from repro.traces.synth import SyntheticTraceGenerator


class TestPacing:
    def test_write_heavy_paced_slower(self):
        ctx = RunContext(scale="smoke")
        cfg = ctx.config()
        ts0 = estimate_interarrival_ms(profile("ts0"), cfg)
        ads = estimate_interarrival_ms(profile("ads"), cfg)
        assert ts0 > ads  # writes cost more chip time than reads

    def test_more_chips_means_faster_pacing(self):
        smoke = RunContext(scale="smoke").config()
        medium = RunContext(scale="medium").config()
        p = profile("ts0")
        assert (estimate_interarrival_ms(p, medium)
                < estimate_interarrival_ms(p, smoke))

    def test_utilization_knob(self):
        cfg = RunContext(scale="smoke").config()
        p = profile("ts0")
        light = estimate_interarrival_ms(p, cfg, utilization=0.1)
        heavy = estimate_interarrival_ms(p, cfg, utilization=0.5)
        assert light > heavy

    def test_floor(self):
        cfg = RunContext(scale="medium").config()
        assert estimate_interarrival_ms(profile("ads"), cfg,
                                        utilization=1e9) == 0.02


class TestDeviceSizing:
    def test_cache_tracks_hot_set(self):
        ctx = RunContext(scale="smoke", seed=1)
        cfg = ctx.trace_config("ts0")
        gen = SyntheticTraceGenerator(
            profile("ts0"), n_requests=min(6000, ctx.trace_requests("ts0")),
            seed=1)
        gen.generate()
        scale_f = ctx.trace_requests("ts0") / min(6000, ctx.trace_requests("ts0"))
        hotset = float(gen.extents.sizes[gen.extents.is_hot].sum()) * scale_f
        # Cache within a factor of ~2 of the target ratio (rounding to
        # whole blocks per plane).
        assert cfg.slc_capacity_bytes >= CACHE_OVER_HOTSET * hotset * 0.5

    def test_mlc_exceeds_page_footprint(self):
        ctx = RunContext(scale="smoke", seed=1)
        for name in ("ts0", "ads"):
            cfg = ctx.trace_config(name)
            gen = SyntheticTraceGenerator(
                profile(name),
                n_requests=min(6000, ctx.trace_requests(name)), seed=1)
            gen.generate()
            scale_f = (ctx.trace_requests(name)
                       / min(6000, ctx.trace_requests(name)))
            footprint = gen.extents.page_footprint_bytes() * scale_f
            assert cfg.mlc_capacity_bytes >= footprint

    def test_config_memoised(self):
        ctx = RunContext(scale="smoke", seed=1)
        assert ctx.trace_config("ts0") is ctx.trace_config("ts0")

    def test_pe_override_changes_reliability_only(self):
        ctx = RunContext(scale="smoke", seed=1)
        base = ctx.trace_config("ts0")
        aged = ctx.trace_config("ts0", pe=8000)
        assert aged.reliability.initial_pe_cycles == 8000
        assert aged.geometry == base.geometry

    def test_blocks_divisible_by_planes(self):
        ctx = RunContext(scale="smoke", seed=1)
        for name in PROFILES:
            cfg = ctx.trace_config(name)
            assert cfg.geometry.total_blocks % cfg.geometry.planes == 0


class TestTraceRequests:
    def test_respects_scale_target(self):
        ctx = RunContext(scale="smoke", seed=1)
        assert ctx.trace_requests("ts0") == SCALES["smoke"].target_requests

    def test_length_factor(self):
        full = RunContext(scale="smoke", seed=1)
        short = RunContext(scale="smoke", seed=1, length_factor=0.5)
        assert short.trace_requests("ts0") == full.trace_requests("ts0") // 2

    def test_paper_scale_uses_published_counts(self):
        ctx = RunContext(scale="paper", seed=1)
        assert ctx.trace_requests("wdev0") == profile("wdev0").n_requests

    def test_trace_memoised(self):
        ctx = RunContext(scale="smoke", seed=1)
        assert ctx.trace("ads") is ctx.trace("ads")

    def test_seeds_isolate_contexts(self):
        a = RunContext(scale="smoke", seed=1).trace("ts0")
        b = RunContext(scale="smoke", seed=2).trace("ts0")
        import numpy as np
        assert not np.array_equal(a.offsets, b.offsets)
