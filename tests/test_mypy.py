"""Gate: the incremental-strict mypy config in pyproject.toml is clean.

mypy is a CI-only dependency (the ``lint`` job installs it); when it is
absent locally this test skips rather than fail.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_mypy_clean_on_typed_modules():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, (
        f"mypy found type errors:\n{proc.stdout}\n{proc.stderr}")
