"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table1" in out

    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "ts0" in out
        assert "82.4%" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Erase time" in out

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2", "--scale", "smoke", "--seed", "3"]) == 0
        assert "2.800e-04" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--trace", "ts0", "--scheme", "ipu",
                     "--scale", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg_latency_ms" in out

    def test_simulate_closed_loop(self, capsys):
        assert main(["simulate", "--trace", "ts0", "--scheme", "mga",
                     "--scale", "smoke", "--seed", "3", "--qd", "8"]) == 0
        out = capsys.readouterr().out
        assert "KIOPS" in out
        assert "closed loop" in out

    def test_simulate_delta_scheme(self, capsys):
        assert main(["simulate", "--trace", "ads", "--scheme", "delta",
                     "--scale", "smoke", "--seed", "3"]) == 0
        assert "delta" in capsys.readouterr().out


class TestBench:
    """The hot-path throughput harness (one tiny cell keeps it fast)."""

    CELL = ["bench", "--traces", "lun2", "--schemes", "baseline",
            "--repeats", "1", "--scale", "smoke"]

    def test_bench_reports_cells(self, capsys):
        assert main(self.CELL) == 0
        out = capsys.readouterr().out
        assert "lun2" in out
        assert "ops/sec" in out
        assert "(aggregate)" in out

    def test_bench_profile(self, capsys):
        assert main(self.CELL + ["--profile", "5"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: lun2/baseline" in out
        assert "tottime" in out

    def test_bench_update_then_check(self, tmp_path, capsys):
        baseline = tmp_path / "bench.json"
        assert main(self.CELL + ["--update", "--baseline", str(baseline)]) == 0
        assert baseline.is_file()
        assert main(self.CELL + ["--check", "--baseline", str(baseline)]) == 0
        assert "within 30%" in capsys.readouterr().out

    def test_bench_check_detects_regression(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "bench.json"
        assert main(self.CELL + ["--update", "--baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        for cell in payload["cells"]:  # pretend the past was 100x faster
            cell["ops_per_sec"] *= 100.0
        baseline.write_text(json.dumps(payload))
        assert main(self.CELL + ["--check", "--baseline", str(baseline)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_bench_check_missing_baseline(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(self.CELL + ["--check", "--baseline", str(missing)]) == 1
        assert "not found" in capsys.readouterr().out

    def test_bench_check_detects_aggregate_regression(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "bench.json"
        assert main(self.CELL + ["--update", "--baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        # Cells stay honest; only the recorded aggregate was faster — a
        # broad small slowdown shows up exactly like this.
        payload["aggregate"]["ops_per_sec"] *= 100.0
        baseline.write_text(json.dumps(payload))
        assert main(self.CELL + ["--check", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out and "aggregate" in out

    def test_bench_payload_environment_and_frontend_cells(self):
        import platform

        from repro.bench import run_bench

        payload = run_bench(scale="smoke", seed=1, traces=("lun2",),
                            schemes=("ipu",), repeats=1)
        env = payload["environment"]
        assert env["python"] == platform.python_version()
        assert set(env) >= {"python", "numpy", "platform", "machine"}
        schemes = [c["scheme"] for c in payload["cells"]]
        assert schemes == ["ipu", "ipu+frontend"]
        # The aggregate covers direct cells only, so its trajectory is
        # comparable with pre-frontend baselines.
        direct = next(c for c in payload["cells"] if c["scheme"] == "ipu")
        assert payload["aggregate"]["n_requests"] == direct["n_requests"]
