"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table1" in out

    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "ts0" in out
        assert "82.4%" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Erase time" in out

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2", "--scale", "smoke", "--seed", "3"]) == 0
        assert "2.800e-04" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--trace", "ts0", "--scheme", "ipu",
                     "--scale", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg_latency_ms" in out

    def test_simulate_closed_loop(self, capsys):
        assert main(["simulate", "--trace", "ts0", "--scheme", "mga",
                     "--scale", "smoke", "--seed", "3", "--qd", "8"]) == 0
        out = capsys.readouterr().out
        assert "KIOPS" in out
        assert "closed loop" in out

    def test_simulate_delta_scheme(self, capsys):
        assert main(["simulate", "--trace", "ads", "--scheme", "delta",
                     "--scale", "smoke", "--seed", "3"]) == 0
        assert "delta" in capsys.readouterr().out
