"""Terminal chart rendering."""

import pytest

from repro.metrics.charts import (
    bar_chart,
    distribution_chart,
    grouped_bar_chart,
    line_chart,
)


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart({"a": 4.0, "b": 2.0}, width=8)
        lines = text.splitlines()
        assert lines[0].count("█") == 8
        assert lines[1].count("█") == 4

    def test_labels_aligned(self):
        text = bar_chart({"short": 1.0, "longer-label": 2.0})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        assert "2.8e-04" in bar_chart({"x": 2.8e-4}).replace("2.80e-04", "2.8e-04")

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").startswith("T\n")

    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_fractional_glyphs(self):
        text = bar_chart({"a": 8.0, "b": 1.0}, width=4)
        # b = 1/8 of max = 0.5 cells -> one half-block glyph.
        assert any(g in text for g in "▏▎▍▌▋▊▉")


class TestGroupedBarChart:
    def test_shared_scale(self):
        text = grouped_bar_chart(
            {"t1": {"a": 10.0}, "t2": {"a": 5.0}}, width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_group_headers(self):
        text = grouped_bar_chart({"ts0": {"ipu": 1.0}})
        assert "ts0" in text.splitlines()[0]

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart({})


class TestLineChart:
    def test_markers_present(self):
        text = line_chart({"abc": [1, 2, 3], "xyz": [3, 2, 1]})
        assert "a" in text
        assert "x" in text
        assert "a=abc" in text

    def test_marker_collision_resolved(self):
        text = line_chart({"aa": [1, 2], "ab": [2, 1]})
        assert "a=aa" in text
        assert "b=ab" in text

    def test_crossing_series_overlap_star(self):
        text = line_chart({"up": [0, 10], "dn": [10, 0]}, width=21, height=5)
        assert "*" not in text or text.count("*") <= 2

    def test_axis_labels(self):
        text = line_chart({"s": [1, 2]}, x_labels=[1000, 8000])
        assert "1000" in text
        assert "8000" in text

    def test_log_scale_spans_decades(self):
        text = line_chart({"r": [1e-5, 1e-3]}, log_y=True)
        assert "1.00e-05" in text
        assert "1.00e-03" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})

    def test_flat_series(self):
        text = line_chart({"f": [5.0, 5.0, 5.0]})
        assert "f" in text

    def test_empty(self):
        assert "(no data)" in line_chart({})


class TestDistributionChart:
    def test_bands_fill_row(self):
        text = distribution_chart(
            {"ipu": {"<0.1ms": 0.5, ">=0.1ms": 0.5}}, width=10)
        row = text.splitlines()[0]
        assert row.count("░") == 5
        assert row.count("▒") == 5

    def test_legend(self):
        text = distribution_chart({"x": {"fast": 1.0}})
        assert "░=fast" in text

    def test_empty(self):
        assert "(no data)" in distribution_chart({})
