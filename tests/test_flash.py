"""FlashArray facade: regions, operations, counters, RBER queries."""

import numpy as np
import pytest

from repro.errors import FlashError
from repro.nand import CellMode, FlashArray
from repro.nand.block import BlockState

from conftest import tiny_config


@pytest.fixture
def flash():
    return FlashArray(tiny_config())


def open_slc(flash, idx=0, level=1):
    block = flash.block(flash.slc_block_ids[idx])
    block.open_as(level, 0.0)
    return block


class TestRegions:
    def test_partition_complete(self, flash):
        total = flash.geometry.total_blocks
        assert len(flash.slc_block_ids) + len(flash.mlc_block_ids) == total

    def test_partition_disjoint(self, flash):
        assert not set(flash.slc_block_ids) & set(flash.mlc_block_ids)

    def test_slc_striped_over_planes(self, flash):
        planes = {flash.geometry.plane_of(b) for b in flash.slc_block_ids}
        assert planes == set(range(flash.geometry.planes))

    def test_modes_match_regions(self, flash):
        for b in flash.slc_block_ids:
            assert flash.block(b).mode is CellMode.SLC
        for b in flash.mlc_block_ids:
            assert flash.block(b).mode is CellMode.MLC

    def test_mlc_blocks_have_more_pages(self, flash):
        slc = flash.block(flash.slc_block_ids[0])
        mlc = flash.block(flash.mlc_block_ids[0])
        assert mlc.pages == 2 * slc.pages

    def test_region_blocks_helper(self, flash):
        assert len(flash.region_blocks(True)) == len(flash.slc_block_ids)

    def test_all_slc_rejected(self):
        cfg = tiny_config()
        import dataclasses
        bad = dataclasses.replace(
            cfg, cache=dataclasses.replace(cfg.cache, slc_ratio=0.99))
        with pytest.raises(Exception):
            FlashArray(bad)


class TestOperations:
    def test_program_counters(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        assert flash.programs_slc == 1
        assert flash.programs_mlc == 0

    def test_partial_program_counted(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        result = flash.program(block.block_id, 0, [1], [2], 0.0)
        assert result.partial
        assert result.disturbed_valid == 1
        assert flash.partial_programs == 1
        assert flash.disturbed_valid_subpages == 1

    def test_read_requires_programmed(self, flash):
        block = open_slc(flash)
        with pytest.raises(FlashError):
            flash.read(block.block_id, 0, [0], 0.0)

    def test_read_returns_rbers(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0, 1], [1, 2], 0.0)
        rbers = flash.read(block.block_id, 0, [0, 1], 1.0)
        assert rbers.shape == (2,)
        assert (rbers > 0).all()

    def test_read_touches_access_time(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        flash.read(block.block_id, 0, [0], 5.0)
        assert block.slot_time[0, 0] == 5.0

    def test_erase_counters_by_region(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        flash.invalidate(block.block_id, 0, 0)
        assert flash.erase(block.block_id) == 1
        assert flash.erases_slc == 1
        assert flash.erases_mlc == 0

    def test_effective_pe_includes_initial(self, flash):
        block_id = flash.slc_block_ids[0]
        initial = flash.config.reliability.initial_pe_cycles
        assert flash.effective_pe(block_id) == initial
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        flash.invalidate(block.block_id, 0, 0)
        flash.erase(block.block_id)
        assert flash.effective_pe(block_id) == initial + 1


class TestRberQueries:
    def test_disturbed_subpage_has_higher_rber(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        before = flash.subpage_rbers(block.block_id, 0, [0])[0]
        flash.program(block.block_id, 0, [1], [2], 0.0)  # partial pass
        after = flash.subpage_rbers(block.block_id, 0, [0])[0]
        assert after > before

    def test_mlc_rber_at_least_slc(self, flash):
        slc = open_slc(flash)
        mlc = flash.block(flash.mlc_block_ids[0])
        mlc.open_as(0, 0.0)
        flash.program(slc.block_id, 0, [0], [1], 0.0)
        flash.program(mlc.block_id, 0, [0], [2], 0.0)
        r_slc = flash.subpage_rbers(slc.block_id, 0, [0])[0]
        r_mlc = flash.subpage_rbers(mlc.block_id, 0, [0])[0]
        assert r_mlc >= r_slc

    def test_rber_grows_with_wear(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        fresh = flash.subpage_rbers(block.block_id, 0, [0])[0]
        flash.invalidate(block.block_id, 0, 0)
        flash.erase(block.block_id)
        block.open_as(1, 0.0)
        flash.program(block.block_id, 0, [0], [1], 0.0)
        worn = flash.subpage_rbers(block.block_id, 0, [0])[0]
        assert worn > fresh


class TestSummary:
    def test_region_summary_keys(self, flash):
        summary = flash.region_summary(True)
        assert summary["blocks"] == len(flash.slc_block_ids)
        assert summary["free_blocks"] == len(flash.slc_block_ids)
        assert summary["valid_subpages"] == 0

    def test_summary_tracks_state(self, flash):
        block = open_slc(flash)
        flash.program(block.block_id, 0, [0, 1], [1, 2], 0.0)
        flash.invalidate(block.block_id, 0, 0)
        summary = flash.region_summary(True)
        assert summary["valid_subpages"] == 1
        assert summary["invalid_subpages"] == 1
        assert summary["programmed_subpages"] == 2
        assert summary["free_blocks"] == len(flash.slc_block_ids) - 1
