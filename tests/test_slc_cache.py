"""SLC cache view."""

import pytest

from repro import IPUFTL
from repro.ftl.levels import BlockLevel
from repro.slc_cache import SlcCacheView

from conftest import tiny_config


@pytest.fixture
def ftl():
    return IPUFTL(tiny_config())


class TestView:
    def test_empty_cache(self, ftl):
        view = SlcCacheView(ftl)
        stats = view.level_stats()
        assert all(s.blocks == 0 for s in stats.values())
        assert view.free_fraction == 1.0
        assert not view.under_pressure

    def test_tracks_writes(self, ftl):
        ftl.handle_write([0, 1], 0.0)
        view = SlcCacheView(ftl)
        work = view.level_stats()[BlockLevel.WORK]
        assert work.blocks == 1
        assert work.valid_subpages == 2
        assert work.valid_bytes == 8192

    def test_tracks_updates(self, ftl):
        ftl.handle_write([0], 0.0)
        ftl.handle_write([0], 1.0)
        view = SlcCacheView(ftl)
        work = view.level_stats()[BlockLevel.WORK]
        assert work.invalid_subpages == 1
        assert work.updated_pages == 1

    def test_promotion_visible(self, ftl):
        for t in range(5):
            ftl.handle_write([0], float(t))
        view = SlcCacheView(ftl)
        stats = view.level_stats()
        assert stats[BlockLevel.MONITOR].blocks >= 1

    def test_utilization_bounds(self, ftl):
        for i in range(30):
            ftl.handle_write([i * 4], float(i))
        for stats in SlcCacheView(ftl).level_stats().values():
            assert 0.0 <= stats.utilization <= 1.0

    def test_summary_rows(self, ftl):
        ftl.handle_write([0], 0.0)
        rows = SlcCacheView(ftl).summary_rows()
        assert rows[-1]["level"] == "(free)"
        assert len(rows) == 4

    def test_pressure_flag(self, ftl):
        lsn, t = 0, 0.0
        while not SlcCacheView(ftl).under_pressure and t < 3000:
            ftl.handle_write([lsn], t)
            lsn += 4
            t += 1.0
        assert SlcCacheView(ftl).under_pressure
