"""FTL invariant layer: conservation properties every scheme must hold.

Complements ``test_properties.py`` (which checks dict-like lookup
semantics) with the *accounting* invariants the experiment harness relies
on when it replays cells in parallel worker processes:

1. **Mapping bijection** — after any request completes, every live LPN
   maps to exactly one valid physical subpage, and every valid subpage is
   claimed by exactly one live LPN (no leaked or doubly-claimed slots).
2. **Subpage partition** — per block, valid + invalid + free subpage
   counts always equal the geometry's ``pages x subpages_per_page``, and
   the block's incremental counters agree with its occupancy bitmaps.
3. **GC conservation** — garbage collection relocates data; it never
   decreases the number of live valid subpages.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SCHEMES

from conftest import tiny_config

#: Logical space small enough that random workloads revisit addresses and
#: force updates, promotions, eviction and GC on the tiny device.
LSN_SPACE = 48

op = st.tuples(
    st.sampled_from(["w", "r"]),
    st.integers(min_value=0, max_value=LSN_SPACE - 1),
    st.integers(min_value=1, max_value=4),
)
workload = st.lists(op, min_size=1, max_size=120)

SCHEME_NAMES = ("baseline", "mga", "ipu")


def replay(scheme: str, ops):
    """Drive one FTL through a raw op sequence; returns the FTL."""
    ftl = SCHEMES[scheme](tiny_config())
    now = 0.0
    for kind, lsn, n in ops:
        lsns = [(lsn + i) % LSN_SPACE for i in range(n)]
        if kind == "w":
            ftl.handle_write(lsns, now)
        else:
            ftl.handle_read(lsns, now)
        now += 0.25
    return ftl


def valid_positions(ftl) -> set:
    """Every ``(block, page, slot)`` currently holding valid data."""
    positions = set()
    for block in ftl.flash.blocks:
        for page, slot in zip(*np.nonzero(block.valid)):
            positions.add((block.block_id, int(page), int(slot)))
    return positions


def assert_mapping_bijection(ftl) -> None:
    """Live LPNs <-> valid subpages is one-to-one and onto."""
    bound = {}
    for lsn, ppa in ftl.iter_bindings():
        pos = (ppa.block, ppa.page, ppa.slot)
        assert pos not in bound, (
            f"{ftl.scheme_name}: LSNs {bound[pos]} and {lsn} both map to {pos}")
        bound[pos] = lsn
    ftl.check_consistency()
    leaked = valid_positions(ftl) - set(bound)
    assert not leaked, (
        f"{ftl.scheme_name}: valid subpages not claimed by any LSN: "
        f"{sorted(leaked)[:5]}")


def assert_block_accounting(ftl) -> None:
    """valid + invalid + free == geometry total, per block."""
    for block in ftl.flash.blocks:
        total = block.pages * block.spp
        valid = int(block.valid.sum())
        programmed = int(block.programmed.sum())
        invalid = int((block.programmed & ~block.valid).sum())
        free = total - programmed
        assert valid + invalid + free == total
        # Valid data only lives in programmed slots.
        assert not (block.valid & ~block.programmed).any(), (
            f"block {block.block_id}: valid slot never programmed")
        # Incremental counters track the bitmaps exactly.
        assert block.n_valid == valid
        assert block.n_invalid == invalid
        assert block.n_programmed == programmed


class TestAfterWorkloads:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=workload)
    def test_bijection_and_accounting(self, scheme, ops):
        ftl = replay(scheme, ops)
        assert_mapping_bijection(ftl)
        assert_block_accounting(ftl)

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_trace_replay_holds_invariants(self, scheme, short_trace):
        """The invariants also hold after a full simulator-driven replay
        (GC, wear levelling and eviction all exercised)."""
        from repro.sim import Simulator

        ftl = SCHEMES[scheme](tiny_config())
        Simulator(ftl).run(short_trace)
        assert_mapping_bijection(ftl)
        assert_block_accounting(ftl)


class TestGcConservation:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=workload)
    def test_gc_never_loses_valid_subpages(self, scheme, ops):
        """Draining all pending GC moves data but never drops it."""
        ftl = replay(scheme, ops)
        live_before = dict(ftl.iter_bindings())
        valid_before = len(valid_positions(ftl))
        ftl.idle_collect(now=1e9)
        live_after = dict(ftl.iter_bindings())
        assert set(live_after) == set(live_before), (
            f"{ftl.scheme_name}: GC changed the live LPN set")
        assert len(valid_positions(ftl)) == valid_before, (
            f"{ftl.scheme_name}: GC changed the valid subpage count")
        assert_mapping_bijection(ftl)
        assert_block_accounting(ftl)

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_emergency_collect_conserves(self, scheme):
        """A forced full collection of both regions conserves live data."""
        ftl = SCHEMES[scheme](tiny_config())
        now = 0.0
        for i in range(0, LSN_SPACE, 4):
            ftl.handle_write([i, i + 1, i + 2, i + 3], now)
            now += 0.25
        # Rewrite a hot half to create invalid slots worth collecting.
        for i in range(0, LSN_SPACE // 2, 2):
            ftl.handle_write([i, i + 1], now)
            now += 0.25
        valid_before = len(valid_positions(ftl))
        ftl.slc_gc.collect_emergency(now)
        ftl.mlc_gc.collect_emergency(now + 1.0)
        assert len(valid_positions(ftl)) == valid_before
        assert_mapping_bijection(ftl)
        assert_block_accounting(ftl)
