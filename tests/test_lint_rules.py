"""Fixture-driven tests for the repro-ssd lint rules.

One good/bad snippet pair per rule, written into a throwaway tree and
linted with the real engine, so every rule's detection logic and its
allowlists/exemptions are pinned by example.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.core import PARSE_ERROR_RULE


def lint_snippet(tmp_path: Path, relpath: str, code: str,
                 select: "list[str] | None" = None):
    """Write ``code`` at ``relpath`` under a scratch tree and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    result = run_lint(tmp_path, select=select)
    return [v.rule for v in result.violations], result


# --------------------------------------------------------------------------
# D001 — randomness


def test_d001_flags_random_import(tmp_path):
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        import random

        def pick():
            return random.random()
        """)
    assert rules.count("D001") >= 2  # the import and the call chain


@pytest.mark.parametrize("stmt", [
    "from random import shuffle",
    "import uuid",
    "from os import urandom",
    "from numpy import random",
    "from numpy.random import default_rng",
])
def test_d001_flags_random_source_imports(tmp_path, stmt):
    rules, _ = lint_snippet(tmp_path, "core/mod.py", f"{stmt}\n")
    assert "D001" in rules


def test_d001_flags_unseeded_default_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        import numpy as np

        def roll():
            return np.random.default_rng().integers(10)
        """)
    assert "D001" in rules


def test_d001_good_path_uses_make_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        from repro.rng import make_rng

        def roll(seed):
            return make_rng(seed, key="roll").integers(10)
        """)
    assert "D001" not in rules


def test_d001_flags_fault_injector_direct_randomness(tmp_path):
    """Fault injectors are not exempt: sampling outside the dedicated
    ``faults`` stream would break the rate-0 bit-identity contract."""
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        import numpy as np

        def program_fails(rate):
            return np.random.default_rng().random() < rate
        """)
    assert "D001" in rules


def test_d001_flags_fault_injector_stdlib_random(tmp_path):
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        import random

        def erase_fails(rate):
            return random.random() < rate
        """)
    assert rules.count("D001") >= 2  # the import and the call chain


def test_d001_good_fault_injector_uses_faults_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        from repro.rng import faults_rng

        def program_fails(seed, rate):
            return faults_rng(seed, "program").random() < rate
        """)
    assert "D001" not in rules


def test_d001_allows_rng_module_itself(tmp_path):
    rules, _ = lint_snippet(tmp_path, "rng.py", """
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
        """)
    assert "D001" not in rules


def test_d001_flags_seeded_generator_construction(tmp_path):
    """An explicit seed does not excuse the construction: the stream
    still bypasses the make_rng key-derivation scheme."""
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        import numpy as np

        def streams(seed):
            return np.random.Generator(np.random.PCG64(seed))
        """)
    assert "D001" in rules


def test_d001_flags_generator_under_numpy_alias(tmp_path):
    """``import numpy as anything`` is tracked, not just ``np``."""
    rules, _ = lint_snippet(tmp_path, "core/model.py", """
        import numpy as xp

        def roll(seed):
            return xp.random.default_rng(seed).integers(10)
        """)
    assert "D001" in rules


def test_d001_flags_imported_constructor_call(tmp_path):
    """Both the from-import and the aliased construction are findings."""
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        from numpy.random import default_rng as mk

        def roll(seed):
            return mk(seed).integers(10)
        """)
    assert rules.count("D001") >= 2  # the import and the construction


def test_d001_flags_legacy_randomstate(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/noise.py", """
        import numpy as np

        def legacy(seed):
            return np.random.RandomState(seed)
        """)
    assert "D001" in rules


def test_d001_good_numpy_array_use_not_flagged(tmp_path):
    """Plain numpy (non-random) use under an alias stays clean."""
    rules, _ = lint_snippet(tmp_path, "nand/state.py", """
        import numpy as xp

        def zeros(n):
            return xp.zeros(n, dtype=xp.int64)
        """)
    assert "D001" not in rules


def test_d001_rng_module_may_construct_generators(tmp_path):
    rules, _ = lint_snippet(tmp_path, "rng.py", """
        from numpy.random import PCG64, Generator

        def make_rng(seed):
            return Generator(PCG64(seed))
        """)
    assert "D001" not in rules


# --------------------------------------------------------------------------
# D002 — wall clock


def test_d002_flags_wall_clock_outside_allowlist(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        import time

        def scan():
            return time.perf_counter()
        """)
    assert "D002" in rules


def test_d002_flags_from_time_import(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/report.py",
                            "from time import perf_counter\n")
    assert "D002" in rules


def test_d002_flags_datetime_now(tmp_path):
    rules, _ = lint_snippet(tmp_path, "experiments/runner.py", """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """)
    assert "D002" in rules


@pytest.mark.parametrize("relpath", [
    "bench.py", "sim/simulator.py", "ftl/victim.py",
])
def test_d002_allowlisted_diagnostic_modules(tmp_path, relpath):
    rules, _ = lint_snippet(tmp_path, relpath, """
        import time

        def wall():
            return time.perf_counter()
        """)
    assert "D002" not in rules


def test_d002_good_path_uses_modelled_time(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        def cost_ms(timing, pages):
            return timing.erase_ms + pages * timing.slc_read_ms
        """)
    assert "D002" not in rules


# --------------------------------------------------------------------------
# D003 — set iteration order


def test_d003_flags_for_over_set_call(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            out = []
            for i in set(ids):
                out.append(i)
            return out
        """)
    assert "D003" in rules


def test_d003_flags_annotated_set_attribute(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        class Index:
            def __init__(self):
                self.dirty: set[int] = set()

            def flush(self):
                for bid in self.dirty:
                    yield bid
        """)
    assert "D003" in rules


def test_d003_flags_list_of_set(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/x.py", """
        def order(ids):
            pending = {i for i in ids}
            return list(pending)
        """)
    assert "D003" in rules


def test_d003_good_sorted_iteration(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        class Index:
            def __init__(self):
                self.dirty: set[int] = set()

            def flush(self):
                for bid in sorted(self.dirty):
                    yield bid

        def order(ids):
            return sorted(set(ids))

        def member(ids, x):
            return x in set(ids)
        """)
    assert "D003" not in rules


def test_d003_only_applies_to_simulation_state_dirs(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/x.py", """
        def drain(ids):
            for i in set(ids):
                yield i
        """)
    assert "D003" not in rules


# --------------------------------------------------------------------------
# S002 — Block counter writes


def test_s002_flags_counter_assignment(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def hack(block, page):
            block.page_valid[page] = 0
        """)
    assert "S002" in rules


def test_s002_flags_augmented_assignment(tmp_path):
    rules, _ = lint_snippet(tmp_path, "core/x.py", """
        def hack(block):
            block.n_valid += 1
        """)
    assert "S002" in rules


def test_s002_flags_mutator_call(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/x.py", """
        def hack(block, page):
            block.disturb_in[page].append(1)
        """)
    assert "S002" in rules


def test_s002_allows_block_module_and_reads(tmp_path):
    good = """
        def owner_mutation(self, page, n):
            self.page_valid[page] += n

        def reader(block, page):
            return block.page_valid[page] == 0
        """
    rules, _ = lint_snippet(tmp_path, "nand/block.py", good)
    assert "S002" not in rules
    rules, _ = lint_snippet(tmp_path, "ftl/read_only.py", """
        def reader(block, page):
            return block.page_valid[page] + block.n_valid
        """)
    assert "S002" not in rules


# --------------------------------------------------------------------------
# C001 — magic literals


def test_c001_flags_magic_size(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/x.py", """
        def codewords(code):
            return code.codewords_for(4096)
        """)
    assert "C001" in rules


def test_c001_flags_magic_latency(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/x.py", """
        def latency(n):
            return n * 0.3
        """)
    assert "C001" in rules


def test_c001_exempts_declared_defaults(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/x.py", """
        from dataclasses import dataclass

        SECTOR_BYTES = 512

        @dataclass
        class Code:
            payload_bytes: int = 512

        def f(size=4096):
            return size
        """)
    assert "C001" not in rules


def test_c001_only_applies_to_modelled_dirs(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/x.py", """
        def f():
            return 4096
        """)
    assert "C001" not in rules


# --------------------------------------------------------------------------
# engine behaviour


def test_suppression_comment_on_line(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            for i in set(ids):  # repro-lint: disable=D003
                yield i
        """)
    assert "D003" not in rules


def test_suppression_is_rule_specific(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            for i in set(ids):  # repro-lint: disable=C001
                yield i
        """)
    assert "D003" in rules


def test_file_level_suppression(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        # repro-lint: disable-file=D003
        def drain(ids):
            for i in set(ids):
                yield i

        def more(ids):
            return list(set(ids))
        """)
    assert "D003" not in rules


def test_parse_error_is_reported_not_raised(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", "def broken(:\n")
    assert rules == [PARSE_ERROR_RULE]


def test_select_restricts_rules(tmp_path):
    rules, result = lint_snippet(tmp_path, "ftl/x.py", """
        import random

        def drain(ids):
            for i in set(ids):
                yield i
        """, select=["D003"])
    assert set(rules) == {"D003"}
    assert result.rules_run == ["D003"]


def test_select_unknown_rule_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(tmp_path, select=["Z999"])


def test_violations_carry_stable_fingerprints(tmp_path):
    code = """
        def drain(ids):
            for i in set(ids):
                yield i
        """
    _, first = lint_snippet(tmp_path, "ftl/x.py", code)
    # Shift the offending line down; the fingerprint must not move.
    shifted = "# a new leading comment\n" + textwrap.dedent(code)
    (tmp_path / "ftl/x.py").write_text(shifted, encoding="utf-8")
    second = run_lint(tmp_path)
    assert [v.fingerprint for v in first.violations] == \
        [v.fingerprint for v in second.violations]
    assert first.violations[0].line != second.violations[0].line


# --------------------------------------------------------------------------
# U001 — mixed-unit arithmetic


def test_u001_flags_ms_plus_bytes(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def cost(delay_ms, size_bytes):
            return delay_ms + size_bytes
        """, select=["U"])
    assert "U001" in rules


def test_u001_flags_ms_compared_to_bytes(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def throttle(delay_ms, size_bytes):
            return delay_ms > size_bytes
        """, select=["U"])
    assert "U001" in rules


def test_u001_flags_ms_times_ms(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def wrong(read_ms, write_ms):
            return read_ms * write_ms
        """, select=["U"])
    assert "U001" in rules


def test_u001_good_same_unit_and_counts(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def total(read_ms, write_ms, n_requests):
            per_req = read_ms + write_ms
            return per_req * n_requests
        """, select=["U"])
    assert rules == []


def test_u001_vocab_annotation_beats_name_convention(tmp_path):
    # The *annotation* says Ms, despite the byte-ish parameter name: the
    # addition is ms + ms, and must stay silent.
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def total(transfer_bytes: Ms, decode_ms: Ms):
            return transfer_bytes + decode_ms
        """, select=["U"])
    assert rules == []


# --------------------------------------------------------------------------
# U002 — address-space confusion


def test_u002_flags_lsn_passed_to_lpn_param(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/map.py", """
        def lookup(lpn: Lpn):
            return lpn

        def read(lsn: Lsn):
            return lookup(lsn)
        """, select=["U"])
    assert "U002" in rules


def test_u002_good_converted_before_call(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/map.py", """
        def lookup(lpn: Lpn):
            return lpn

        def lpn_of(lsn: Lsn) -> Lpn:
            return lsn // 4

        def read(lsn: Lsn):
            return lookup(lpn_of(lsn))
        """, select=["U"])
    assert rules == []


def test_u002_flags_wrong_mapping_subscript(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/map.py", """
        def read(pages_by_lpn, lsn):
            return pages_by_lpn[lsn]
        """, select=["U"])
    assert "U002" in rules


def test_u002_good_matching_subscript(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/map.py", """
        def read(pages_by_lpn, lpn):
            return pages_by_lpn[lpn]
        """, select=["U"])
    assert rules == []


def test_u002_flags_membership_in_wrong_domain(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/map.py", """
        def cached(dirty_by_lpn, lsn):
            return lsn in dirty_by_lpn
        """, select=["U"])
    assert "U002" in rules


# --------------------------------------------------------------------------
# U003 — lossy/unconverted boundary crossings


def test_u003_flags_kib_plus_bytes(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/mod.py", """
        def capacity(size_kib, spare_bytes):
            return size_kib + spare_bytes
        """, select=["U"])
    assert "U003" in rules


def test_u003_flags_double_byte_scaling(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/mod.py", """
        from repro.units import KIB

        def grow(size_bytes):
            return size_bytes * KIB
        """, select=["U"])
    assert "U003" in rules


def test_u003_flags_us_factor_on_ms(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        from repro.units import US

        def convert(delay_ms):
            return delay_ms * US
        """, select=["U"])
    assert "U003" in rules


def test_u003_good_scaled_before_mixing(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/mod.py", """
        from repro.units import KIB, US

        def capacity(size_kib, spare_bytes):
            return size_kib * KIB + spare_bytes

        def total(delay_us, decode_ms):
            return delay_us * US + decode_ms
        """, select=["U"])
    assert rules == []


def test_u003_flags_raw_kib_passed_to_bytes_param(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/mod.py", """
        def alloc(n: Bytes):
            return n

        def grow(size_kib):
            return alloc(size_kib)
        """, select=["U"])
    assert "U003" in rules


# --------------------------------------------------------------------------
# U-family — interprocedural propagation and engine plumbing


def test_unit_fact_propagates_across_call_edge(tmp_path):
    # ``base_cost`` has no annotation and no name convention: its ms
    # return unit exists only because the fixpoint inferred it from the
    # body.  The call site then mixes that inferred ms with bytes.
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def base_cost(t_ms):
            return t_ms + 0.1

        def total(size_bytes):
            return base_cost(0.2) + size_bytes
        """, select=["U"])
    assert "U001" in rules


def test_unit_fact_propagates_across_modules(tmp_path):
    # The ms fact crosses a file boundary through the import graph.
    geom = tmp_path / "sim" / "timing.py"
    geom.parent.mkdir(parents=True, exist_ok=True)
    geom.write_text(textwrap.dedent("""
        def decode_cost(rber) -> Ms:
            return 0.1
        """), encoding="utf-8")
    rules, _ = lint_snippet(tmp_path, "ftl/read.py", """
        from sim.timing import decode_cost

        def total(size_bytes):
            return decode_cost(0.01) + size_bytes
        """, select=["U"])
    assert "U001" in rules


def test_u_rules_are_conservative_on_unknowns(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def mix(a, b, count):
            return a + b * count
        """, select=["U"])
    assert rules == []


def test_u_rule_line_suppression(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        def cost(delay_ms, size_bytes):
            return delay_ms + size_bytes  # repro-lint: disable=U001
        """, select=["U"])
    assert rules == []


def test_u_rule_file_suppression(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/mod.py", """
        # repro-lint: disable-file=U001
        def cost(delay_ms, size_bytes):
            return delay_ms + size_bytes
        """, select=["U"])
    assert rules == []


# --------------------------------------------------------------------------
# --select rule-family prefixes


def test_select_family_prefix_expands(tmp_path):
    _, result = lint_snippet(tmp_path, "ftl/x.py", "x = 1\n", select=["U"])
    assert result.rules_run == ["U001", "U002", "U003"]


def test_select_prefix_d_expands(tmp_path):
    _, result = lint_snippet(tmp_path, "ftl/x.py", "x = 1\n", select=["D"])
    assert result.rules_run == ["D001", "D002", "D003"]


def test_select_mixes_ids_and_prefixes(tmp_path):
    _, result = lint_snippet(tmp_path, "ftl/x.py", "x = 1\n",
                             select=["D001", "U"])
    assert result.rules_run == ["D001", "U001", "U002", "U003"]


def test_select_unknown_prefix_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(tmp_path, select=["Q"])


# --------------------------------------------------------------------------
# M001 — state write reachable before a raise-capable validation


def test_m001_flags_write_before_raise(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def program(self, page, mask):
                self.next_page += 1
                if mask == 0:
                    raise ValueError("empty mask")
                self.pass_counts[page] += 1
        """, select=["M"])
    assert "M001" in rules


def test_m001_flags_write_before_validator_call(tmp_path):
    """The interprocedural shape: the raise lives in a called pure
    validator, not in the mutating method itself."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def check_mask(self, mask):
                if mask < 0:
                    raise ValueError("bad mask")

            def program(self, page, mask):
                self.next_page += 1
                self.check_mask(mask)
                self.pass_counts[page] += 1
        """, select=["M"])
    assert "M001" in rules


def test_m001_flags_cross_function_validator(tmp_path):
    """Validator raise facts propagate over module-level call edges."""
    rules, _ = lint_snippet(tmp_path, "ftl/base.py", """
        def check_budget(n):
            if n < 0:
                raise ValueError("negative budget")

        class Ftl:
            def reserve(self, n):
                self.reserved += n
                check_budget(n)
        """, select=["M"])
    assert "M001" in rules


def test_m001_flags_partial_batch_loop(tmp_path):
    """PR 7 regression shape: ``invalidate_many`` validating inside the
    mutation loop, so a bad slot mid-batch leaves earlier slots already
    invalidated."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def invalidate_many(self, slots):
                valid_f = self.region.valid
                for slot in slots:
                    if slot < 0:
                        raise ValueError("bad slot")
                    valid_f[slot] = False
        """, select=["M"])
    assert "M001" in rules


def test_m001_good_validate_then_write(tmp_path):
    """PR 7's *fix* shape: every raise-capable check precedes the first
    state write (including the two-loop batch form)."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def check_mask(self, mask):
                if mask < 0:
                    raise ValueError("bad mask")

            def program(self, page, mask):
                if mask == 0:
                    raise ValueError("empty mask")
                self.check_mask(mask)
                self.pass_counts[page] += 1
                self.next_page += 1

            def invalidate_many(self, slots):
                valid_f = self.region.valid
                for slot in slots:
                    if slot < 0:
                        raise ValueError("bad slot")
                for slot in slots:
                    valid_f[slot] = False
        """, select=["M001"])
    assert rules == []


def test_m001_good_early_return_branch(tmp_path):
    """Writes on a branch that returns never reach a later raise."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def maybe(self, fast, mask):
                if fast:
                    self.next_page += 1
                    return True
                if mask == 0:
                    raise ValueError("empty mask")
                return False
        """, select=["M"])
    assert rules == []


def test_m001_good_write_inside_try(tmp_path):
    """A raise under an exception handler is a handled path, not a torn
    exit."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def program(self, page):
                self.next_page += 1
                try:
                    if page < 0:
                        raise ValueError("bad page")
                except ValueError:
                    self.next_page -= 1
        """, select=["M"])
    assert rules == []


def test_m001_good_transition_call_after_write(tmp_path):
    """Calling a method that both raises and writes is a state
    transition (``block.retire()``), not a validation point."""
    rules, _ = lint_snippet(tmp_path, "nand/flash.py", """
        class Block:
            def retire(self):
                if self.bad:
                    raise ValueError("cannot retire")
                self.state = "retired"

        class Flash:
            def erase(self, block: Block):
                self.erases += 1
                block.retire()
        """, select=["M001"])
    assert rules == []


def test_m001_exempts_init_and_other_dirs(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def __init__(self, config):
                self.next_page = 0
                if config is None:
                    raise ValueError("no config")
        """, select=["M"])
    assert rules == []
    rules, _ = lint_snippet(tmp_path, "metrics/latency.py", """
        class Tracker:
            def add(self, value):
                self.total += value
                if value < 0:
                    raise ValueError("negative latency")
        """, select=["M"])
    assert rules == []


def test_m001_line_suppression(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def program(self, page, mask):
                self.next_page += 1
                if mask == 0:
                    raise ValueError("empty")  # repro-lint: disable=M001
        """, select=["M"])
    assert rules == []


# --------------------------------------------------------------------------
# M002 — Block mirror / RegionState column lock-step


def test_m002_flags_mirror_without_column(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def invalidate(self, page):
                self.valid_mask &= ~(1 << page)
                self.n_valid -= 1
        """, select=["M"])
    assert rules.count("M002") == 2  # both unpaired mirrors


def test_m002_flags_column_without_mirror(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def invalidate(self, slot):
                region = self.region
                region.valid[slot] = False
        """, select=["M"])
    assert "M002" in rules


def test_m002_good_paired_writes(tmp_path):
    """The kernel's real shape: mirror and column updated in the same
    method, including writes through hoisted column aliases."""
    rules, _ = lint_snippet(tmp_path, "nand/block.py", """
        class Block:
            def invalidate(self, slot, page):
                valid_f = self.region.valid
                valid_f[slot] = False
                self.valid_mask &= ~(1 << page)
                self.n_valid -= 1
        """, select=["M"])
    assert rules == []


def test_m002_good_unmirrored_column(tmp_path):
    """``slot_time`` has no scalar mirror by design — array-only columns
    carry no pairing obligation."""
    rules, _ = lint_snippet(tmp_path, "nand/flash.py", """
        class Flash:
            def touch(self, region, j, now):
                time_f = region.slot_time
                time_f[j] = now
        """, select=["M"])
    assert rules == []


def test_m002_allowlists_reference_twin(tmp_path):
    """The pure-python spec twin keeps no mirrors on purpose."""
    rules, _ = lint_snippet(tmp_path, "nand/reference.py", """
        class ReferenceBlock:
            def erase(self):
                self.erase_count += 1
                self.state = "free"
                self.level = None
        """, select=["M"])
    assert rules == []


# --------------------------------------------------------------------------
# N001 — dtype discipline in byte-identity-gated modules


def test_n001_flags_dtypeless_construction(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/rber.py", """
        import numpy as np

        def curve(values):
            return np.array([v * 2.0 for v in values])
        """, select=["N"])
    assert rules == ["N001"]


def test_n001_flags_narrow_float(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/ecc.py", """
        import numpy as np

        def decode(rbers):
            return np.asarray(rbers, dtype=np.float32)
        """, select=["N"])
    assert rules == ["N001"]


def test_n001_flags_narrow_float_string(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/state.py", """
        import numpy as np

        def alloc(n):
            return np.zeros(n, dtype="float32")
        """, select=["N"])
    assert rules == ["N001"]


def test_n001_good_explicit_dtypes(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/state.py", """
        import numpy as np

        def alloc(n):
            a = np.zeros(n, dtype=np.float64)
            b = np.full(n, -1, dtype=np.int64)
            c = np.asarray([1, 2], np.intp)
            d = np.zeros(n, dtype=bool)
            return a, b, c, d
        """, select=["N"])
    assert rules == []


def test_n001_only_gated_modules(tmp_path):
    """Trace synthesis and friends are free to use idiomatic numpy."""
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        import numpy as np

        def weights(values):
            return np.array(values)
        """, select=["N"])
    assert rules == []


# --------------------------------------------------------------------------
# N002 — order-dependent reductions in byte-identity-gated modules


def test_n002_flags_fancy_gather_sum(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/flash.py", """
        import numpy as np

        def price(col, idx):
            return col[idx].sum()
        """, select=["N"])
    assert rules == ["N002"]


def test_n002_flags_np_sum_of_gather(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/rber.py", """
        import numpy as np

        def price(col, idx):
            return np.sum(col[idx])
        """, select=["N"])
    assert rules == ["N002"]


def test_n002_flags_builtin_sum_over_array(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/ecc.py", """
        def fold(arr):
            return sum(arr)
        """, select=["N"])
    assert rules == ["N002"]


def test_n002_good_generator_and_mask_sums(tmp_path):
    """Generator folds and boolean-mask gathers (ascending position
    order) stay deterministic and stay allowed."""
    rules, _ = lint_snippet(tmp_path, "nand/flash.py", """
        import numpy as np

        def counters(blocks, col):
            a = sum(b.n_valid for b in blocks)
            b = col[col > 0].sum()
            c = np.maximum.reduceat(col, [0, 4])
            return a, b, c
        """, select=["N"])
    assert rules == []


def test_n002_only_gated_modules(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/latency.py", """
        def mean(latencies):
            return sum(latencies) / len(latencies)
        """, select=["N"])
    assert rules == []


# --------------------------------------------------------------------------
# M/N --select plumbing


def test_select_prefix_m_expands(tmp_path):
    _, result = lint_snippet(tmp_path, "ftl/x.py", "x = 1\n", select=["M"])
    assert result.rules_run == ["M001", "M002"]


def test_select_prefix_n_expands(tmp_path):
    _, result = lint_snippet(tmp_path, "ftl/x.py", "x = 1\n", select=["N"])
    assert result.rules_run == ["N001", "N002"]
