"""Fixture-driven tests for the repro-ssd lint rules.

One good/bad snippet pair per rule, written into a throwaway tree and
linted with the real engine, so every rule's detection logic and its
allowlists/exemptions are pinned by example.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.core import PARSE_ERROR_RULE


def lint_snippet(tmp_path: Path, relpath: str, code: str,
                 select: "list[str] | None" = None):
    """Write ``code`` at ``relpath`` under a scratch tree and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    result = run_lint(tmp_path, select=select)
    return [v.rule for v in result.violations], result


# --------------------------------------------------------------------------
# D001 — randomness


def test_d001_flags_random_import(tmp_path):
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        import random

        def pick():
            return random.random()
        """)
    assert rules.count("D001") >= 2  # the import and the call chain


@pytest.mark.parametrize("stmt", [
    "from random import shuffle",
    "import uuid",
    "from os import urandom",
    "from numpy import random",
    "from numpy.random import default_rng",
])
def test_d001_flags_random_source_imports(tmp_path, stmt):
    rules, _ = lint_snippet(tmp_path, "core/mod.py", f"{stmt}\n")
    assert "D001" in rules


def test_d001_flags_unseeded_default_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        import numpy as np

        def roll():
            return np.random.default_rng().integers(10)
        """)
    assert "D001" in rules


def test_d001_good_path_uses_make_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "traces/synth.py", """
        from repro.rng import make_rng

        def roll(seed):
            return make_rng(seed, key="roll").integers(10)
        """)
    assert "D001" not in rules


def test_d001_flags_fault_injector_direct_randomness(tmp_path):
    """Fault injectors are not exempt: sampling outside the dedicated
    ``faults`` stream would break the rate-0 bit-identity contract."""
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        import numpy as np

        def program_fails(rate):
            return np.random.default_rng().random() < rate
        """)
    assert "D001" in rules


def test_d001_flags_fault_injector_stdlib_random(tmp_path):
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        import random

        def erase_fails(rate):
            return random.random() < rate
        """)
    assert rules.count("D001") >= 2  # the import and the call chain


def test_d001_good_fault_injector_uses_faults_rng(tmp_path):
    rules, _ = lint_snippet(tmp_path, "faults/plan.py", """
        from repro.rng import faults_rng

        def program_fails(seed, rate):
            return faults_rng(seed, "program").random() < rate
        """)
    assert "D001" not in rules


def test_d001_allows_rng_module_itself(tmp_path):
    rules, _ = lint_snippet(tmp_path, "rng.py", """
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
        """)
    assert "D001" not in rules


# --------------------------------------------------------------------------
# D002 — wall clock


def test_d002_flags_wall_clock_outside_allowlist(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        import time

        def scan():
            return time.perf_counter()
        """)
    assert "D002" in rules


def test_d002_flags_from_time_import(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/report.py",
                            "from time import perf_counter\n")
    assert "D002" in rules


def test_d002_flags_datetime_now(tmp_path):
    rules, _ = lint_snippet(tmp_path, "experiments/runner.py", """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """)
    assert "D002" in rules


@pytest.mark.parametrize("relpath", [
    "bench.py", "sim/simulator.py", "ftl/victim.py",
])
def test_d002_allowlisted_diagnostic_modules(tmp_path, relpath):
    rules, _ = lint_snippet(tmp_path, relpath, """
        import time

        def wall():
            return time.perf_counter()
        """)
    assert "D002" not in rules


def test_d002_good_path_uses_modelled_time(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/gc.py", """
        def cost_ms(timing, pages):
            return timing.erase_ms + pages * timing.slc_read_ms
        """)
    assert "D002" not in rules


# --------------------------------------------------------------------------
# D003 — set iteration order


def test_d003_flags_for_over_set_call(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            out = []
            for i in set(ids):
                out.append(i)
            return out
        """)
    assert "D003" in rules


def test_d003_flags_annotated_set_attribute(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        class Index:
            def __init__(self):
                self.dirty: set[int] = set()

            def flush(self):
                for bid in self.dirty:
                    yield bid
        """)
    assert "D003" in rules


def test_d003_flags_list_of_set(tmp_path):
    rules, _ = lint_snippet(tmp_path, "nand/x.py", """
        def order(ids):
            pending = {i for i in ids}
            return list(pending)
        """)
    assert "D003" in rules


def test_d003_good_sorted_iteration(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        class Index:
            def __init__(self):
                self.dirty: set[int] = set()

            def flush(self):
                for bid in sorted(self.dirty):
                    yield bid

        def order(ids):
            return sorted(set(ids))

        def member(ids, x):
            return x in set(ids)
        """)
    assert "D003" not in rules


def test_d003_only_applies_to_simulation_state_dirs(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/x.py", """
        def drain(ids):
            for i in set(ids):
                yield i
        """)
    assert "D003" not in rules


# --------------------------------------------------------------------------
# S002 — Block counter writes


def test_s002_flags_counter_assignment(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def hack(block, page):
            block.page_valid[page] = 0
        """)
    assert "S002" in rules


def test_s002_flags_augmented_assignment(tmp_path):
    rules, _ = lint_snippet(tmp_path, "core/x.py", """
        def hack(block):
            block.n_valid += 1
        """)
    assert "S002" in rules


def test_s002_flags_mutator_call(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/x.py", """
        def hack(block, page):
            block.disturb_in[page].append(1)
        """)
    assert "S002" in rules


def test_s002_allows_block_module_and_reads(tmp_path):
    good = """
        def owner_mutation(self, page, n):
            self.page_valid[page] += n

        def reader(block, page):
            return block.page_valid[page] == 0
        """
    rules, _ = lint_snippet(tmp_path, "nand/block.py", good)
    assert "S002" not in rules
    rules, _ = lint_snippet(tmp_path, "ftl/read_only.py", """
        def reader(block, page):
            return block.page_valid[page] + block.n_valid
        """)
    assert "S002" not in rules


# --------------------------------------------------------------------------
# C001 — magic literals


def test_c001_flags_magic_size(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/x.py", """
        def codewords(code):
            return code.codewords_for(4096)
        """)
    assert "C001" in rules


def test_c001_flags_magic_latency(tmp_path):
    rules, _ = lint_snippet(tmp_path, "sim/x.py", """
        def latency(n):
            return n * 0.3
        """)
    assert "C001" in rules


def test_c001_exempts_declared_defaults(tmp_path):
    rules, _ = lint_snippet(tmp_path, "error/x.py", """
        from dataclasses import dataclass

        SECTOR_BYTES = 512

        @dataclass
        class Code:
            payload_bytes: int = 512

        def f(size=4096):
            return size
        """)
    assert "C001" not in rules


def test_c001_only_applies_to_modelled_dirs(tmp_path):
    rules, _ = lint_snippet(tmp_path, "metrics/x.py", """
        def f():
            return 4096
        """)
    assert "C001" not in rules


# --------------------------------------------------------------------------
# engine behaviour


def test_suppression_comment_on_line(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            for i in set(ids):  # repro-lint: disable=D003
                yield i
        """)
    assert "D003" not in rules


def test_suppression_is_rule_specific(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        def drain(ids):
            for i in set(ids):  # repro-lint: disable=C001
                yield i
        """)
    assert "D003" in rules


def test_file_level_suppression(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", """
        # repro-lint: disable-file=D003
        def drain(ids):
            for i in set(ids):
                yield i

        def more(ids):
            return list(set(ids))
        """)
    assert "D003" not in rules


def test_parse_error_is_reported_not_raised(tmp_path):
    rules, _ = lint_snippet(tmp_path, "ftl/x.py", "def broken(:\n")
    assert rules == [PARSE_ERROR_RULE]


def test_select_restricts_rules(tmp_path):
    rules, result = lint_snippet(tmp_path, "ftl/x.py", """
        import random

        def drain(ids):
            for i in set(ids):
                yield i
        """, select=["D003"])
    assert set(rules) == {"D003"}
    assert result.rules_run == ["D003"]


def test_select_unknown_rule_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(tmp_path, select=["Z999"])


def test_violations_carry_stable_fingerprints(tmp_path):
    code = """
        def drain(ids):
            for i in set(ids):
                yield i
        """
    _, first = lint_snippet(tmp_path, "ftl/x.py", code)
    # Shift the offending line down; the fingerprint must not move.
    shifted = "# a new leading comment\n" + textwrap.dedent(code)
    (tmp_path / "ftl/x.py").write_text(shifted, encoding="utf-8")
    second = run_lint(tmp_path)
    assert [v.fingerprint for v in first.violations] == \
        [v.fingerprint for v in second.violations]
    assert first.violations[0].line != second.violations[0].line
