"""Experiment harnesses at smoke scale (shared memoised sweep)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get, run
from repro.experiments.artifact import Artifact
from repro.experiments.runner import RunContext, default_context

SCALE = "smoke"
SEED = 3


@pytest.fixture(scope="module", autouse=True)
def warm_context():
    """One shared sweep for the whole module."""
    ctx = default_context(SCALE, SEED)
    ctx.run_matrix(traces=("ts0",))
    return ctx


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"table1", "table2", "table3", "fig2", "fig5", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fig10b", "fig11",
                    "fig12", "fig13", "fig14"}
        assert expected <= set(EXPERIMENTS)

    def test_get_unknown(self):
        with pytest.raises(ExperimentError):
            get("fig99")

    def test_run_unknown(self):
        with pytest.raises(ExperimentError):
            run("fig99")

    def test_builder_kwargs_rejected_when_unsupported(self):
        with pytest.raises(ExperimentError, match="does not accept"):
            run("fig7", scale=SCALE, seed=SEED, qds=(2,))


class TestQdStudy:
    def test_ext_qd_renders_closed_and_frontend_rows(self):
        art = run("ext-qd", scale=SCALE, seed=SEED, qds=(2,))
        assert {row["mode"] for row in art.rows} == {"closed", "frontend"}
        assert all(row["QD"] == 2 for row in art.rows)
        closed = [r for r in art.rows if r["mode"] == "closed"]
        fe = [r for r in art.rows if r["mode"] == "frontend"]
        assert len(closed) == len(fe) == 3
        # Closed rows carry the throughput view, frontend rows the
        # buffer counters and the latency tail.
        assert all(r["KIOPS"] != "-" and r["p99 ms"] == "-" for r in closed)
        assert all(r["KIOPS"] == "-" and r["p99 ms"] != "-" for r in fe)
        assert any(int(r["hits"]) > 0 for r in fe)
        assert any(int(r["flushes"]) > 0 for r in fe)


class TestRunContext:
    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            RunContext(scale="galactic").spec

    def test_unknown_scheme(self):
        with pytest.raises(ExperimentError):
            default_context(SCALE, SEED).run("ts0", "nope")

    def test_results_memoised(self):
        ctx = default_context(SCALE, SEED)
        a = ctx.run("ts0", "ipu")
        b = ctx.run("ts0", "ipu")
        assert a is b

    def test_trace_config_sized_to_trace(self):
        ctx = default_context(SCALE, SEED)
        cfg = ctx.trace_config("ts0")
        assert cfg.slc_blocks >= 8
        assert cfg.mlc_blocks > cfg.slc_blocks

    def test_paper_scale_uses_table2(self):
        ctx = RunContext(scale="paper", seed=1)
        cfg = ctx.trace_config("ts0")
        assert cfg.geometry.total_blocks == 65536
        assert cfg.cache.slc_ratio == 0.05


class TestCheapArtifacts:
    def test_table2(self):
        art = run("table2", scale=SCALE, seed=SEED)
        assert isinstance(art, Artifact)
        assert any(r["Parameter"] == "Page size" for r in art.rows)
        assert "16KB" in str(art.render())

    def test_fig2(self):
        art = run("fig2", scale=SCALE, seed=SEED)
        assert len(art.rows) >= 6
        pe4000 = next(r for r in art.rows if r["P/E cycles"] == 4000)
        assert pe4000["conventional"] == "2.800e-04"
        assert pe4000["partial"] == "3.800e-04"

    def test_fig11(self):
        art = run("fig11", scale=SCALE, seed=SEED)
        paper_rows = [r for r in art.rows if r["Config"] == "paper"]
        norms = {r["Scheme"]: float(r["normalized"]) for r in paper_rows}
        assert norms["baseline"] == 1.0
        assert 1.15 < norms["mga"] < 1.30
        assert 1.0 < norms["ipu"] < 1.02


class TestTableArtifacts:
    def test_table1_measured_close_to_paper(self):
        art = run("table1", scale=SCALE, seed=SEED)
        assert len(art.rows) == 6
        for row in art.rows:
            paper = float(row["<=4K paper"].rstrip("%"))
            ours = float(row["<=4K ours"].rstrip("%"))
            assert abs(paper - ours) < 8.0

    def test_table3_write_ratio_exact(self):
        art = run("table3", scale=SCALE, seed=SEED)
        for row in art.rows:
            paper = float(row["WriteR paper"].rstrip("%"))
            ours = float(row["WriteR ours"].rstrip("%"))
            assert abs(paper - ours) < 1.0


class TestSimArtifacts:
    """Single-trace checks against the shared sweep (full-matrix artifact
    builds are exercised by the benchmarks)."""

    def test_fig5_rows_render(self, warm_context):
        base = warm_context.run("ts0", "baseline")
        ipu = warm_context.run("ts0", "ipu")
        assert ipu.avg_latency_ms < base.avg_latency_ms

    def test_fig9_values(self, warm_context):
        mga = warm_context.run("ts0", "mga")
        assert mga.slc_page_utilization > 0.95

    def test_fig7_artifact_runs_on_full_matrix(self):
        # fig7 only needs the IPU column; cheap enough at smoke scale.
        art = run("fig7", scale=SCALE, seed=SEED)
        assert len(art.rows) == 6
        assert "Work" in art.rows[0]

    def test_artifact_render_contains_notes(self):
        art = run("fig7", scale=SCALE, seed=SEED)
        text = art.render()
        assert "[fig7]" in text
        assert "paper 62.7%" in text

    def test_ext_seed_shapes_hold(self):
        art = run("ext-seeds", scale=SCALE, seed=SEED)
        assert len(art.rows) == 3
        for row in art.rows:
            assert row["IPU vs Base lat"].startswith("-")
            mga = float(row["MGA err incr"].strip("+%"))
            ipu = float(row["IPU err incr"].strip("+%"))
            assert ipu < mga

    def test_summary_scoreboard(self):
        art = run("summary", scale=SCALE, seed=SEED)
        verdicts = art.column("Shape")
        assert verdicts.count("DEVIATES") <= 1
        mech = next(r for r in art.rows if r["Artefact"] == "mechanism")
        assert mech["Shape"] == "ok"

    def test_artifact_column_helper(self):
        art = run("table1", scale=SCALE, seed=SEED)
        assert art.column("Trace") == ["ts0", "wdev0", "lun1", "usr0",
                                       "lun2", "ads"]
