#!/usr/bin/env python3
"""Regenerate the committed reference artifacts in this directory.

With no flags, everything regenerates in **one pass** — figure/table
JSONs, the smoke-scale golden metric files under ``golden/``, and
``schema_snapshot.json`` — so a behaviour change can never leave one
artifact class stale while the others move (PR 4 shipped a stale
``fig12.json`` exactly that way).  ``--figures`` / ``--golden`` /
``--schema`` restrict the pass when only one class is affected.

Every invocation ends with a schema-sync check: if the live
``SimulationResult`` schema or ``CACHE_SCHEMA_VERSION`` disagrees with
the on-disk ``schema_snapshot.json`` after the pass, the script fails
loudly (exit 1) instead of leaving the ``repro-ssd lint`` S001 drift
guard armed against a stale snapshot.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import EXPERIMENTS, run
from repro.experiments.runner import RunContext, SCHEME_ORDER
from repro.traces.profiles import TRACE_NAMES

OUT = Path(__file__).parent
SCALE, SEED = "small", 1

GOLDEN_SCALE, GOLDEN_SEED = "smoke", 1
#: Headline metrics pinned per figure: fig5 reads the latency triple,
#: fig9 the GC page-utilisation ratio.
GOLDEN_METRICS = {
    "fig5": ("avg_latency_ms", "avg_read_latency_ms", "avg_write_latency_ms",
             "read_error_rate"),
    "fig9": ("slc_page_utilization", "erases_slc", "erases_mlc"),
}


def regenerate_figures() -> None:
    """Rebuild every experiment's reference JSON at the small scale."""
    for eid in EXPERIMENTS:
        artifact = run(eid, scale=SCALE, seed=SEED)
        path = OUT / f"{eid}.json"
        artifact.save_json(path)
        print(f"wrote {path}")


def regenerate_golden() -> None:
    """Rebuild the smoke-scale golden metric pins under ``golden/``."""
    ctx = RunContext(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    results = ctx.run_matrix()
    golden_dir = OUT / "golden"
    golden_dir.mkdir(exist_ok=True)
    for fig, metrics in GOLDEN_METRICS.items():
        cells = {
            f"{trace}/{scheme}": {m: getattr(results[(trace, scheme)], m)
                                  for m in metrics}
            for trace in TRACE_NAMES
            for scheme in SCHEME_ORDER
        }
        path = golden_dir / f"{fig}_{GOLDEN_SCALE}.json"
        path.write_text(json.dumps(
            {"experiment": fig, "scale": GOLDEN_SCALE, "seed": GOLDEN_SEED,
             "cells": cells},
            indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


def regenerate_schema() -> None:
    """Rebuild ``schema_snapshot.json`` from the live source tree."""
    from repro.analysis.schema import write_schema_snapshot

    path = write_schema_snapshot(OUT.parent)
    print(f"wrote {path}")


def verify_schema_sync() -> "list[str]":
    """Compare the live schema against the on-disk snapshot.

    Returns a list of mismatch descriptions (empty = in sync).  Runs at
    the end of *every* invocation: ``CACHE_SCHEMA_VERSION`` must never
    change without the snapshot refreshing in the same pass.
    """
    from repro.analysis.schema import SNAPSHOT_RELPATH, current_schema

    live = current_schema(OUT.parent / "src" / "repro")
    if live is None:
        return ["cannot extract the live schema from src/repro"]
    snap_path = OUT.parent / SNAPSHOT_RELPATH
    if not snap_path.is_file():
        return [f"{SNAPSHOT_RELPATH} is missing — rerun with --schema"]
    try:
        snap = json.loads(snap_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable {SNAPSHOT_RELPATH}: {exc}"]
    problems = []
    if live.get("cache_schema_version") != snap.get("cache_schema_version"):
        problems.append(
            f"CACHE_SCHEMA_VERSION is {live.get('cache_schema_version')} but "
            f"{SNAPSHOT_RELPATH} records {snap.get('cache_schema_version')}")
    for key in ("fields", "nondeterministic_fields", "summary_keys"):
        if set(live.get(key) or ()) != set(snap.get(key) or ()):
            problems.append(f"{key} drifted between the source and the "
                            f"snapshot")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--figures", action="store_true",
                        help="regenerate only the figure/table JSONs")
    parser.add_argument("--golden", action="store_true",
                        help="regenerate only the golden metric pins")
    parser.add_argument("--schema", action="store_true",
                        help="regenerate only schema_snapshot.json")
    args = parser.parse_args(argv)
    everything = not (args.figures or args.golden or args.schema)

    # Schema first: a stale snapshot must not outlive the pass that
    # changed the result shape.
    if everything or args.schema:
        regenerate_schema()
    if everything or args.golden:
        regenerate_golden()
    if everything or args.figures:
        regenerate_figures()

    problems = verify_schema_sync()
    if problems:
        print("schema out of sync after regeneration:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        print("  fix: bump CACHE_SCHEMA_VERSION if the schema moved, then "
              "rerun 'python results/regenerate.py --schema'",
              file=sys.stderr)
        return 1
    print("schema snapshot in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
