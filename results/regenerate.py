#!/usr/bin/env python3
"""Regenerate every reference artifact JSON in this directory.

``--golden`` additionally regenerates the committed smoke-scale golden
metric files under ``golden/`` that ``tests/test_golden_results.py``
guards (only needed when a deliberate behaviour change shifts the
numbers; the commit diff then documents the shift).

``--schema`` regenerates ``schema_snapshot.json`` — the committed
``SimulationResult`` field/summary-key inventory that the ``repro-ssd
lint`` S001 drift guard compares against (run it in the same commit
that changes the result schema and bumps ``CACHE_SCHEMA_VERSION``; see
``docs/STATIC_ANALYSIS.md``).
"""

import json
import sys
from pathlib import Path

from repro.experiments import EXPERIMENTS, run
from repro.experiments.runner import RunContext, SCHEME_ORDER
from repro.traces.profiles import TRACE_NAMES

OUT = Path(__file__).parent
SCALE, SEED = "small", 1

GOLDEN_SCALE, GOLDEN_SEED = "smoke", 1
#: Headline metrics pinned per figure: fig5 reads the latency triple,
#: fig9 the GC page-utilisation ratio.
GOLDEN_METRICS = {
    "fig5": ("avg_latency_ms", "avg_read_latency_ms", "avg_write_latency_ms",
             "read_error_rate"),
    "fig9": ("slc_page_utilization", "erases_slc", "erases_mlc"),
}


def regenerate_golden() -> None:
    ctx = RunContext(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    results = ctx.run_matrix()
    golden_dir = OUT / "golden"
    golden_dir.mkdir(exist_ok=True)
    for fig, metrics in GOLDEN_METRICS.items():
        cells = {
            f"{trace}/{scheme}": {m: getattr(results[(trace, scheme)], m)
                                  for m in metrics}
            for trace in TRACE_NAMES
            for scheme in SCHEME_ORDER
        }
        path = golden_dir / f"{fig}_{GOLDEN_SCALE}.json"
        path.write_text(json.dumps(
            {"experiment": fig, "scale": GOLDEN_SCALE, "seed": GOLDEN_SEED,
             "cells": cells},
            indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


def regenerate_schema() -> None:
    from repro.analysis.schema import write_schema_snapshot

    path = write_schema_snapshot(OUT.parent)
    print(f"wrote {path}")


if __name__ == "__main__":
    if "--schema" in sys.argv:
        regenerate_schema()
    elif "--golden" in sys.argv:
        regenerate_golden()
    else:
        for eid in EXPERIMENTS:
            artifact = run(eid, scale=SCALE, seed=SEED)
            path = OUT / f"{eid}.json"
            artifact.save_json(path)
            print(f"wrote {path}")
