#!/usr/bin/env python3
"""Regenerate every reference artifact JSON in this directory."""

from pathlib import Path

from repro.experiments import EXPERIMENTS, run

OUT = Path(__file__).parent
SCALE, SEED = "small", 1

for eid in EXPERIMENTS:
    artifact = run(eid, scale=SCALE, seed=SEED)
    path = OUT / f"{eid}.json"
    artifact.save_json(path)
    print(f"wrote {path}")
