#!/usr/bin/env python3
"""Define, persist and simulate a custom device configuration.

Shows the adoption workflow: tweak Table 2 knobs (here: a TLC-class
device with slower programs, a bigger SLC cache, the pipelined bus model
and the translation extension), save the configuration as JSON, reload
it, and compare IPU against MGA on it.

Run:  python examples/custom_device.py
"""

import tempfile
from pathlib import Path

from repro import MGAFTL, IPUFTL, Simulator
from repro.config import (
    CacheConfig,
    GeometryConfig,
    SSDConfig,
    TimingConfig,
    TranslationConfig,
)
from repro.configio import load_config, save_config
from repro.metrics.report import format_table
from repro.traces import generate, profile


def build_config() -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(
            channels=4, chips_per_channel=2, planes_per_chip=1,
            total_blocks=96),
        timing=TimingConfig(
            # TLC-class media: slower programs and reads than Table 2's MLC.
            mlc_read_ms=0.09, mlc_write_ms=2.0,
            pipelined_bus=True),
        cache=CacheConfig(slc_ratio=0.25),
        translation=TranslationConfig(
            enabled=True, entries_per_page=512, cache_pages=8),
        seed=42,
    ).validate()


def main() -> None:
    path = Path(tempfile.gettempdir()) / "repro_custom_device.json"
    save_config(build_config(), path)
    print(f"Configuration written to {path}")
    config = load_config(path)
    print(f"Reloaded: {config.geometry.total_blocks} blocks, "
          f"{config.slc_blocks} SLC-mode, pipelined bus, "
          f"translation cache of {config.translation.cache_pages} pages\n")

    trace = generate(profile("wdev0"), n_requests=8_000, seed=42,
                     mean_interarrival_ms=1.0)
    rows = []
    for cls in (MGAFTL, IPUFTL):
        ftl = cls(config)
        result = Simulator(ftl).run(trace)
        rows.append({
            "scheme": ftl.scheme_name,
            "latency ms": f"{result.avg_latency_ms:.4f}",
            "error rate": f"{result.read_error_rate:.4e}",
            "CMT hit ratio": f"{ftl.cmt.stats.hit_ratio:.1%}",
            "SLC erases": result.erases_slc,
        })
    print(format_table(rows, title="MGA vs IPU on the custom TLC device"))
    print()
    print("IPU's page-level map keeps the translation cache fully hot and")
    print("its error rate near Baseline; shrink `cache_pages` to watch")
    print("MGA's second-level table start paying for foreground map reads.")


if __name__ == "__main__":
    main()
