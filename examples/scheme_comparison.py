#!/usr/bin/env python3
"""Compare Baseline, MGA and IPU on one workload (a mini Figure 5/8/9).

Replays the same synthetic trace through all three schemes on identical
devices and prints latency, reliability, utilisation and endurance side by
side — the core comparison of the paper's evaluation.

Run:  python examples/scheme_comparison.py [trace]
      (trace is one of ts0 wdev0 lun1 usr0 lun2 ads; default ts0)
"""

import sys

from repro.experiments.runner import RunContext, SCHEME_ORDER
from repro.metrics.report import format_table


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "ts0"
    ctx = RunContext(scale="smoke", seed=7)
    cfg = ctx.trace_config(trace_name)
    print(f"Device: {cfg.geometry.total_blocks} blocks, "
          f"{cfg.slc_blocks} SLC-mode "
          f"({cfg.slc_capacity_bytes / 2**20:.0f} MiB cache), "
          f"{len(ctx.trace(trace_name)):,} requests\n")

    rows = []
    for scheme in SCHEME_ORDER:
        r = ctx.run(trace_name, scheme)
        rows.append({
            "scheme": scheme,
            "latency ms": f"{r.avg_latency_ms:.3f}",
            "read ms": f"{r.avg_read_latency_ms:.3f}",
            "write ms": f"{r.avg_write_latency_ms:.3f}",
            "error rate": f"{r.read_error_rate:.3e}",
            "GC util": f"{r.slc_page_utilization:.1%}",
            "SLC erases": r.erases_slc,
            "MLC writes": r.host_subpages_mlc + r.evicted_subpages_to_mlc,
        })
    print(format_table(rows, title=f"Scheme comparison on {trace_name}"))

    base = ctx.run(trace_name, "baseline")
    ipu = ctx.run(trace_name, "ipu")
    mga = ctx.run(trace_name, "mga")
    print()
    print(f"IPU vs Baseline latency: "
          f"{ipu.avg_latency_ms / base.avg_latency_ms - 1:+.1%} "
          f"(paper: -14.9% on average)")
    print(f"IPU vs Baseline error rate: "
          f"{ipu.read_error_rate / base.read_error_rate - 1:+.1%} "
          f"(paper: +3.5%); MGA: "
          f"{mga.read_error_rate / base.read_error_rate - 1:+.1%} "
          f"(paper: +14.0%)")


if __name__ == "__main__":
    main()
