#!/usr/bin/env python3
"""Device-aging study: latency and reliability vs P/E cycles (Figs 13/14).

Replays the same workload on devices pre-aged to different wear levels and
shows how the read error rate and I/O latency grow — and that IPU's
reliability advantage over MGA persists at every age ("fine scalability on
varieties of SSD use stages", Section 4.5).

Run:  python examples/wear_study.py
"""

from repro.experiments.runner import RunContext
from repro.metrics.report import format_table

PE_LEVELS = (1000, 2000, 4000, 8000)


def main() -> None:
    ctx = RunContext(scale="smoke", seed=13, length_factor=0.6)
    rows = []
    for pe in PE_LEVELS:
        mga = ctx.run("ts0", "mga", pe=pe)
        ipu = ctx.run("ts0", "ipu", pe=pe)
        rows.append({
            "P/E cycles": pe,
            "MGA err": f"{mga.read_error_rate:.3e}",
            "IPU err": f"{ipu.read_error_rate:.3e}",
            "IPU err gain": f"{ipu.read_error_rate / mga.read_error_rate - 1:+.1%}",
            "MGA lat ms": f"{mga.avg_latency_ms:.3f}",
            "IPU lat ms": f"{ipu.avg_latency_ms:.3f}",
        })
    print(format_table(rows, title="Wear sweep on ts0 (MGA vs IPU)"))
    print()
    print("Expected shape: both columns grow with wear; IPU's error rate")
    print("stays below MGA's at every age because intra-page updates never")
    print("disturb valid data.")


if __name__ == "__main__":
    main()
