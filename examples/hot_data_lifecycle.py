#!/usr/bin/env python3
"""Follow one piece of hot data through IPU's machinery.

A hand-crafted workload keeps updating a single 4 KiB record while cold
data streams past, demonstrating — step by step — the paper's mechanics:

1. the first write lands in a **Work** block at slot 0,
2. three updates partial-program into the *same page* (slots 1-3) without
   disturbing any valid data,
3. the fourth update overflows the page and the data is promoted to a
   **Monitor** block, then to a **Hot** block,
4. garbage collection demotes never-updated cold data out of the cache
   while the hot record stays resident.

Run:  python examples/hot_data_lifecycle.py
"""

from repro import IPUFTL
from repro.config import CacheConfig, GeometryConfig, SSDConfig
from repro.ftl.levels import BlockLevel
from repro.slc_cache import SlcCacheView


def location(ftl, lsn):
    ppa = ftl.lookup(lsn)
    block = ftl.flash.block(ppa.block)
    level = BlockLevel(block.level if block.level is not None else 0)
    region = "SLC" if block.mode.is_slc else "MLC"
    return (f"{region} block {ppa.block:3d} ({level.name:12s}) "
            f"page {ppa.page:2d} slot {ppa.slot}")


def main() -> None:
    config = SSDConfig(
        geometry=GeometryConfig(channels=2, chips_per_channel=1,
                                planes_per_chip=1, total_blocks=32),
        cache=CacheConfig(slc_ratio=0.25),
    ).validate()
    ftl = IPUFTL(config)
    hot = 0  # LSN of the hot record
    now = 0.0

    print("step  action                          location")
    print("-" * 72)

    ftl.handle_write([hot], now)
    print(f"  1   first write (new data)         {location(ftl, hot)}")

    for step in range(2, 5):
        now += 1.0
        ftl.handle_write([hot], now)
        tag = "intra-page update" if ftl.stats.intra_page_updates else "?"
        print(f"  {step}   update -> {tag:20s} {location(ftl, hot)}")

    now += 1.0
    ftl.handle_write([hot], now)
    print(f"  5   update overflows -> promoted   {location(ftl, hot)}")

    for step in range(6, 10):
        now += 1.0
        ftl.handle_write([hot], now)
        print(f"  {step}   update                          {location(ftl, hot)}")

    print()
    print(f"intra-page updates: {ftl.stats.intra_page_updates}, "
          f"upgrade moves: {ftl.stats.upgrade_moves}, "
          f"valid subpages disturbed by partial programming: "
          f"{ftl.flash.disturbed_valid_subpages}")

    # Now flood the cache with cold data until GC runs, and watch the hot
    # record survive in the SLC cache while cold data is ejected.
    print()
    print("Flooding with cold data until garbage collection kicks in...")
    lsn = 1000 * 4
    while ftl.flash.erases_slc < 4:
        now += 0.5
        ftl.handle_write([lsn], now)
        lsn += 4
        now += 0.5
        ftl.handle_write([hot], now)  # the record keeps updating

    print(f"SLC erases: {ftl.flash.erases_slc}, "
          f"cold subpages ejected to MLC: {ftl.stats.evicted_subpages_to_mlc}")
    print(f"hot record now at: {location(ftl, hot)}")
    view = SlcCacheView(ftl)
    from repro.metrics.report import format_table
    print()
    print(format_table(view.summary_rows(), title="Cache composition"))


if __name__ == "__main__":
    main()
