#!/usr/bin/env python3
"""Replay a real MSR-Cambridge CSV trace (or a synthetic stand-in).

If you have the original MSR block I/O traces (ts_0.csv etc. from SNIA
IOTTA), pass the path; otherwise this example writes a synthetic trace in
the MSR CSV format first and replays that — demonstrating the full
file-based pipeline: parse -> characterise -> simulate.

Run:  python examples/replay_msr.py [path/to/trace.csv]
"""

import sys
import tempfile
from pathlib import Path

from repro import IPUFTL, Simulator
from repro.config import CacheConfig, GeometryConfig, SSDConfig
from repro.metrics.report import format_table
from repro.traces import characterize, generate, parse_msr_csv, profile
from repro.traces.msr import write_msr_csv


def get_trace_path() -> Path:
    if len(sys.argv) > 1:
        return Path(sys.argv[1])
    # No real trace available: synthesise one and round-trip it through
    # the MSR CSV format.
    path = Path(tempfile.gettempdir()) / "repro_synthetic_wdev0.csv"
    print(f"No trace supplied; writing a synthetic wdev0 to {path}")
    trace = generate(profile("wdev0"), n_requests=5_000, seed=2,
                     mean_interarrival_ms=1.2)
    write_msr_csv(trace, path)
    return path


def main() -> None:
    path = get_trace_path()
    trace = parse_msr_csv(path, max_requests=50_000)
    stats = characterize(trace)
    print()
    print(format_table([stats.table3_row()], title="Trace specification"))
    print(format_table([stats.table1_row()],
                       title="Updated-request size distribution"))
    print()

    # Size the device so the trace pressures the cache.
    span_blocks = max(64, trace.footprint_bytes * 2 // (128 * 16384))
    planes = 8
    total = span_blocks + (-span_blocks) % planes
    config = SSDConfig(
        geometry=GeometryConfig(channels=4, chips_per_channel=2,
                                planes_per_chip=1, total_blocks=total),
        cache=CacheConfig(slc_ratio=0.10),
    ).validate()

    result = Simulator(IPUFTL(config)).run(trace)
    print(format_table(
        [{"metric": k, "value": v} for k, v in result.summary().items()],
        title=f"IPU replay of {trace.name}"))


if __name__ == "__main__":
    main()
