#!/usr/bin/env python3
"""Quickstart: simulate the paper's IPU scheme on a synthetic ts0 trace.

Builds a scaled hybrid SLC/MLC device (Table 2 parameters), generates a
trace matching the published ts0 statistics, replays it through the IPU
FTL, and prints the headline metrics plus a view of the SLC cache's
Work/Monitor/Hot levels.

Run:  python examples/quickstart.py
"""

from repro import IPUFTL, Simulator, scaled_config
from repro.metrics.report import format_table
from repro.slc_cache import SlcCacheView
from repro.traces import generate, profile


def main() -> None:
    config = scaled_config("smoke", seed=1)
    print(format_table(
        [{"Parameter": k, "Value": v} for k, v in config.describe().items()],
        title="Device configuration (Table 2, scaled)"))
    print()

    trace = generate(profile("ts0"), n_requests=6_000, seed=1,
                     mean_interarrival_ms=1.0)
    print(f"Trace: {trace.name}, {len(trace):,} requests, "
          f"{trace.write_ratio:.1%} writes, "
          f"{trace.footprint_bytes / 2**20:.1f} MiB address span")
    print()

    ftl = IPUFTL(config)
    result = Simulator(ftl).run(trace)

    print(format_table([
        {"metric": "avg latency", "value": f"{result.avg_latency_ms:.3f} ms"},
        {"metric": "avg read latency", "value": f"{result.avg_read_latency_ms:.3f} ms"},
        {"metric": "avg write latency", "value": f"{result.avg_write_latency_ms:.3f} ms"},
        {"metric": "read error rate", "value": f"{result.read_error_rate:.3e}"},
        {"metric": "intra-page updates", "value": result.intra_page_updates},
        {"metric": "SLC erases", "value": result.erases_slc},
        {"metric": "GC page utilization", "value": f"{result.slc_page_utilization:.1%}"},
    ], title="IPU results"))
    print()

    print(format_table(SlcCacheView(ftl).summary_rows(),
                       title="SLC cache composition after replay"))
    print()
    print("The zero-disturb guarantee: partial passes hit "
          f"{ftl.flash.disturbed_valid_subpages} valid in-page subpages "
          f"across {ftl.flash.partial_programs} partial programs.")


if __name__ == "__main__":
    main()
