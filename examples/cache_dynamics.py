#!/usr/bin/env python3
"""Watch the SLC cache breathe: headroom, levels and GC over time.

Attaches a timeline recorder to an IPU replay and renders the evolution of
the cache — free-pool headroom oscillating around the GC watermarks, the
Work/Monitor/Hot composition building up as the hot set gets promoted, and
eviction volume tracking the cold stream.

Run:  python examples/cache_dynamics.py [trace]
"""

import sys

from repro import SCHEMES, Simulator
from repro.experiments.runner import RunContext
from repro.metrics.charts import line_chart
from repro.metrics.timeline import TimelineRecorder


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "ts0"
    ctx = RunContext(scale="smoke", seed=5)
    trace = ctx.trace(trace_name)
    cfg = ctx.trace_config(trace_name)

    ftl = SCHEMES["ipu"](cfg)
    recorder = TimelineRecorder(ftl, sample_every=max(1, len(trace) // 60))
    result = Simulator(ftl, observer=recorder).run(trace)

    print(f"IPU on {trace_name}: {result.n_requests:,} requests, "
          f"{result.erases_slc} SLC erases, "
          f"{result.intra_page_updates:,} intra-page updates\n")
    print(recorder.render(height=9, width=66))
    print()
    print(line_chart(
        {"intra-page": recorder.series("intra_page_updates"),
         "evicted": recorder.series("evicted_subpages")},
        x_labels=[recorder.samples[0].request_index,
                  recorder.samples[-1].request_index],
        height=8, width=66,
        title="Cumulative in-page updates vs cold evictions"))
    print()
    print("Reading the charts: free headroom saw-tooths between the GC")
    print("threshold and restore watermark; hot data climbs into Monitor/")
    print("Hot while the cold stream flows straight through Work to MLC.")


if __name__ == "__main__":
    main()
