"""repro — reproduction of *Intra-page Cache Update in SLC-mode with
Partial Programming in High Density SSDs* (Li et al., ICPP 2021).

A trace-driven hybrid SLC/MLC SSD simulator with partial programming, the
paper's IPU scheme, the Baseline and MGA comparison schemes, a calibrated
synthetic workload generator for the six evaluation traces, and experiment
harnesses regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import IPUFTL, Simulator, scaled_config
    from repro.traces import profile, generate

    config = scaled_config("small", seed=1)
    trace = generate(profile("ts0"), n_requests=20_000, seed=1)
    result = Simulator(IPUFTL(config)).run(trace)
    print(result.summary())
"""

from .config import (
    SSDConfig,
    GeometryConfig,
    TimingConfig,
    ReliabilityConfig,
    CacheConfig,
    ScaleSpec,
    SCALES,
    paper_config,
    scaled_config,
)
from .errors import ReproError
from .nand import FlashArray, CellMode, Geometry, PPA
from .error import RberModel, BCHCode, EccModel
from .ftl import BaselineFTL, DeltaFTL, MGAFTL
from .ftl.levels import BlockLevel
from .core import IPUFTL
from .frontend import FrontendConfig
from .sim import Simulator, SimulationResult, replay

__version__ = "1.0.0"

#: Scheme registry used by experiments and the CLI.  The paper evaluates
#: the first three; ``delta`` (Zhang et al., FAST'16) is the related-work
#: scheme IPU improves on, included as an extra comparator.
SCHEMES = {
    "baseline": BaselineFTL,
    "mga": MGAFTL,
    "ipu": IPUFTL,
    "delta": DeltaFTL,
}

__all__ = [
    "SSDConfig",
    "GeometryConfig",
    "TimingConfig",
    "ReliabilityConfig",
    "CacheConfig",
    "ScaleSpec",
    "SCALES",
    "paper_config",
    "scaled_config",
    "ReproError",
    "FlashArray",
    "CellMode",
    "Geometry",
    "PPA",
    "RberModel",
    "BCHCode",
    "EccModel",
    "BaselineFTL",
    "MGAFTL",
    "DeltaFTL",
    "IPUFTL",
    "BlockLevel",
    "FrontendConfig",
    "Simulator",
    "SimulationResult",
    "replay",
    "SCHEMES",
    "__version__",
]
