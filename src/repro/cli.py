"""Command-line interface.

::

    repro-ssd list                         # experiment ids
    repro-ssd run fig5 --scale small       # regenerate one figure/table
    repro-ssd all --scale smoke            # regenerate everything
    repro-ssd simulate --trace ts0 --scheme ipu --scale smoke
    repro-ssd faults --rates 0,0.5,1.0     # reliability campaign sweep
    repro-ssd fleet --devices 4 --tenants ts0,usr0:0.5   # fleet campaign
    repro-ssd traces                       # profile summary
    repro-ssd lint                         # determinism/schema analyzer

(also reachable as ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import sys

from . import SCHEMES, __version__
from .analysis.cli import add_lint_arguments, cmd_lint
from .bench import DEFAULT_SCHEMES, DEFAULT_TRACES
from .experiments import EXPERIMENTS, run as run_experiment
from .experiments.cache import ResultCache, default_cache_dir
from .experiments.parallel import resolve_jobs
from .experiments.runner import (
    configure_execution,
    default_context,
    execution_summary,
)
from .metrics.report import format_table
from .traces.profiles import PROFILES
from .units import KIB


def _setup_execution(args: argparse.Namespace) -> None:
    """Apply ``--jobs`` / ``--cache-dir`` / ``--no-cache`` process-wide."""
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    configure_execution(jobs=resolve_jobs(args.jobs), cache=cache)


def _print_execution_summary() -> None:
    """The per-invocation cell / cache counter line."""
    info = execution_summary()
    line = (f"[cells] {info['executed_cells']} simulated "
            f"({info['executed_seconds']:.1f}s replay wall)")
    if info["cache_dir"] is not None:
        line += (f"; cache: {info['cache_hits']} hits / "
                 f"{info['cache_misses']} misses ({info['cache_dir']})")
    print(line)


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [{"id": eid, "builder": fn.__module__.split(".")[-1]}
            for eid, fn in EXPERIMENTS.items()]
    print(format_table(rows, title="Available experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _setup_execution(args)
    kwargs = {}
    if args.qd:
        kwargs["qds"] = tuple(int(q) for q in args.qd.split(","))
    if args.frontend is not None:
        kwargs["frontend"] = args.frontend
    if kwargs and args.experiment != "ext-qd":
        print(f"--qd/--frontend only apply to ext-qd, not {args.experiment}")
        return 2
    artifact = run_experiment(args.experiment, scale=args.scale,
                              seed=args.seed, **kwargs)
    print(artifact.render())
    if args.json:
        artifact.save_json(args.json)
        print(f"(rows written to {args.json})")
    _print_execution_summary()
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    _setup_execution(args)
    for eid in EXPERIMENTS:
        artifact = run_experiment(eid, scale=args.scale, seed=args.seed)
        print(artifact.render())
        print()
    _print_execution_summary()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    print(format_table(
        [{"cache dir": str(cache.root), "entries": len(cache)}],
        title="Simulation result cache"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    _setup_execution(args)
    if args.frontend:
        from .experiments.runner import new_context
        from .frontend import FrontendConfig
        from .frontend.config import DEFAULT_QUEUE_DEPTH
        qd = args.qd or DEFAULT_QUEUE_DEPTH
        ctx = new_context(args.scale, args.seed)
        ctx.frontend = FrontendConfig.from_qd(qd)
        result = ctx.run(args.trace, args.scheme)
        mode = f"frontend, QD={qd}"
    else:
        ctx = default_context(args.scale, args.seed)
        if args.qd:
            from . import SCHEMES as schemes
            from .sim import Simulator
            ftl = schemes[args.scheme](ctx.trace_config(args.trace))
            result = Simulator(ftl).run_closed(ctx.trace(args.trace),
                                               queue_depth=args.qd)
            mode = f"closed loop, QD={args.qd}"
        else:
            result = ctx.run(args.trace, args.scheme)
            mode = "open loop"
    rows = [{"metric": k, "value": v} for k, v in result.summary().items()]
    if args.frontend:
        rows += [
            {"metric": "p99_latency_ms", "value": result.lat_p99_ms},
            {"metric": "cache_read_hits", "value": result.cache_read_hits},
            {"metric": "cache_read_misses", "value": result.cache_read_misses},
            {"metric": "merged_writes", "value": result.merged_writes},
            {"metric": "coalesced_writes", "value": result.coalesced_writes},
            {"metric": "flushes", "value": result.flushes},
        ]
    elif args.qd and result.sim_time_ms:
        rows.append({"metric": "KIOPS",
                     "value": f"{result.n_requests / result.sim_time_ms:.3f}"})
    print(format_table(rows, title=f"{args.scheme} on {args.trace} "
                                   f"({mode}, scale={args.scale})"))
    if args.json:
        import json as _json
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(result.deterministic_dict(), fh,
                       sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        print(f"(deterministic result written to {args.json})")
    _print_execution_summary()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        compare_to_baseline,
        load_baseline,
        profile_cell,
        run_bench,
        save_baseline,
    )

    traces = tuple(args.traces.split(","))
    schemes = tuple(args.schemes.split(","))
    payload = run_bench(scale=args.scale, seed=args.seed, traces=traces,
                        schemes=schemes, repeats=args.repeats)
    rows = [{"trace": c["trace"], "scheme": c["scheme"],
             "requests": c["n_requests"],
             "wall s": f"{c['wall_seconds']:.3f}",
             "ops/sec": f"{c['ops_per_sec']:,.0f}"}
            for c in payload["cells"]]
    agg = payload["aggregate"]
    rows.append({"trace": "(aggregate)", "scheme": "-",
                 "requests": agg["n_requests"],
                 "wall s": f"{agg['wall_seconds']:.3f}",
                 "ops/sec": f"{agg['ops_per_sec']:,.0f}"})
    print(format_table(rows, title=f"Hot-path throughput (scale={args.scale}, "
                                   f"best of {args.repeats})"))
    if args.profile:
        for c in payload["cells"]:
            print(f"\n--- cProfile: {c['trace']}/{c['scheme']} "
                  f"(top {args.profile} by tottime) ---")
            print(profile_cell(c["trace"], c["scheme"], args.scale,
                               args.seed, top=args.profile))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            import json as _json
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"(results written to {args.json})")
    if args.update:
        save_baseline(payload, args.baseline)
        print(f"(baseline updated: {args.baseline})")
        return 0
    if args.check:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"bench: baseline {args.baseline} not found "
                  f"(create it with --update)")
            return 1
        failures = compare_to_baseline(payload, baseline,
                                       max_regression=args.max_regression)
        if failures:
            print(f"bench: {len(failures)} cell(s) regressed beyond "
                  f"{args.max_regression:.0%}:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"bench: all cells within {args.max_regression:.0%} of "
              f"{args.baseline}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    # Lazy: the campaign module pulls in the whole experiments layer.
    from .faults.campaign import campaign_json, run_campaign

    # One cache handle shared with the process-wide defaults, so the
    # summary line sees the campaign's hits/misses.
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    jobs = resolve_jobs(args.jobs)
    configure_execution(jobs=jobs, cache=cache)
    rates = tuple(float(r) for r in args.rates.split(","))
    traces = tuple(args.traces.split(",")) if args.traces else None
    schemes = tuple(args.schemes.split(","))
    payload = run_campaign(rates=rates, scale=args.scale, seed=args.seed,
                           traces=traces, schemes=schemes,
                           jobs=jobs, cache=cache)
    rows = []
    for scheme in schemes:
        for point in payload["curves"][scheme]:
            rows.append({
                "scheme": scheme,
                "rate": f"{point['rate']:g}",
                "avg lat ms": f"{point['avg_latency_ms']:.4f}",
                "retries": point["read_retries"],
                "uncorr": point["uncorrectable_reads"],
                "reloc": point["fault_relocations"],
                "prog fail": point["program_failures"],
                "retired": point["retired_blocks"],
                "pwr loss": point["power_loss_events"],
                "recovery ms": f"{point['recovery_ms']:.2f}",
            })
    print(format_table(rows, title=f"Fault-injection degradation curves "
                                   f"(scale={args.scale}, seed={args.seed})"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(campaign_json(payload))
        print(f"(campaign written to {args.json})")
    _print_execution_summary()
    return 0


def _parse_tenants(text: str):
    """``profile[:weight]`` comma list -> tuple of TenantSpec."""
    from .fleet import TenantSpec

    tenants = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if ":" in item:
            name, weight = item.split(":", 1)
            tenants.append(TenantSpec(name, float(weight)))
        else:
            tenants.append(TenantSpec(item))
    return tuple(tenants)


def _cmd_fleet(args: argparse.Namespace) -> int:
    # Lazy: the fleet layer pulls in the whole experiments stack.
    from .fleet import FleetConfig, run_campaign
    from .fleet.campaign import campaign_json

    cfg = FleetConfig(
        n_devices=args.devices,
        tenants=_parse_tenants(args.tenants),
        scheme=args.scheme,
        scale=args.scale,
        seed=args.seed,
        n_epochs=args.epochs,
        epoch_requests=args.epoch_requests,
        stripe_bytes=args.stripe_kib * KIB,
        fault_rate=args.fault_rate,
    ).validate()
    cache_dir = None
    if not args.no_cache:
        cache_dir = str(args.cache_dir or default_cache_dir())
    campaign = run_campaign(
        cfg, jobs=resolve_jobs(args.jobs), cache_dir=cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        stop_after_epoch=args.stop_after_epoch)
    if campaign is None:
        print(f"[fleet] paused before epoch {args.stop_after_epoch}; "
              f"snapshots in {args.checkpoint_dir} — rerun without "
              f"--stop-after-epoch to finish")
        return 0
    rows = []
    for rec in campaign["epochs"]:
        rows.append({
            "epoch": rec["epoch"],
            "requests": rec["n_requests"],
            "p50 ms": f"{rec['lat_p50_ms']:.4f}",
            "p99 ms": f"{rec['lat_p99_ms']:.4f}",
            "p999 ms": f"{rec['lat_p999_ms']:.4f}",
            "retired": rec["retired_blocks"],
            "cap loss": f"{rec['capacity_loss']:.4%}",
        })
    print(format_table(
        rows, title=f"Fleet campaign ({cfg.n_devices} devices, "
                    f"scheme={cfg.scheme}, scale={cfg.scale}, "
                    f"seed={cfg.seed})"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(campaign_json(campaign))
        print(f"(campaign written to {args.json})")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    rows = [
        {
            "trace": p.name,
            "# req (paper)": f"{p.n_requests:,}",
            "write ratio": f"{p.write_ratio:.1%}",
            "write size": f"{p.mean_write_bytes / KIB:.1f}KB",
            "hot write": f"{p.hot_write_ratio:.1%}",
            "<=4K updates": f"{p.update_size_probs[0]:.1%}",
        }
        for p in PROFILES.values()
    ]
    print(format_table(rows, title="Evaluation trace profiles (Tables 1 & 3)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro-ssd",
        description=("Reproduction of 'Intra-page Cache Update in SLC-mode "
                     "with Partial Programming in High Density SSDs' "
                     "(ICPP 2021)"),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_execution_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the simulation fan-out "
                            "(default: REPRO_JOBS or CPU count; 0 = auto)")
        p.add_argument("--cache-dir", metavar="DIR",
                       help="on-disk result cache location "
                            "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
        p.add_argument("--no-cache", action="store_true",
                       help="simulate every cell, ignore the result cache")

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate one table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="small",
                       choices=("smoke", "small", "medium", "paper"))
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--json", metavar="PATH",
                       help="also write the artifact rows as JSON")
    p_run.add_argument("--qd", metavar="Q1,Q2", default=None,
                       help="queue depths for the ext-qd sweep "
                            "(comma-separated; default 1,4,16,64)")
    p_run.add_argument("--frontend", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="include/skip the device front-end rows in the "
                            "ext-qd sweep (default: include)")
    add_execution_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_all = sub.add_parser("all", aliases=["run-all"],
                           help="regenerate every table/figure")
    p_all.add_argument("--scale", default="small",
                       choices=("smoke", "small", "medium", "paper"))
    p_all.add_argument("--seed", type=int, default=1)
    add_execution_flags(p_all)
    p_all.set_defaults(fn=_cmd_all)

    p_sim = sub.add_parser("simulate", help="replay one trace/scheme pair")
    p_sim.add_argument("--trace", default="ts0", choices=sorted(PROFILES))
    p_sim.add_argument("--scheme", default="ipu", choices=sorted(SCHEMES))
    p_sim.add_argument("--scale", default="smoke",
                       choices=("smoke", "small", "medium", "paper"))
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--qd", type=int, default=0, metavar="DEPTH",
                       help="closed-loop replay at this queue depth "
                            "(0 = open-loop timestamp replay); with "
                            "--frontend, the scheduler's queue depth")
    p_sim.add_argument("--frontend", action="store_true",
                       help="replay through the device front-end (write "
                            "buffer + multi-queue scheduler)")
    p_sim.add_argument("--json", metavar="PATH",
                       help="write the deterministic result dict as "
                            "canonical JSON (byte-stable across replays)")
    add_execution_flags(p_sim)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_bench = sub.add_parser(
        "bench", help="measure hot-path throughput (ops/sec per cell)")
    p_bench.add_argument("--scale", default="smoke",
                         choices=("smoke", "small", "medium", "paper"))
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--traces", default=",".join(DEFAULT_TRACES),
                         metavar="T1,T2", help="comma-separated trace names")
    p_bench.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES),
                         metavar="S1,S2", help="comma-separated scheme names")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="measurement repeats per cell (best wins)")
    p_bench.add_argument("--profile", type=int, default=0, metavar="N",
                         help="also cProfile each cell and dump the top N "
                              "functions by tottime")
    p_bench.add_argument("--json", metavar="PATH",
                         help="write the measurement payload as JSON")
    p_bench.add_argument("--baseline", default="BENCH_hotpath.json",
                         metavar="PATH", help="committed reference file")
    p_bench.add_argument("--check", action="store_true",
                         help="fail when a cell regresses vs the baseline")
    p_bench.add_argument("--update", action="store_true",
                         help="rewrite the baseline with this run")
    p_bench.add_argument("--max-regression", type=float, default=0.30,
                         metavar="FRAC",
                         help="allowed per-cell ops/sec drop for --check "
                              "(default 0.30)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_faults = sub.add_parser(
        "faults", help="run a fault-injection reliability campaign")
    p_faults.add_argument("--rates", default="0,0.5,1.0", metavar="R1,R2",
                          help="comma-separated fault-rate sweep points "
                               "(0 = fault-free reference point)")
    p_faults.add_argument("--scale", default="smoke",
                          choices=("smoke", "small", "medium", "paper"))
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--traces", default=None, metavar="T1,T2",
                          help="comma-separated trace names (default: all)")
    p_faults.add_argument("--schemes", default="baseline,mga,ipu",
                          metavar="S1,S2", help="comma-separated scheme names")
    p_faults.add_argument("--json", metavar="PATH",
                          help="write the degradation curves as canonical "
                               "JSON (byte-stable for a given seed)")
    add_execution_flags(p_faults)
    p_faults.set_defaults(fn=_cmd_faults)

    p_fleet = sub.add_parser(
        "fleet", help="run a sharded multi-device fleet campaign")
    p_fleet.add_argument("--devices", type=int, default=2, metavar="N",
                         help="devices in the array (default: 2)")
    p_fleet.add_argument("--tenants", default="ts0", metavar="P[:W],...",
                         help="tenant mix as profile[:weight] entries, "
                              "e.g. ts0,usr0:0.5 (default: ts0)")
    p_fleet.add_argument("--scheme", default="ipu",
                         choices=sorted(SCHEMES))
    p_fleet.add_argument("--scale", default="smoke",
                         choices=("smoke", "small", "medium"))
    p_fleet.add_argument("--seed", type=int, default=1)
    p_fleet.add_argument("--epochs", type=int, default=4, metavar="N",
                         help="campaign epochs (the aging axis)")
    p_fleet.add_argument("--epoch-requests", type=int, default=4096,
                         metavar="N", help="fleet-wide requests per epoch")
    p_fleet.add_argument("--stripe-kib", type=int, default=256, metavar="K",
                         help="sharding stripe size in KiB (default: 256)")
    p_fleet.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                         help="fault-injection rate multiplier (0 = off)")
    p_fleet.add_argument("--checkpoint-dir", metavar="DIR",
                         help="snapshot device replays here and resume "
                              "from the newest snapshots on rerun")
    p_fleet.add_argument("--checkpoint-every", type=int, default=1,
                         metavar="N", help="snapshot every N epochs "
                                           "(default: 1; 0 = only on stop)")
    p_fleet.add_argument("--stop-after-epoch", type=int, default=None,
                         metavar="E", help="save snapshots and pause the "
                                           "campaign before epoch E")
    p_fleet.add_argument("--json", metavar="PATH",
                         help="write the fleet aggregate as canonical JSON "
                              "(byte-stable for a given config)")
    add_execution_flags(p_fleet)
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_lint = sub.add_parser(
        "lint", help="run the determinism/schema static analyzer")
    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=cmd_lint)

    p_cache = sub.add_parser("cache", help="inspect or clear the result cache")
    p_cache.add_argument("--cache-dir", metavar="DIR",
                         help="cache location (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    p_cache.set_defaults(fn=_cmd_cache)

    sub.add_parser("traces", help="show trace profiles").set_defaults(fn=_cmd_traces)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output was piped into something that closed early (| head).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
