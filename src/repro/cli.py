"""Command-line interface.

::

    repro-ssd list                         # experiment ids
    repro-ssd run fig5 --scale small       # regenerate one figure/table
    repro-ssd all --scale smoke            # regenerate everything
    repro-ssd simulate --trace ts0 --scheme ipu --scale smoke
    repro-ssd traces                       # profile summary

(also reachable as ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import sys

from . import SCHEMES, __version__
from .experiments import EXPERIMENTS, run as run_experiment
from .experiments.runner import default_context
from .metrics.report import format_table
from .traces.profiles import PROFILES
from .units import KIB


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [{"id": eid, "builder": fn.__module__.split(".")[-1]}
            for eid, fn in EXPERIMENTS.items()]
    print(format_table(rows, title="Available experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    artifact = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(artifact.render())
    if args.json:
        artifact.save_json(args.json)
        print(f"(rows written to {args.json})")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for eid in EXPERIMENTS:
        artifact = run_experiment(eid, scale=args.scale, seed=args.seed)
        print(artifact.render())
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    ctx = default_context(args.scale, args.seed)
    if args.qd:
        from . import SCHEMES as schemes
        from .sim import Simulator
        ftl = schemes[args.scheme](ctx.trace_config(args.trace))
        result = Simulator(ftl).run_closed(ctx.trace(args.trace),
                                           queue_depth=args.qd)
        mode = f"closed loop, QD={args.qd}"
    else:
        result = ctx.run(args.trace, args.scheme)
        mode = "open loop"
    rows = [{"metric": k, "value": v} for k, v in result.summary().items()]
    if args.qd and result.sim_time_ms:
        rows.append({"metric": "KIOPS",
                     "value": f"{result.n_requests / result.sim_time_ms:.3f}"})
    print(format_table(rows, title=f"{args.scheme} on {args.trace} "
                                   f"({mode}, scale={args.scale})"))
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    rows = [
        {
            "trace": p.name,
            "# req (paper)": f"{p.n_requests:,}",
            "write ratio": f"{p.write_ratio:.1%}",
            "write size": f"{p.mean_write_bytes / KIB:.1f}KB",
            "hot write": f"{p.hot_write_ratio:.1%}",
            "<=4K updates": f"{p.update_size_probs[0]:.1%}",
        }
        for p in PROFILES.values()
    ]
    print(format_table(rows, title="Evaluation trace profiles (Tables 1 & 3)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro-ssd",
        description=("Reproduction of 'Intra-page Cache Update in SLC-mode "
                     "with Partial Programming in High Density SSDs' "
                     "(ICPP 2021)"),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate one table/figure")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="small",
                       choices=("smoke", "small", "medium", "paper"))
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--json", metavar="PATH",
                       help="also write the artifact rows as JSON")
    p_run.set_defaults(fn=_cmd_run)

    p_all = sub.add_parser("all", help="regenerate every table/figure")
    p_all.add_argument("--scale", default="small",
                       choices=("smoke", "small", "medium", "paper"))
    p_all.add_argument("--seed", type=int, default=1)
    p_all.set_defaults(fn=_cmd_all)

    p_sim = sub.add_parser("simulate", help="replay one trace/scheme pair")
    p_sim.add_argument("--trace", default="ts0", choices=sorted(PROFILES))
    p_sim.add_argument("--scheme", default="ipu", choices=sorted(SCHEMES))
    p_sim.add_argument("--scale", default="smoke",
                       choices=("smoke", "small", "medium", "paper"))
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--qd", type=int, default=0, metavar="DEPTH",
                       help="closed-loop replay at this queue depth "
                            "(0 = open-loop timestamp replay)")
    p_sim.set_defaults(fn=_cmd_simulate)

    sub.add_parser("traces", help="show trace profiles").set_defaults(fn=_cmd_traces)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output was piped into something that closed early (| head).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
