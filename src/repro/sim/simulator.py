"""Trace replay: drive an FTL scheme over a trace and collect metrics.

One arrival event is scheduled per request.  The arrival handler runs the
FTL synchronously (state changes in arrival order, like a device command
queue), prices the returned operations, reserves chip/channel resources in
issue order, and records the request's response time as the completion of
its last host-serving operation.  GC and wear-levelling operations occupy
the resources — delaying later requests — but do not count toward the
triggering request's own host ops.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass, field, fields

import numpy as np

from ..config import SSDConfig
from ..errors import SimulationError
from ..traces.model import Trace
from ..units import Ms
from .engine import Engine
from .ops import Cause, OpKind
from .resources import ResourceSet
from .timing import TimingModel


@dataclass
class SimulationResult:
    """Everything a replay produces; feeds every figure of the evaluation."""

    #: Fields that depend on host wall-clock time rather than on the
    #: simulated device, and therefore differ between two replays of the
    #: same cell.  Determinism checks and cache-equality comparisons must
    #: ignore them (see :meth:`deterministic_dict`).
    NONDETERMINISTIC_FIELDS = ("wall_seconds", "gc_scan_seconds")

    scheme: str
    trace_name: str
    n_requests: int
    sim_time_ms: Ms
    wall_seconds: float

    #: Per-request response times (ms), split by direction.
    read_latencies: np.ndarray = field(repr=False, default=None)
    write_latencies: np.ndarray = field(repr=False, default=None)

    #: Read-error metric: expected raw bit errors / bits, over host reads.
    read_raw_errors: float = 0.0
    read_bits: int = 0

    erases_slc: int = 0
    erases_mlc: int = 0
    programs_slc: int = 0
    programs_mlc: int = 0
    partial_programs: int = 0
    disturbed_valid_subpages: int = 0

    host_programs_slc: int = 0
    host_programs_mlc: int = 0
    gc_programs_slc: int = 0
    gc_programs_mlc: int = 0
    host_subpages_slc: int = 0
    host_subpages_mlc: int = 0
    gc_subpages_slc: int = 0
    gc_subpages_mlc: int = 0
    level_writes: dict[int, int] = field(default_factory=dict)
    intra_page_updates: int = 0
    upgrade_moves: int = 0
    new_data_writes: int = 0
    update_writes: int = 0
    slc_overflow_chunks: int = 0
    evicted_subpages_to_mlc: int = 0

    slc_gc_collections: int = 0
    slc_page_utilization: float = 0.0
    mlc_gc_collections: int = 0
    gc_scan_seconds: float = 0.0
    gc_scans: int = 0
    #: Candidate blocks examined across all SLC victim selections — the
    #: deterministic, modelled scan-work counter behind Figure 12 (host
    #: wall time ``gc_scan_seconds`` is only a diagnostic).
    gc_scan_blocks: int = 0

    slc_wear_spread: int = 0
    mlc_wear_spread: int = 0
    mapping_table_bytes: int = 0
    metadata_bytes: int = 0

    # Fault-injection degradation counters (repro.faults).  All zero —
    # and bit-identical to pre-fault results — unless a FaultPlan was
    # attached to the FTL.
    read_faults: int = 0
    read_retries: int = 0
    uncorrectable_reads: int = 0
    fault_relocations: int = 0
    program_failures: int = 0
    erase_failures: int = 0
    retired_blocks: int = 0
    power_loss_events: int = 0
    torn_subpages: int = 0
    recovered_subpages: int = 0
    recovery_ms: Ms = 0.0

    # Device front-end counters (repro.frontend).  All zero — and
    # bit-identical to front-end-less results — unless the replay went
    # through FrontendSimulator.
    cache_read_hits: int = 0
    cache_read_misses: int = 0
    merged_writes: int = 0
    coalesced_writes: int = 0
    flushes: int = 0
    flushed_subpages: int = 0
    dropped_subpages: int = 0
    #: Scheduler queue depth of the front-end replay (0 = direct path).
    frontend_queue_depth: int = 0
    #: Response-time percentiles over all requests (front-end replays
    #: only; the direct path keeps the full latency arrays instead).
    lat_p50_ms: Ms = 0.0
    lat_p90_ms: Ms = 0.0
    lat_p99_ms: Ms = 0.0

    # -- headline metrics -------------------------------------------------

    @property
    def avg_latency_ms(self) -> Ms:
        """Mean response time over all requests (Figure 5's headline)."""
        total = len(self.read_latencies) + len(self.write_latencies)
        if total == 0:
            return 0.0
        return float(self.read_latencies.sum() + self.write_latencies.sum()) / total

    @property
    def avg_read_latency_ms(self) -> Ms:
        """Mean read response time."""
        return float(self.read_latencies.mean()) if len(self.read_latencies) else 0.0

    @property
    def avg_write_latency_ms(self) -> Ms:
        """Mean write response time."""
        return float(self.write_latencies.mean()) if len(self.write_latencies) else 0.0

    @property
    def read_error_rate(self) -> float:
        """Expected raw bit errors per bit read (Figures 8 and 14)."""
        return self.read_raw_errors / self.read_bits if self.read_bits else 0.0

    def summary(self) -> dict[str, float]:
        """Flat summary for reports."""
        return {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "requests": self.n_requests,
            "avg_latency_ms": self.avg_latency_ms,
            "avg_read_latency_ms": self.avg_read_latency_ms,
            "avg_write_latency_ms": self.avg_write_latency_ms,
            "read_error_rate": self.read_error_rate,
            "erases_slc": self.erases_slc,
            "erases_mlc": self.erases_mlc,
            "slc_page_utilization": self.slc_page_utilization,
            "mapping_table_bytes": self.mapping_table_bytes,
            "gc_scan_seconds": self.gc_scan_seconds,
        }

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`.

        Latency arrays become float lists and the ``level_writes`` keys
        become strings (JSON objects only key on strings), so the dict
        survives a ``json.dumps``/``json.loads`` round trip unchanged.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("read_latencies", "write_latencies"):
                value = [] if value is None else [float(v) for v in value]
            elif f.name == "level_writes":
                value = {str(k): int(v) for k, v in sorted(value.items())}
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys raise :class:`SimulationError` — a payload written by
        a different result schema must not deserialise silently (the
        on-disk cache guards against this with a schema version too).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown SimulationResult fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in ("read_latencies", "write_latencies"):
            if name in kwargs:
                kwargs[name] = np.asarray(kwargs[name], dtype=np.float64)
        if "level_writes" in kwargs:
            kwargs["level_writes"] = {
                int(k): int(v) for k, v in kwargs["level_writes"].items()}
        return cls(**kwargs)

    def deterministic_dict(self) -> dict:
        """:meth:`to_dict` minus host-wall-clock fields.

        Two replays of the same ``(config, trace, scheme, seed)`` cell —
        sequential, parallel or cache-restored — must agree on this dict
        exactly.
        """
        out = self.to_dict()
        for name in self.NONDETERMINISTIC_FIELDS:
            out.pop(name, None)
        return out


def collect_result(ftl, config: SSDConfig, *, trace_name: str,
                   n_requests: int, sim_time_ms: Ms, wall_seconds: float,
                   read_latencies: np.ndarray, write_latencies: np.ndarray,
                   read_raw_errors: float, read_bits: int,
                   ) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished FTL.

    The single place the FTL/flash/GC counters are harvested — the
    open-loop, closed-loop and front-end replays all end here, so the
    three paths can never drift in which statistics they report.
    """
    flash = ftl.flash
    stats = ftl.stats
    result = SimulationResult(
        scheme=ftl.scheme_name,
        trace_name=trace_name,
        n_requests=n_requests,
        sim_time_ms=sim_time_ms,
        wall_seconds=wall_seconds,
        read_latencies=read_latencies,
        write_latencies=write_latencies,
        read_raw_errors=read_raw_errors,
        read_bits=read_bits,
        erases_slc=flash.erases_slc,
        erases_mlc=flash.erases_mlc,
        programs_slc=flash.programs_slc,
        programs_mlc=flash.programs_mlc,
        partial_programs=flash.partial_programs,
        disturbed_valid_subpages=flash.disturbed_valid_subpages,
        host_programs_slc=stats.host_programs_slc,
        host_programs_mlc=stats.host_programs_mlc,
        gc_programs_slc=stats.gc_programs_slc,
        gc_programs_mlc=stats.gc_programs_mlc,
        host_subpages_slc=stats.host_subpages_slc,
        host_subpages_mlc=stats.host_subpages_mlc,
        gc_subpages_slc=stats.gc_subpages_slc,
        gc_subpages_mlc=stats.gc_subpages_mlc,
        level_writes=dict(stats.level_writes),
        intra_page_updates=stats.intra_page_updates,
        upgrade_moves=stats.upgrade_moves,
        new_data_writes=stats.new_data_writes,
        update_writes=stats.update_writes,
        slc_overflow_chunks=stats.slc_overflow_chunks,
        evicted_subpages_to_mlc=stats.evicted_subpages_to_mlc,
        slc_gc_collections=ftl.slc_gc.stats.collections,
        slc_page_utilization=ftl.slc_gc.stats.page_utilization,
        mlc_gc_collections=ftl.mlc_gc.stats.collections,
        gc_scan_seconds=ftl.slc_gc.policy.scan_seconds,
        gc_scans=ftl.slc_gc.policy.scans,
        gc_scan_blocks=getattr(ftl.slc_gc.policy, "scanned_blocks", 0),
        slc_wear_spread=ftl.slc_wear.spread,
        mlc_wear_spread=ftl.mlc_wear.spread,
    )
    from ..metrics.memory import mapping_breakdown
    breakdown = mapping_breakdown(ftl.scheme_name, config)
    result.mapping_table_bytes = breakdown.mapping_bytes
    result.metadata_bytes = breakdown.metadata_bytes
    _apply_fault_stats(result, ftl)
    return result


def _apply_fault_stats(result: SimulationResult, ftl) -> None:
    """Copy a FaultPlan's degradation counters into the result.

    No-op (fields stay at their zero defaults) when the FTL carries no
    plan, which keeps fault-free results bit-identical to the pre-fault
    schema's."""
    plan = getattr(ftl, "faults", None)
    if plan is None:
        return
    s = plan.stats
    result.read_faults = s.read_faults
    result.read_retries = s.read_retries
    result.uncorrectable_reads = s.uncorrectable_reads
    result.fault_relocations = s.fault_relocations
    result.program_failures = s.program_failures
    result.erase_failures = s.erase_failures
    result.retired_blocks = s.retired_blocks
    result.power_loss_events = s.power_loss_events
    result.torn_subpages = s.torn_subpages
    result.recovered_subpages = s.recovered_subpages
    result.recovery_ms = s.recovery_ms


class Simulator:
    """Replays traces against one FTL instance."""

    def __init__(self, ftl, config: SSDConfig | None = None,
                 observer=None, idle_gc: bool = False,
                 idle_threshold_ms: Ms = 2.0):
        self.ftl = ftl
        self.config = config if config is not None else ftl.config
        #: Optional callable ``(request_index, now_ms)`` invoked after each
        #: request is serviced (e.g. a metrics TimelineRecorder).
        self.observer = observer
        #: Run GC to its restore watermark inside arrival gaps longer than
        #: ``idle_threshold_ms`` (background idle-time collection).
        self.idle_gc = idle_gc
        self.idle_threshold_ms = idle_threshold_ms
        self.geometry = ftl.geometry
        self.timing = TimingModel(self.config, ecc=ftl.ecc, rber=ftl.rber)
        self.resources = ResourceSet(self.geometry)
        self.engine = Engine()
        self._subpage_bits = self.geometry.subpage_size * 8

    def run(self, trace: Trace) -> SimulationResult:
        """Replay ``trace`` and aggregate the paper's metrics.

        :class:`~repro.traces.model.Trace` guarantees nondecreasing
        ``times_ms`` and an open-loop replay only ever schedules arrival
        events, so the event heap is pure overhead here: a direct
        chronological loop visits requests in exactly the order the
        engine would (time, then insertion order) and produces identical
        results.  :class:`~repro.sim.engine.Engine` remains the kernel for
        anything that schedules events dynamically.
        """
        wall_start = time.perf_counter()
        # The replay allocates heavily (one record per physical op) but
        # creates no reference cycles; pausing the cyclic collector for
        # the loop avoids its periodic full-heap scans.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_open(trace, wall_start)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_open(self, trace: Trace, wall_start: float) -> SimulationResult:
        n = len(trace)
        latencies = np.zeros(n, dtype=np.float64)
        is_write = trace.is_write
        read_raw_errors = 0.0
        read_bits = 0

        resources = self.resources
        ftl = self.ftl
        timing = self.timing
        byte_range_to_lsns = self.geometry.byte_range_to_lsns
        pipelined = self.config.timing.pipelined_bus
        observer = self.observer
        idle_gc = self.idle_gc
        idle_threshold = self.idle_threshold_ms
        subpage_bits = self._subpage_bits
        handle_write = ftl.handle_write
        handle_read = ftl.handle_read
        segments_ms = timing.segments_ms
        acquire_pipelined = resources.acquire_pipelined
        hostlike = (Cause.HOST, Cause.TRANSLATION)
        faults_plan = getattr(ftl, "faults", None)
        # One float compare per request when power loss is disabled.
        next_power_loss = (faults_plan.next_power_loss(0.0)
                           if faults_plan is not None else math.inf)

        pair = resources._pair
        erase_ms = timing._erase_ms
        transfer_unit = timing._transfer
        read_ms = timing._read
        write_ms = timing._write
        erase_kind = OpKind.ERASE
        program_kind = OpKind.PROGRAM

        def reserve(op, when):
            if pipelined:
                chip_ms, chan_ms, chip_first = segments_ms(op)
                return acquire_pipelined(
                    op.block_id, when, chip_ms, chan_ms, chip_first)
            # Inlined TimingModel.duration_ms + ResourceSet.acquire_for_block
            # (same arithmetic in the same order — the replay prices every
            # op this way, so the two call frames per op are measurable).
            kind = op.kind
            if kind is erase_kind:
                duration = erase_ms
            else:
                transfer = transfer_unit * (op.transfer_slots or op.n_slots)
                if kind is program_kind:
                    duration = transfer + write_ms[op.is_slc]
                else:
                    duration = read_ms[op.is_slc] + transfer + op.ecc_ms
            chip, channel = pair[op.block_id]
            start = max(when, chip.next_free, channel.next_free)
            end = start + duration
            chip.next_free = end
            chip.busy_ms += duration
            chip.operations += 1
            channel.next_free = end
            channel.busy_ms += duration
            channel.operations += 1
            return start, end

        times = trace.times_ms.tolist()
        offsets = trace.offsets.tolist()
        sizes = trace.sizes.tolist()
        writes = is_write.tolist()
        # Vectorized byte_range_to_lsns: the replay touches every request,
        # so the extent arithmetic (two integer divisions per request) is
        # done once on the whole trace instead of per-call.  Validation
        # matches Geometry.byte_range_to_lsns.
        subpage_size = self.geometry.config.subpage_size
        offs_arr = np.asarray(trace.offsets)
        size_arr = np.asarray(trace.sizes)
        if len(offs_arr) and (offs_arr.min() < 0 or size_arr.min() <= 0):
            for i in range(n):  # defer to the scalar path for the message
                byte_range_to_lsns(offsets[i], sizes[i])
        firsts = (offs_arr // subpage_size).tolist()
        lasts = ((offs_arr + size_arr - 1) // subpage_size + 1).tolist()
        last_arrival = 0.0
        now = 0.0
        for i in range(n):
            now = times[i]
            while now >= next_power_loss:
                # Power loss + mount recovery happen while the device is
                # off: they advance the fault stats (and recovery_ms) but
                # reserve no chip time against in-flight requests.
                faults_plan.power_loss(ftl, next_power_loss, timing)
                next_power_loss = faults_plan.next_power_loss(next_power_loss)
            if idle_gc and now - last_arrival >= idle_threshold:
                for op in ftl.idle_collect(now):
                    reserve(op, now)
            last_arrival = now
            lsns = list(range(firsts[i], lasts[i]))
            write = writes[i]
            if write:
                ops = handle_write(lsns, now)
            else:
                ops = handle_read(lsns, now)
            # Host-serving ops reserve the chips first; GC and
            # wear-levelling traffic runs behind them (background GC),
            # delaying future requests rather than the triggering one.
            complete = now
            for op in ops:
                if op.cause not in hostlike:
                    continue
                _, end = reserve(op, now)
                if end > complete:
                    complete = end
                if (not write and op.kind is OpKind.READ
                        and op.cause is Cause.HOST):
                    read_raw_errors += op.raw_errors
                    read_bits += op.n_slots * subpage_bits
            for op in ops:
                if op.cause in hostlike:
                    continue
                reserve(op, now)
            latencies[i] = complete - now
            if observer is not None:
                observer(i, now)

        return collect_result(
            ftl, self.config,
            trace_name=trace.name,
            n_requests=n,
            sim_time_ms=now,
            wall_seconds=time.perf_counter() - wall_start,
            read_latencies=latencies[~is_write],
            write_latencies=latencies[is_write],
            read_raw_errors=read_raw_errors,
            read_bits=read_bits,
        )

    def run_closed(self, trace: Trace, queue_depth: int = 8) -> SimulationResult:
        """Closed-loop replay: ignore trace timestamps and keep at most
        ``queue_depth`` requests outstanding.

        The standard alternative to open-loop timestamp replay — it
        measures the device's sustainable behaviour rather than its
        response to a fixed arrival process.  Request ``i`` issues when
        request ``i - queue_depth`` completes (FTL state still mutates in
        issue order, as on a real command queue).
        """
        if queue_depth < 1:
            raise SimulationError(f"queue_depth must be >= 1, got {queue_depth}")
        wall_start = time.perf_counter()
        n = len(trace)
        latencies = np.zeros(n, dtype=np.float64)
        completions = np.zeros(n, dtype=np.float64)
        is_write = trace.is_write
        read_raw_errors = 0.0
        read_bits = 0

        resources = self.resources
        ftl = self.ftl
        timing = self.timing
        byte_range_to_lsns = self.geometry.byte_range_to_lsns
        pipelined = self.config.timing.pipelined_bus
        observer = self.observer
        idle_gc = self.idle_gc
        idle_threshold = self.idle_threshold_ms
        last_arrival = [0.0]
        now = 0.0

        for i in range(n):
            if i >= queue_depth:
                now = max(now, completions[i - queue_depth])
            lsns = list(byte_range_to_lsns(int(trace.offsets[i]),
                                           int(trace.sizes[i])))
            write = bool(is_write[i])
            if write:
                ops = ftl.handle_write(lsns, now)
            else:
                ops = ftl.handle_read(lsns, now)
            complete = now
            for op in ops:
                if op.cause not in (Cause.HOST, Cause.TRANSLATION):
                    continue
                if pipelined:
                    chip_ms, chan_ms, chip_first = timing.segments_ms(op)
                    _, end = resources.acquire_pipelined(
                        op.block_id, now, chip_ms, chan_ms, chip_first)
                else:
                    _, end = resources.acquire_for_block(
                        op.block_id, now, timing.duration_ms(op))
                if end > complete:
                    complete = end
                if (not write and op.kind is OpKind.READ
                        and op.cause is Cause.HOST):
                    read_raw_errors += op.raw_errors
                    read_bits += op.n_slots * self._subpage_bits
            for op in ops:
                if op.cause in (Cause.HOST, Cause.TRANSLATION):
                    continue
                if pipelined:
                    chip_ms, chan_ms, chip_first = timing.segments_ms(op)
                    resources.acquire_pipelined(
                        op.block_id, now, chip_ms, chan_ms, chip_first)
                else:
                    resources.acquire_for_block(
                        op.block_id, now, timing.duration_ms(op))
            completions[i] = complete
            latencies[i] = complete - now
            if observer is not None:
                observer(i, now)

        return collect_result(
            ftl, self.config,
            trace_name=trace.name,
            n_requests=n,
            sim_time_ms=float(completions.max()) if n else 0.0,
            wall_seconds=time.perf_counter() - wall_start,
            read_latencies=latencies[~is_write],
            write_latencies=latencies[is_write],
            read_raw_errors=read_raw_errors,
            read_bits=read_bits,
        )


def replay(ftl, trace: Trace, config: SSDConfig | None = None) -> SimulationResult:
    """One-shot convenience: build a simulator and run a trace."""
    return Simulator(ftl, config).run(trace)
