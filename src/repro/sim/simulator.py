"""Trace replay: drive an FTL scheme over a trace and collect metrics.

One arrival event is scheduled per request.  The arrival handler runs the
FTL synchronously (state changes in arrival order, like a device command
queue), prices the returned operations, reserves chip/channel resources in
issue order, and records the request's response time as the completion of
its last host-serving operation.  GC and wear-levelling operations occupy
the resources — delaying later requests — but do not count toward the
triggering request's own host ops.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass, field, fields

import numpy as np

from ..config import SSDConfig
from ..errors import SimulationError
from ..traces.model import Trace
from ..units import Ms
from .engine import Engine
from .ops import Cause, OpKind
from .resources import ResourceSet
from .timing import TimingModel


@dataclass
class SimulationResult:
    """Everything a replay produces; feeds every figure of the evaluation."""

    #: Fields that depend on host wall-clock time rather than on the
    #: simulated device, and therefore differ between two replays of the
    #: same cell.  Determinism checks and cache-equality comparisons must
    #: ignore them (see :meth:`deterministic_dict`).
    NONDETERMINISTIC_FIELDS = ("wall_seconds", "gc_scan_seconds")

    scheme: str
    trace_name: str
    n_requests: int
    sim_time_ms: Ms
    wall_seconds: float

    #: Per-request response times (ms), split by direction.
    read_latencies: np.ndarray = field(repr=False, default=None)
    write_latencies: np.ndarray = field(repr=False, default=None)

    #: Read-error metric: expected raw bit errors / bits, over host reads.
    read_raw_errors: float = 0.0
    read_bits: int = 0

    erases_slc: int = 0
    erases_mlc: int = 0
    programs_slc: int = 0
    programs_mlc: int = 0
    partial_programs: int = 0
    disturbed_valid_subpages: int = 0

    host_programs_slc: int = 0
    host_programs_mlc: int = 0
    gc_programs_slc: int = 0
    gc_programs_mlc: int = 0
    host_subpages_slc: int = 0
    host_subpages_mlc: int = 0
    gc_subpages_slc: int = 0
    gc_subpages_mlc: int = 0
    level_writes: dict[int, int] = field(default_factory=dict)
    intra_page_updates: int = 0
    upgrade_moves: int = 0
    new_data_writes: int = 0
    update_writes: int = 0
    slc_overflow_chunks: int = 0
    evicted_subpages_to_mlc: int = 0

    slc_gc_collections: int = 0
    slc_page_utilization: float = 0.0
    mlc_gc_collections: int = 0
    gc_scan_seconds: float = 0.0
    gc_scans: int = 0
    #: Candidate blocks examined across all SLC victim selections — the
    #: deterministic, modelled scan-work counter behind Figure 12 (host
    #: wall time ``gc_scan_seconds`` is only a diagnostic).
    gc_scan_blocks: int = 0

    slc_wear_spread: int = 0
    mlc_wear_spread: int = 0
    mapping_table_bytes: int = 0
    metadata_bytes: int = 0

    # Fault-injection degradation counters (repro.faults).  All zero —
    # and bit-identical to pre-fault results — unless a FaultPlan was
    # attached to the FTL.
    read_faults: int = 0
    read_retries: int = 0
    uncorrectable_reads: int = 0
    fault_relocations: int = 0
    program_failures: int = 0
    erase_failures: int = 0
    retired_blocks: int = 0
    power_loss_events: int = 0
    torn_subpages: int = 0
    recovered_subpages: int = 0
    recovery_ms: Ms = 0.0

    # Device front-end counters (repro.frontend).  All zero — and
    # bit-identical to front-end-less results — unless the replay went
    # through FrontendSimulator.
    cache_read_hits: int = 0
    cache_read_misses: int = 0
    merged_writes: int = 0
    coalesced_writes: int = 0
    flushes: int = 0
    flushed_subpages: int = 0
    dropped_subpages: int = 0
    #: Scheduler queue depth of the front-end replay (0 = direct path).
    frontend_queue_depth: int = 0
    #: Response-time percentiles over all requests (front-end replays
    #: only; the direct path keeps the full latency arrays instead).
    lat_p50_ms: Ms = 0.0
    lat_p90_ms: Ms = 0.0
    lat_p99_ms: Ms = 0.0

    # Fleet provenance (repro.fleet).  ``-1`` — and bit-identical to
    # pre-fleet results — unless the result came out of a fleet device
    # cell, in which case they record which device produced it and the
    # last fleet epoch it covers.
    fleet_device: int = -1
    fleet_epoch: int = -1

    # -- headline metrics -------------------------------------------------

    @property
    def avg_latency_ms(self) -> Ms:
        """Mean response time over all requests (Figure 5's headline)."""
        total = len(self.read_latencies) + len(self.write_latencies)
        if total == 0:
            return 0.0
        return float(self.read_latencies.sum() + self.write_latencies.sum()) / total

    @property
    def avg_read_latency_ms(self) -> Ms:
        """Mean read response time."""
        return float(self.read_latencies.mean()) if len(self.read_latencies) else 0.0

    @property
    def avg_write_latency_ms(self) -> Ms:
        """Mean write response time."""
        return float(self.write_latencies.mean()) if len(self.write_latencies) else 0.0

    @property
    def read_error_rate(self) -> float:
        """Expected raw bit errors per bit read (Figures 8 and 14)."""
        return self.read_raw_errors / self.read_bits if self.read_bits else 0.0

    def summary(self) -> dict[str, float]:
        """Flat summary for reports."""
        return {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "requests": self.n_requests,
            "avg_latency_ms": self.avg_latency_ms,
            "avg_read_latency_ms": self.avg_read_latency_ms,
            "avg_write_latency_ms": self.avg_write_latency_ms,
            "read_error_rate": self.read_error_rate,
            "erases_slc": self.erases_slc,
            "erases_mlc": self.erases_mlc,
            "slc_page_utilization": self.slc_page_utilization,
            "mapping_table_bytes": self.mapping_table_bytes,
            "gc_scan_seconds": self.gc_scan_seconds,
        }

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`.

        Latency arrays become float lists and the ``level_writes`` keys
        become strings (JSON objects only key on strings), so the dict
        survives a ``json.dumps``/``json.loads`` round trip unchanged.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("read_latencies", "write_latencies"):
                value = [] if value is None else [float(v) for v in value]
            elif f.name == "level_writes":
                value = {str(k): int(v) for k, v in sorted(value.items())}
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys raise :class:`SimulationError` — a payload written by
        a different result schema must not deserialise silently (the
        on-disk cache guards against this with a schema version too).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown SimulationResult fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in ("read_latencies", "write_latencies"):
            if name in kwargs:
                kwargs[name] = np.asarray(kwargs[name], dtype=np.float64)
        if "level_writes" in kwargs:
            kwargs["level_writes"] = {
                int(k): int(v) for k, v in kwargs["level_writes"].items()}
        return cls(**kwargs)

    def deterministic_dict(self) -> dict:
        """:meth:`to_dict` minus host-wall-clock fields.

        Two replays of the same ``(config, trace, scheme, seed)`` cell —
        sequential, parallel or cache-restored — must agree on this dict
        exactly.
        """
        out = self.to_dict()
        for name in self.NONDETERMINISTIC_FIELDS:
            out.pop(name, None)
        return out


def collect_result(ftl, config: SSDConfig, *, trace_name: str,
                   n_requests: int, sim_time_ms: Ms, wall_seconds: float,
                   read_latencies: np.ndarray, write_latencies: np.ndarray,
                   read_raw_errors: float, read_bits: int,
                   ) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished FTL.

    The single place the FTL/flash/GC counters are harvested — the
    open-loop, closed-loop and front-end replays all end here, so the
    three paths can never drift in which statistics they report.
    """
    flash = ftl.flash
    stats = ftl.stats
    result = SimulationResult(
        scheme=ftl.scheme_name,
        trace_name=trace_name,
        n_requests=n_requests,
        sim_time_ms=sim_time_ms,
        wall_seconds=wall_seconds,
        read_latencies=read_latencies,
        write_latencies=write_latencies,
        read_raw_errors=read_raw_errors,
        read_bits=read_bits,
        erases_slc=flash.erases_slc,
        erases_mlc=flash.erases_mlc,
        programs_slc=flash.programs_slc,
        programs_mlc=flash.programs_mlc,
        partial_programs=flash.partial_programs,
        disturbed_valid_subpages=flash.disturbed_valid_subpages,
        host_programs_slc=stats.host_programs_slc,
        host_programs_mlc=stats.host_programs_mlc,
        gc_programs_slc=stats.gc_programs_slc,
        gc_programs_mlc=stats.gc_programs_mlc,
        host_subpages_slc=stats.host_subpages_slc,
        host_subpages_mlc=stats.host_subpages_mlc,
        gc_subpages_slc=stats.gc_subpages_slc,
        gc_subpages_mlc=stats.gc_subpages_mlc,
        level_writes=dict(stats.level_writes),
        intra_page_updates=stats.intra_page_updates,
        upgrade_moves=stats.upgrade_moves,
        new_data_writes=stats.new_data_writes,
        update_writes=stats.update_writes,
        slc_overflow_chunks=stats.slc_overflow_chunks,
        evicted_subpages_to_mlc=stats.evicted_subpages_to_mlc,
        slc_gc_collections=ftl.slc_gc.stats.collections,
        slc_page_utilization=ftl.slc_gc.stats.page_utilization,
        mlc_gc_collections=ftl.mlc_gc.stats.collections,
        gc_scan_seconds=ftl.slc_gc.policy.scan_seconds,
        gc_scans=ftl.slc_gc.policy.scans,
        gc_scan_blocks=getattr(ftl.slc_gc.policy, "scanned_blocks", 0),
        slc_wear_spread=ftl.slc_wear.spread,
        mlc_wear_spread=ftl.mlc_wear.spread,
    )
    from ..metrics.memory import mapping_breakdown
    breakdown = mapping_breakdown(ftl.scheme_name, config)
    result.mapping_table_bytes = breakdown.mapping_bytes
    result.metadata_bytes = breakdown.metadata_bytes
    _apply_fault_stats(result, ftl)
    return result


def _apply_fault_stats(result: SimulationResult, ftl) -> None:
    """Copy a FaultPlan's degradation counters into the result.

    No-op (fields stay at their zero defaults) when the FTL carries no
    plan, which keeps fault-free results bit-identical to the pre-fault
    schema's."""
    plan = getattr(ftl, "faults", None)
    if plan is None:
        return
    s = plan.stats
    result.read_faults = s.read_faults
    result.read_retries = s.read_retries
    result.uncorrectable_reads = s.uncorrectable_reads
    result.fault_relocations = s.fault_relocations
    result.program_failures = s.program_failures
    result.erase_failures = s.erase_failures
    result.retired_blocks = s.retired_blocks
    result.power_loss_events = s.power_loss_events
    result.torn_subpages = s.torn_subpages
    result.recovered_subpages = s.recovered_subpages
    result.recovery_ms = s.recovery_ms


def _source_chunks(source) -> "tuple[str, object]":
    """``(name, iterable-of-Trace-chunks)`` for a trace or stream.

    An in-memory :class:`Trace` becomes a single whole-trace chunk —
    *not* sliced — so the historical one-shot replay path runs exactly
    one ``feed()`` over exactly the arrays it always ran over.
    """
    if isinstance(source, Trace):
        return source.name, (source,)
    chunks = getattr(source, "chunks", None)
    if chunks is None:
        raise SimulationError(
            f"cannot replay {type(source).__name__}: expected a Trace or "
            f"a TraceStream with a chunks() method")
    return source.name, chunks()


class OpenLoopReplay:
    """Resumable open-loop replay: feed trace chunks, harvest a result.

    The checkpointable unit of :mod:`repro.fleet`: everything a paused
    replay needs to continue bit-identically lives on this object — the
    FTL (and through it the flash arrays and any fault plan), the
    chip/channel resource clocks, and the explicit loop-carry state
    (simulated clock, power-loss horizon, the running raw-bit-error
    accumulator whose float addition order must not change).  Pickling
    the driver therefore *is* the checkpoint payload.

    ``feed()`` replays one chunk; chunk boundaries are invisible to the
    simulation (every per-request quantity is computed elementwise), so
    any chunking of a trace yields byte-identical results to a single
    whole-trace feed.  Latencies accumulate per chunk and can be drained
    between feeds (:meth:`drain_window`) for epoch-windowed metrics.
    """

    def __init__(self, ftl, config: SSDConfig | None = None,
                 timing: TimingModel | None = None,
                 resources: ResourceSet | None = None,
                 observer=None, idle_gc: bool = False,
                 idle_threshold_ms: Ms = 2.0):
        self.ftl = ftl
        self.config = config if config is not None else ftl.config
        self.timing = timing if timing is not None else TimingModel(
            self.config, ecc=ftl.ecc, rber=ftl.rber)
        self.resources = (resources if resources is not None
                          else ResourceSet(ftl.geometry))
        self.observer = observer
        self.idle_gc = idle_gc
        self.idle_threshold_ms = idle_threshold_ms
        self._subpage_bits = ftl.geometry.subpage_size * 8

        # Loop-carry state (everything the historical monolithic loop
        # kept in locals across iterations).
        self.n = 0
        self.now = 0.0
        self.last_arrival = 0.0
        self.read_raw_errors = 0.0
        self.read_bits = 0
        faults_plan = getattr(ftl, "faults", None)
        # One float compare per request when power loss is disabled.
        self.next_power_loss = (faults_plan.next_power_loss(0.0)
                                if faults_plan is not None else math.inf)
        # Per-chunk latency/direction arrays since the last drain.
        self._window_lat: list[np.ndarray] = []
        self._window_iw: list[np.ndarray] = []
        # Drained windows, kept so result() still covers the whole run.
        self._done_lat: list[np.ndarray] = []
        self._done_iw: list[np.ndarray] = []

    def feed(self, trace: Trace) -> None:
        """Replay one chunk (absolute timestamps, arrival order)."""
        n = len(trace)
        latencies = np.zeros(n, dtype=np.float64)
        is_write = trace.is_write
        read_raw_errors = self.read_raw_errors
        read_bits = self.read_bits

        resources = self.resources
        ftl = self.ftl
        timing = self.timing
        byte_range_to_lsns = ftl.geometry.byte_range_to_lsns
        pipelined = self.config.timing.pipelined_bus
        observer = self.observer
        idle_gc = self.idle_gc
        idle_threshold = self.idle_threshold_ms
        subpage_bits = self._subpage_bits
        handle_write = ftl.handle_write
        handle_read = ftl.handle_read
        segments_ms = timing.segments_ms
        acquire_pipelined = resources.acquire_pipelined
        hostlike = (Cause.HOST, Cause.TRANSLATION)
        faults_plan = getattr(ftl, "faults", None)
        next_power_loss = self.next_power_loss
        base_index = self.n

        pair = resources._pair
        erase_ms = timing._erase_ms
        transfer_unit = timing._transfer
        read_ms = timing._read
        write_ms = timing._write
        erase_kind = OpKind.ERASE
        program_kind = OpKind.PROGRAM

        def reserve(op, when):
            if pipelined:
                chip_ms, chan_ms, chip_first = segments_ms(op)
                return acquire_pipelined(
                    op.block_id, when, chip_ms, chan_ms, chip_first)
            # Inlined TimingModel.duration_ms + ResourceSet.acquire_for_block
            # (same arithmetic in the same order — the replay prices every
            # op this way, so the two call frames per op are measurable).
            kind = op.kind
            if kind is erase_kind:
                duration = erase_ms
            else:
                transfer = transfer_unit * (op.transfer_slots or op.n_slots)
                if kind is program_kind:
                    duration = transfer + write_ms[op.is_slc]
                else:
                    duration = read_ms[op.is_slc] + transfer + op.ecc_ms
            chip, channel = pair[op.block_id]
            start = max(when, chip.next_free, channel.next_free)
            end = start + duration
            chip.next_free = end
            chip.busy_ms += duration
            chip.operations += 1
            channel.next_free = end
            channel.busy_ms += duration
            channel.operations += 1
            return start, end

        times = trace.times_ms.tolist()
        offsets = trace.offsets.tolist()
        sizes = trace.sizes.tolist()
        writes = is_write.tolist()
        # Vectorized byte_range_to_lsns: the replay touches every request,
        # so the extent arithmetic (two integer divisions per request) is
        # done once on the whole chunk instead of per-call.  Validation
        # matches Geometry.byte_range_to_lsns.
        subpage_size = ftl.geometry.config.subpage_size
        offs_arr = np.asarray(trace.offsets)
        size_arr = np.asarray(trace.sizes)
        if len(offs_arr) and (offs_arr.min() < 0 or size_arr.min() <= 0):
            for i in range(n):  # defer to the scalar path for the message
                byte_range_to_lsns(offsets[i], sizes[i])
        firsts = (offs_arr // subpage_size).tolist()
        lasts = ((offs_arr + size_arr - 1) // subpage_size + 1).tolist()
        last_arrival = self.last_arrival
        now = self.now
        for i in range(n):
            now = times[i]
            while now >= next_power_loss:
                # Power loss + mount recovery happen while the device is
                # off: they advance the fault stats (and recovery_ms) but
                # reserve no chip time against in-flight requests.
                faults_plan.power_loss(ftl, next_power_loss, timing)
                next_power_loss = faults_plan.next_power_loss(next_power_loss)
            if idle_gc and now - last_arrival >= idle_threshold:
                for op in ftl.idle_collect(now):
                    reserve(op, now)
            last_arrival = now
            lsns = list(range(firsts[i], lasts[i]))
            write = writes[i]
            if write:
                ops = handle_write(lsns, now)
            else:
                ops = handle_read(lsns, now)
            # Host-serving ops reserve the chips first; GC and
            # wear-levelling traffic runs behind them (background GC),
            # delaying future requests rather than the triggering one.
            complete = now
            for op in ops:
                if op.cause not in hostlike:
                    continue
                _, end = reserve(op, now)
                if end > complete:
                    complete = end
                if (not write and op.kind is OpKind.READ
                        and op.cause is Cause.HOST):
                    read_raw_errors += op.raw_errors
                    read_bits += op.n_slots * subpage_bits
            for op in ops:
                if op.cause in hostlike:
                    continue
                reserve(op, now)
            latencies[i] = complete - now
            if observer is not None:
                observer(base_index + i, now)

        self.n = base_index + n
        self.now = now
        self.last_arrival = last_arrival
        self.next_power_loss = next_power_loss
        self.read_raw_errors = read_raw_errors
        self.read_bits = read_bits
        if n:
            self._window_lat.append(latencies)
            self._window_iw.append(np.asarray(is_write))

    def drain_window(self) -> tuple[np.ndarray, np.ndarray]:
        """Pop the ``(latencies, is_write)`` accumulated since last drain.

        Epoch-windowed campaigns call this between feeds so per-epoch
        latency distributions come out without holding the whole run's
        arrays; the popped windows still count toward :meth:`result`.
        """
        lat = (np.concatenate(self._window_lat) if self._window_lat
               else np.zeros(0, dtype=np.float64))
        iw = (np.concatenate(self._window_iw) if self._window_iw
              else np.zeros(0, dtype=bool))
        self._done_lat.extend(self._window_lat)
        self._done_iw.extend(self._window_iw)
        self._window_lat = []
        self._window_iw = []
        return lat, iw

    def result(self, trace_name: str, wall_seconds: float = 0.0,
               ) -> SimulationResult:
        """Harvest the run-so-far into a :class:`SimulationResult`."""
        parts_lat = self._done_lat + self._window_lat
        parts_iw = self._done_iw + self._window_iw
        latencies = (np.concatenate(parts_lat) if parts_lat
                     else np.zeros(0, dtype=np.float64))
        is_write = (np.concatenate(parts_iw) if parts_iw
                    else np.zeros(0, dtype=bool))
        return collect_result(
            self.ftl, self.config,
            trace_name=trace_name,
            n_requests=self.n,
            sim_time_ms=self.now,
            wall_seconds=wall_seconds,
            read_latencies=latencies[~is_write],
            write_latencies=latencies[is_write],
            read_raw_errors=self.read_raw_errors,
            read_bits=self.read_bits,
        )


class ClosedLoopReplay:
    """Resumable closed-loop replay (fixed queue depth, no timestamps).

    Same checkpoint contract as :class:`OpenLoopReplay`; the extra carry
    state is the completion ring of the last ``queue_depth`` requests
    (request ``i`` issues when ``i - queue_depth`` completes) and the
    running maximum completion time (completions are not monotonic, so
    the final ``sim_time_ms`` must be carried, not recomputed).
    """

    def __init__(self, ftl, queue_depth: int = 8,
                 config: SSDConfig | None = None,
                 timing: TimingModel | None = None,
                 resources: ResourceSet | None = None,
                 observer=None):
        if queue_depth < 1:
            raise SimulationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.ftl = ftl
        self.queue_depth = queue_depth
        self.config = config if config is not None else ftl.config
        self.timing = timing if timing is not None else TimingModel(
            self.config, ecc=ftl.ecc, rber=ftl.rber)
        self.resources = (resources if resources is not None
                          else ResourceSet(ftl.geometry))
        self.observer = observer
        self._subpage_bits = ftl.geometry.subpage_size * 8

        self.n = 0
        self.now = 0.0
        self.max_completion = 0.0
        self.read_raw_errors = 0.0
        self.read_bits = 0
        #: Completions of the last ``queue_depth`` requests, oldest first.
        self.ring: list[float] = []
        self._window_lat: list[np.ndarray] = []
        self._window_iw: list[np.ndarray] = []
        self._done_lat: list[np.ndarray] = []
        self._done_iw: list[np.ndarray] = []

    def feed(self, trace: Trace) -> None:
        """Replay one chunk at the fixed queue depth."""
        n = len(trace)
        latencies = np.zeros(n, dtype=np.float64)
        is_write = trace.is_write
        read_raw_errors = self.read_raw_errors
        read_bits = self.read_bits
        queue_depth = self.queue_depth
        ring = self.ring
        max_completion = self.max_completion

        resources = self.resources
        ftl = self.ftl
        timing = self.timing
        byte_range_to_lsns = ftl.geometry.byte_range_to_lsns
        pipelined = self.config.timing.pipelined_bus
        observer = self.observer
        base_index = self.n
        now = self.now

        for i in range(n):
            if len(ring) >= queue_depth:
                head = ring.pop(0)
                if head > now:
                    now = head
            lsns = list(byte_range_to_lsns(int(trace.offsets[i]),
                                           int(trace.sizes[i])))
            write = bool(is_write[i])
            if write:
                ops = ftl.handle_write(lsns, now)
            else:
                ops = ftl.handle_read(lsns, now)
            complete = now
            for op in ops:
                if op.cause not in (Cause.HOST, Cause.TRANSLATION):
                    continue
                if pipelined:
                    chip_ms, chan_ms, chip_first = timing.segments_ms(op)
                    _, end = resources.acquire_pipelined(
                        op.block_id, now, chip_ms, chan_ms, chip_first)
                else:
                    _, end = resources.acquire_for_block(
                        op.block_id, now, timing.duration_ms(op))
                if end > complete:
                    complete = end
                if (not write and op.kind is OpKind.READ
                        and op.cause is Cause.HOST):
                    read_raw_errors += op.raw_errors
                    read_bits += op.n_slots * self._subpage_bits
            for op in ops:
                if op.cause in (Cause.HOST, Cause.TRANSLATION):
                    continue
                if pipelined:
                    chip_ms, chan_ms, chip_first = timing.segments_ms(op)
                    resources.acquire_pipelined(
                        op.block_id, now, chip_ms, chan_ms, chip_first)
                else:
                    resources.acquire_for_block(
                        op.block_id, now, timing.duration_ms(op))
            ring.append(complete)
            if complete > max_completion:
                max_completion = complete
            latencies[i] = complete - now
            if observer is not None:
                observer(base_index + i, now)

        self.n = base_index + n
        self.now = now
        self.max_completion = max_completion
        self.read_raw_errors = read_raw_errors
        self.read_bits = read_bits
        if n:
            self._window_lat.append(latencies)
            self._window_iw.append(np.asarray(is_write))

    # Shared window/result plumbing (identical contract to the open loop).
    drain_window = OpenLoopReplay.drain_window

    def result(self, trace_name: str, wall_seconds: float = 0.0,
               ) -> SimulationResult:
        """Harvest the run-so-far into a :class:`SimulationResult`."""
        parts_lat = self._done_lat + self._window_lat
        parts_iw = self._done_iw + self._window_iw
        latencies = (np.concatenate(parts_lat) if parts_lat
                     else np.zeros(0, dtype=np.float64))
        is_write = (np.concatenate(parts_iw) if parts_iw
                    else np.zeros(0, dtype=bool))
        return collect_result(
            self.ftl, self.config,
            trace_name=trace_name,
            n_requests=self.n,
            sim_time_ms=self.max_completion if self.n else 0.0,
            wall_seconds=wall_seconds,
            read_latencies=latencies[~is_write],
            write_latencies=latencies[is_write],
            read_raw_errors=self.read_raw_errors,
            read_bits=self.read_bits,
        )


class Simulator:
    """Replays traces (or trace streams) against one FTL instance."""

    def __init__(self, ftl, config: SSDConfig | None = None,
                 observer=None, idle_gc: bool = False,
                 idle_threshold_ms: Ms = 2.0):
        self.ftl = ftl
        self.config = config if config is not None else ftl.config
        #: Optional callable ``(request_index, now_ms)`` invoked after each
        #: request is serviced (e.g. a metrics TimelineRecorder).
        self.observer = observer
        #: Run GC to its restore watermark inside arrival gaps longer than
        #: ``idle_threshold_ms`` (background idle-time collection).
        self.idle_gc = idle_gc
        self.idle_threshold_ms = idle_threshold_ms
        self.geometry = ftl.geometry
        self.timing = TimingModel(self.config, ecc=ftl.ecc, rber=ftl.rber)
        self.resources = ResourceSet(self.geometry)
        self.engine = Engine()
        self._subpage_bits = self.geometry.subpage_size * 8

    def run(self, trace) -> SimulationResult:
        """Replay a :class:`Trace` or ``TraceStream``, aggregate metrics.

        :class:`~repro.traces.model.Trace` guarantees nondecreasing
        ``times_ms`` and an open-loop replay only ever schedules arrival
        events, so the event heap is pure overhead here: a direct
        chronological loop visits requests in exactly the order the
        engine would (time, then insertion order) and produces identical
        results.  :class:`~repro.sim.engine.Engine` remains the kernel for
        anything that schedules events dynamically.

        A stream is replayed chunk by chunk through the identical loop
        (:class:`OpenLoopReplay`): only one chunk's request columns are
        ever resident, and the results are byte-identical to a
        materialised replay of the same requests.
        """
        wall_start = time.perf_counter()
        # The replay allocates heavily (one record per physical op) but
        # creates no reference cycles; pausing the cyclic collector for
        # the loop avoids its periodic full-heap scans.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            name, chunks = _source_chunks(trace)
            driver = OpenLoopReplay(
                self.ftl, self.config, timing=self.timing,
                resources=self.resources, observer=self.observer,
                idle_gc=self.idle_gc,
                idle_threshold_ms=self.idle_threshold_ms)
            for chunk in chunks:
                driver.feed(chunk)
            return driver.result(
                name, wall_seconds=time.perf_counter() - wall_start)
        finally:
            if gc_was_enabled:
                gc.enable()

    def run_closed(self, trace, queue_depth: int = 8) -> SimulationResult:
        """Closed-loop replay: ignore trace timestamps and keep at most
        ``queue_depth`` requests outstanding.

        The standard alternative to open-loop timestamp replay — it
        measures the device's sustainable behaviour rather than its
        response to a fixed arrival process.  Request ``i`` issues when
        request ``i - queue_depth`` completes (FTL state still mutates in
        issue order, as on a real command queue).  Accepts streams under
        the same chunking contract as :meth:`run`.
        """
        wall_start = time.perf_counter()
        name, chunks = _source_chunks(trace)
        driver = ClosedLoopReplay(
            self.ftl, queue_depth, self.config, timing=self.timing,
            resources=self.resources, observer=self.observer)
        for chunk in chunks:
            driver.feed(chunk)
        return driver.result(
            name, wall_seconds=time.perf_counter() - wall_start)


def replay(ftl, trace: Trace, config: SSDConfig | None = None) -> SimulationResult:
    """One-shot convenience: build a simulator and run a trace."""
    return Simulator(ftl, config).run(trace)
