"""Latency model for flash operations (Table 2).

* page read: media sensing time (mode-dependent) + per-subpage channel
  transfer + BCH decode time (a function of the read subpages' RBER,
  computed by the FTL when it issues the op),
* page program: per-subpage channel transfer + media program time,
* erase: the Table 2 block erase time.

A *pseudo read* is a read of a logical address the trace never wrote:
the data is assumed to pre-exist in the high-density region, priced as an
MLC read at the base (undisturbed) RBER.
"""

from __future__ import annotations

import numpy as np

from ..config import SSDConfig
from ..error import EccModel, RberModel
from ..units import Ms
from .ops import OpKind, OpRecord


class TimingModel:
    """Prices :class:`~repro.sim.ops.OpRecord` instances."""

    def __init__(self, config: SSDConfig,
                 ecc: EccModel | None = None,
                 rber: RberModel | None = None):
        config.validate()
        self.config = config
        self.timing = config.timing
        self.ecc = ecc if ecc is not None else EccModel(config.timing, config.reliability)
        self.rber = rber if rber is not None else RberModel(config.reliability)
        # Table 2 latencies are fixed for a config; hoist them out of the
        # per-operation pricing path (attribute chains are hot here).
        t = self.timing
        self._erase_ms = t.erase_ms
        self._transfer = t.transfer_ms_per_subpage
        self._read = {True: t.slc_read_ms, False: t.mlc_read_ms}
        self._write = {True: t.slc_write_ms, False: t.mlc_write_ms}

    def duration_ms(self, op: OpRecord) -> Ms:
        """Service time of one operation on its chip/channel pair."""
        kind = op.kind
        if kind is OpKind.ERASE:
            return self._erase_ms
        transfer = self._transfer * op.channel_slots
        if kind is OpKind.PROGRAM:
            return transfer + self._write[op.is_slc]
        return self._read[op.is_slc] + transfer + op.ecc_ms

    def segments_ms(self, op: OpRecord) -> tuple[float, float, bool]:
        """(chip_ms, channel_ms, chip_first) for the pipelined bus model.

        ECC decode happens in the controller as data streams off the
        channel, so it is charged to the channel stage of reads.
        """
        kind = op.kind
        if kind is OpKind.ERASE:
            return self._erase_ms, 0.0, True
        transfer = self._transfer * op.channel_slots
        if kind is OpKind.PROGRAM:
            return self._write[op.is_slc], transfer, False
        return self._read[op.is_slc], transfer + op.ecc_ms, True

    def durations_ms(self, ops: "list[OpRecord]") -> np.ndarray:
        """Vectorised :meth:`duration_ms` over an operation batch.

        One gather pass plus elementwise float64 arithmetic — element
        ``i`` equals ``duration_ms(ops[i])`` bit for bit (the summation
        grouping matches the scalar path; tests assert the equivalence).
        Used by batch accounting paths (reports, the bench harness);
        replay keeps the scalar call because it needs each op's end time
        before pricing the next.
        """
        n = len(ops)
        slots = np.fromiter((op.channel_slots for op in ops),
                            dtype=np.float64, count=n)
        slc = np.fromiter((op.is_slc for op in ops), dtype=bool, count=n)
        ecc = np.fromiter((op.ecc_ms for op in ops), dtype=np.float64, count=n)
        is_erase = np.fromiter((op.kind is OpKind.ERASE for op in ops),
                               dtype=bool, count=n)
        is_program = np.fromiter((op.kind is OpKind.PROGRAM for op in ops),
                                 dtype=bool, count=n)
        transfer = self._transfer * slots
        read_ms = np.where(slc, self._read[True], self._read[False])
        write_ms = np.where(slc, self._write[True], self._write[False])
        out = read_ms + transfer + ecc
        out[is_program] = (transfer + write_ms)[is_program]
        out[is_erase] = self._erase_ms
        return out

    def pseudo_read_ecc_ms(self) -> Ms:
        """ECC decode time for never-written (pre-existing MLC) data."""
        base = self.rber.base(self.config.reliability.initial_pe_cycles, slc=False)
        return self.ecc.decode_ms(base)

    def pseudo_read_raw_errors(self, n_slots: int) -> float:
        """Expected raw bit errors of a pseudo read of ``n_slots`` subpages."""
        base = self.rber.base(self.config.reliability.initial_pe_cycles, slc=False)
        return self.ecc.expected_raw_errors(base, n_slots * self.config.geometry.subpage_size)
