"""Latency model for flash operations (Table 2).

* page read: media sensing time (mode-dependent) + per-subpage channel
  transfer + BCH decode time (a function of the read subpages' RBER,
  computed by the FTL when it issues the op),
* page program: per-subpage channel transfer + media program time,
* erase: the Table 2 block erase time.

A *pseudo read* is a read of a logical address the trace never wrote:
the data is assumed to pre-exist in the high-density region, priced as an
MLC read at the base (undisturbed) RBER.
"""

from __future__ import annotations

from ..config import SSDConfig
from ..error import EccModel, RberModel
from .ops import OpKind, OpRecord


class TimingModel:
    """Prices :class:`~repro.sim.ops.OpRecord` instances."""

    def __init__(self, config: SSDConfig,
                 ecc: EccModel | None = None,
                 rber: RberModel | None = None):
        config.validate()
        self.config = config
        self.timing = config.timing
        self.ecc = ecc if ecc is not None else EccModel(config.timing, config.reliability)
        self.rber = rber if rber is not None else RberModel(config.reliability)

    def duration_ms(self, op: OpRecord) -> float:
        """Service time of one operation on its chip/channel pair."""
        t = self.timing
        if op.kind is OpKind.ERASE:
            return t.erase_ms
        transfer = t.transfer_ms_per_subpage * op.channel_slots
        if op.kind is OpKind.PROGRAM:
            return transfer + t.write_ms(op.is_slc)
        return t.read_ms(op.is_slc) + transfer + op.ecc_ms

    def segments_ms(self, op: OpRecord) -> tuple[float, float, bool]:
        """(chip_ms, channel_ms, chip_first) for the pipelined bus model.

        ECC decode happens in the controller as data streams off the
        channel, so it is charged to the channel stage of reads.
        """
        t = self.timing
        if op.kind is OpKind.ERASE:
            return t.erase_ms, 0.0, True
        transfer = t.transfer_ms_per_subpage * op.channel_slots
        if op.kind is OpKind.PROGRAM:
            return t.write_ms(op.is_slc), transfer, False
        return t.read_ms(op.is_slc), transfer + op.ecc_ms, True

    def pseudo_read_ecc_ms(self) -> float:
        """ECC decode time for never-written (pre-existing MLC) data."""
        base = self.rber.base(self.config.reliability.initial_pe_cycles, slc=False)
        return self.ecc.decode_ms(base)

    def pseudo_read_raw_errors(self, n_slots: int) -> float:
        """Expected raw bit errors of a pseudo read of ``n_slots`` subpages."""
        base = self.rber.base(self.config.reliability.initial_pe_cycles, slc=False)
        return self.ecc.expected_raw_errors(base, n_slots * self.config.geometry.subpage_size)
