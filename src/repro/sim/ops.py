"""Flash operation records.

An FTL scheme mutates flash state synchronously and returns a list of
:class:`OpRecord` describing the physical operations the request (plus any
GC or wear-levelling work it triggered) requires.  The replayer prices each
record with the :class:`~repro.sim.timing.TimingModel` and schedules it on
the chip/channel resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..units import Ms


class OpKind(enum.Enum):
    """Physical operation type."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


class Cause(enum.Enum):
    """Why the operation happened."""

    HOST = "host"          #: directly serves the host request
    GC = "gc"              #: garbage-collection traffic
    WEAR = "wear"          #: static wear-levelling traffic
    TRANSLATION = "xlat"   #: demand-paged mapping lookups (extension)
    FAULT = "fault"        #: fault handling (read-reclaim, torn-page repair)


@dataclass(slots=True)
class OpRecord:
    """One physical flash operation to be priced and scheduled.

    Treated as immutable by convention (``dataclasses.replace`` derives
    patched copies); the class is not frozen because replay creates one
    record per physical operation and the frozen ``__init__`` goes
    through ``object.__setattr__`` per field — measurably slower on the
    hot path for no behavioural gain.
    """

    kind: OpKind
    block_id: int
    page: int
    n_slots: int
    is_slc: bool
    cause: Cause
    #: Subpages moved over the channel.  Programs without partial
    #: programming must drive the whole page buffer, so schemes that lack
    #: it transfer all four subpages even for a 4K write; reads and
    #: partial programs transfer only what they touch.  0 means n_slots.
    transfer_slots: int = 0
    #: ECC decode time for reads (already derived from the subpages' RBER).
    ecc_ms: Ms = 0.0
    #: Expected raw bit errors of the read (drives the error-rate metric).
    raw_errors: float = 0.0

    def __post_init__(self) -> None:
        if self.n_slots < 0:
            raise ValueError(f"negative slot count {self.n_slots}")
        if self.ecc_ms < 0 or self.raw_errors < 0:
            raise ValueError("ECC time and raw errors must be non-negative")
        if self.transfer_slots < 0:
            raise ValueError("transfer_slots must be non-negative")

    @property
    def channel_slots(self) -> int:
        """Subpages actually moved over the channel."""
        return self.transfer_slots if self.transfer_slots else self.n_slots

    @property
    def is_host(self) -> bool:
        """True when the op directly serves the host request."""
        return self.cause is Cause.HOST
