"""Flash operation records.

An FTL scheme mutates flash state synchronously and returns a list of
:class:`OpRecord` describing the physical operations the request (plus any
GC or wear-levelling work it triggered) requires.  The replayer prices each
record with the :class:`~repro.sim.timing.TimingModel` and schedules it on
the chip/channel resources.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from ..units import Ms


class OpKind(enum.Enum):
    """Physical operation type."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


class Cause(enum.Enum):
    """Why the operation happened."""

    HOST = "host"          #: directly serves the host request
    GC = "gc"              #: garbage-collection traffic
    WEAR = "wear"          #: static wear-levelling traffic
    TRANSLATION = "xlat"   #: demand-paged mapping lookups (extension)
    FAULT = "fault"        #: fault handling (read-reclaim, torn-page repair)


class OpRecord(NamedTuple):
    """One physical flash operation to be priced and scheduled.

    A named tuple rather than a dataclass: replay creates one record per
    physical operation and ``tuple.__new__`` is the cheapest constructor
    CPython offers, while keeping records genuinely immutable
    (``OpRecord._replace`` derives patched copies).
    """

    kind: OpKind
    block_id: int
    page: int
    n_slots: int
    is_slc: bool
    cause: Cause
    #: Subpages moved over the channel.  Programs without partial
    #: programming must drive the whole page buffer, so schemes that lack
    #: it transfer all four subpages even for a 4K write; reads and
    #: partial programs transfer only what they touch.  0 means n_slots.
    transfer_slots: int = 0
    #: ECC decode time for reads (already derived from the subpages' RBER).
    ecc_ms: Ms = 0.0
    #: Expected raw bit errors of the read (drives the error-rate metric).
    raw_errors: float = 0.0

    @property
    def channel_slots(self) -> int:
        """Subpages actually moved over the channel."""
        return self.transfer_slots if self.transfer_slots else self.n_slots

    @property
    def is_host(self) -> bool:
        """True when the op directly serves the host request."""
        return self.cause is Cause.HOST


def _validating_new(cls, kind, block_id, page, n_slots, is_slc, cause,
                    transfer_slots=0, ecc_ms=0.0, raw_errors=0.0):
    # Single fused branch: the common case pays one comparison chain.
    if n_slots < 0 or ecc_ms < 0.0 or raw_errors < 0.0:
        raise ValueError(
            f"negative OpRecord field: n_slots={n_slots} "
            f"ecc_ms={ecc_ms} raw_errors={raw_errors}")
    return tuple.__new__(cls, (kind, block_id, page, n_slots, is_slc,
                               cause, transfer_slots, ecc_ms, raw_errors))


# ``typing.NamedTuple`` rejects ``__new__`` in the class body, so the
# validating constructor is attached afterwards (``_replace``/``_make``
# bypass it by design — they re-shuffle already-validated records).
OpRecord.__new__ = _validating_new  # type: ignore[method-assign]
