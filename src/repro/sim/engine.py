"""Event-driven simulation kernel.

A classic calendar loop: events are ``(time, priority, seq)``-ordered in a
binary heap, handlers may schedule further events, and the clock only moves
forward.  The trace replayer schedules one *arrival* event per request and
one *completion* event per serviced request; FTL state changes happen
synchronously inside the arrival handler (requests are handled in arrival
order, as on a real device queue), while hardware occupancy is tracked by
:mod:`repro.sim.resources`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError
from ..units import Ms


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback (the public face of a heap entry)."""

    time: Ms
    priority: int
    seq: int
    handler: Callable[[], None] = field(compare=False)


class Engine:
    """Minimal discrete-event engine.

    The heap stores plain ``(time, priority, seq, handler)`` tuples rather
    than :class:`Event` instances: the dataclass-generated ``__lt__`` was
    one of the hottest functions of a replay, while tuple comparison is a
    single C call.  ``seq`` is unique, so the handler never participates
    in a comparison.  Ordering is identical to the Event dataclass
    (handler excluded from comparisons there too).
    """

    def __init__(self):
        self._heap: list[tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now: Ms = 0.0
        self._running = False
        self.processed = 0

    @property
    def now(self) -> Ms:
        """Current simulation time in milliseconds."""
        return self._now

    def schedule(self, time: Ms, handler: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``handler`` to run at ``time``.

        ``priority`` breaks ties at equal times (lower runs first);
        insertion order breaks remaining ties.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}")
        event = Event(time, priority, next(self._seq), handler)
        heapq.heappush(self._heap, (time, priority, event.seq, handler))
        return event

    def schedule_after(self, delay: Ms, handler: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``handler`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, handler, priority)

    def step(self) -> bool:
        """Run the earliest pending event; returns False when idle."""
        if not self._heap:
            return False
        time, _priority, _seq, handler = heapq.heappop(self._heap)
        self._now = time
        handler()
        self.processed += 1
        return True

    def run(self, until: Ms | None = None) -> None:
        """Run events until the queue drains (or past ``until``)."""
        if self._running:
            raise SimulationError("engine re-entered while running")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._heap)
