"""Discrete-event simulation substrate.

A small event-driven kernel (:mod:`repro.sim.engine`), FCFS hardware
resources with busy-time bookkeeping (:mod:`repro.sim.resources`), the
operation/latency model (:mod:`repro.sim.ops`, :mod:`repro.sim.timing`),
and the trace replayer (:mod:`repro.sim.simulator`) that drives an FTL
scheme over a trace and collects the paper's metrics.
"""

from .engine import Engine, Event
from .resources import Resource, ResourceSet
from .ops import OpKind, Cause, OpRecord
from .timing import TimingModel
from .simulator import (
    ClosedLoopReplay,
    OpenLoopReplay,
    SimulationResult,
    Simulator,
    replay,
)

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "ResourceSet",
    "OpKind",
    "Cause",
    "OpRecord",
    "TimingModel",
    "ClosedLoopReplay",
    "OpenLoopReplay",
    "Simulator",
    "SimulationResult",
    "replay",
]
