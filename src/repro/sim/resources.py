"""FCFS hardware resources.

Each flash chip and each channel is a unit-capacity FCFS server: an
operation issued at time ``t`` starts at ``max(t, next_free)`` and occupies
the server for its duration.  This is the queueing model SSDsim uses; it
captures both intra-request parallelism (ops of one request spread over
chips run concurrently) and the head-of-line blocking GC traffic inflicts
on later host operations.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..nand.geometry import Geometry
from ..units import Ms


class Resource:
    """A unit-capacity FCFS server with busy-time accounting."""

    __slots__ = ("name", "next_free", "busy_ms", "operations")

    def __init__(self, name: str):
        self.name = name
        self.next_free: Ms = 0.0
        self.busy_ms: Ms = 0.0
        self.operations = 0

    def acquire(self, earliest: Ms, duration: Ms) -> tuple[Ms, Ms]:
        """Reserve the server; returns ``(start, end)``."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        if earliest < 0:
            raise SimulationError(f"{self.name}: negative issue time {earliest}")
        start = max(earliest, self.next_free)
        end = start + duration
        self.next_free = end
        self.busy_ms += duration
        self.operations += 1
        return start, end

    def utilization(self, horizon_ms: Ms) -> float:
        """Busy fraction over ``[0, horizon_ms]``."""
        if horizon_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / horizon_ms)


class ResourceSet:
    """Chips and channels of a device, addressed through the geometry."""

    def __init__(self, geometry: Geometry):
        self.geometry = geometry
        self.chips = [Resource(f"chip{i}") for i in range(geometry.chips)]
        self.channels = [Resource(f"chan{i}") for i in range(geometry.channels)]
        # The block→chip/channel mapping is fixed modulo arithmetic over a
        # fixed geometry; resolve it once instead of per reservation.
        self._pair = [
            (self.chips[geometry.chip_of(b)], self.channels[geometry.channel_of(b)])
            for b in range(geometry.total_blocks)
        ]

    def chip_for_block(self, block_id: int) -> Resource:
        """Chip server hosting ``block_id``."""
        return self._pair[block_id][0]

    def channel_for_block(self, block_id: int) -> Resource:
        """Channel server hosting ``block_id``."""
        return self._pair[block_id][1]

    def acquire_for_block(self, block_id: int, earliest: Ms,
                          duration: Ms) -> tuple[Ms, Ms]:
        """Reserve chip and channel together for one flash operation.

        The op starts when both servers are free and occupies both for the
        full duration — a first-order model that slightly over-serialises
        the channel but keeps GC blocking behaviour faithful.
        """
        chip, channel = self._pair[block_id]
        start = max(earliest, chip.next_free, channel.next_free)
        end = start + duration
        chip.next_free = end
        chip.busy_ms += duration
        chip.operations += 1
        channel.next_free = end
        channel.busy_ms += duration
        channel.operations += 1
        return start, end

    def acquire_pipelined(self, block_id: int, earliest: Ms,
                          chip_ms: Ms, channel_ms: Ms,
                          chip_first: bool) -> tuple[Ms, Ms]:
        """Two-stage reservation: media occupies only the chip, transfer
        only the channel.

        Reads sense on the chip first and then stream over the channel
        (``chip_first=True``); programs stream the page buffer in before
        the chip programs (``chip_first=False``).  Erases pass
        ``channel_ms=0``.
        """
        if chip_ms < 0 or channel_ms < 0:
            raise SimulationError("negative stage duration")
        chip, channel = self._pair[block_id]
        first, second = (chip, channel) if chip_first else (channel, chip)
        first_ms, second_ms = ((chip_ms, channel_ms) if chip_first
                               else (channel_ms, chip_ms))
        start, mid = first.acquire(earliest, first_ms)
        if second_ms == 0:
            return start, mid
        _, end = second.acquire(mid, second_ms)
        return start, end

    def horizon(self) -> Ms:
        """Latest busy-until time across all servers."""
        latest_chip = max((c.next_free for c in self.chips), default=0.0)
        latest_chan = max((c.next_free for c in self.channels), default=0.0)
        return max(latest_chip, latest_chan)
