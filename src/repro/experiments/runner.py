"""Simulation orchestration for the experiment harnesses.

A :class:`RunContext` fixes the scale and the seed.  For each trace it

1. shrinks the trace to the scale's target request count,
2. **sizes the device to the trace** the way the paper's full-scale setup
   relates to the full traces: the SLC-mode cache comfortably holds the
   trace's *hot* working set (that residency is the premise of any SLC
   cache scheme — the paper's 3.4 GB cache dwarfs an MSR trace's hot set)
   while the cold stream overflows it, and the high-density region is
   sized tight against the written page footprint so eviction churn shows
   up as MLC garbage collection,
3. paces arrivals for a moderate device utilisation, so latency reflects
   contention without saturating the open-loop queues,
4. replays the trace against the requested scheme and memoises the
   :class:`~repro.sim.simulator.SimulationResult`.

At ``paper`` scale the device is the fixed Table 2 configuration (65536
blocks, 5% SLC) and traces replay at full length instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..config import (
    CacheConfig,
    GeometryConfig,
    SCALES,
    SSDConfig,
    ScaleSpec,
    scaled_config,
)
from ..errors import ExperimentError
from ..faults import FaultConfig, attach_faults
from ..frontend import FrontendConfig
from ..sim.simulator import SimulationResult, Simulator
from ..traces.model import Trace
from ..traces.profiles import TRACE_NAMES, TraceProfile, profile
from ..traces.synth import SyntheticTraceGenerator
from ..units import Ms
from .cache import ResultCache, cell_key as _cache_cell_key

#: SLC cache size over the trace's hot-set bytes.
CACHE_OVER_HOTSET = 0.8
#: High-density capacity over the trace's written page footprint.
MLC_OVER_FOOTPRINT = 1.5
#: Minimum SLC blocks per plane (three level actives need room to rotate).
MIN_SLC_PER_PLANE = 1
#: Minimum SLC blocks in total.
MIN_SLC_BLOCKS = 20
#: Minimum MLC blocks per plane.
MIN_MLC_PER_PLANE = 4
#: Target device utilisation for arrival pacing.
TARGET_UTILIZATION = 0.18
#: Effective per-subpage write cost (SLC program + eviction read +
#: MLC program + amortised erase) used by the pacing estimate, in units
#: of (slc_write + transfer).
PACING_WRITE_AMP = 8.0
#: Pilot request count used to measure per-request footprint statistics.
PILOT_REQUESTS = 6_000

#: Scheme names in the paper's presentation order.
SCHEME_ORDER = ("baseline", "mga", "ipu")


def estimate_interarrival_ms(prof: TraceProfile, config: SSDConfig,
                             utilization: float = TARGET_UTILIZATION) -> Ms:
    """Mean inter-arrival time giving roughly the target chip utilisation."""
    t = config.timing
    subpage = config.geometry.subpage_size
    w_sub = max(1.0, prof.mean_write_bytes / subpage)
    r_sub = max(1.0, min(w_sub, 4.0))
    chip_ms_write = w_sub * (t.slc_write_ms + t.transfer_ms_per_subpage) * PACING_WRITE_AMP
    chip_ms_read = r_sub * (t.mlc_read_ms + t.transfer_ms_per_subpage + 0.03)
    per_req = prof.write_ratio * chip_ms_write + (1 - prof.write_ratio) * chip_ms_read
    chips = config.geometry.chips
    return max(0.02, per_req / (chips * utilization))


@dataclass
class RunContext:
    """Scale + seed + memoised results for one experiment session."""

    scale: str = "small"
    seed: int = 1
    #: Trace-length multiplier (the P/E sweep uses shorter runs).
    length_factor: float = 1.0
    #: Worker-process count for :meth:`run_cells`/:meth:`run_matrix`
    #: (None or 1 = sequential; 0 = one worker per CPU).
    jobs: int | None = None
    #: Optional shared on-disk result cache, consulted before any cell is
    #: simulated and populated after.
    cache: ResultCache | None = field(default=None, repr=False, compare=False)
    #: Optional fault-injection config (:mod:`repro.faults`).  A disabled
    #: config is canonicalised to ``None`` everywhere (cache keys, plan
    #: attachment), so rate-0 campaigns reproduce — and share cache
    #: entries with — ordinary fault-free runs bit-identically.
    faults: FaultConfig | None = None
    #: Optional device front-end config (:mod:`repro.frontend`).  Same
    #: canonicalisation contract as ``faults``: a disabled config is
    #: treated as ``None`` everywhere, so carrying one is bit-identical
    #: to — and shares cache entries with — the direct replay path.
    frontend: FrontendConfig | None = None
    #: Cells this context actually simulated (cache hits excluded) and the
    #: wall-clock seconds those replays took — the CLI summary counters.
    executed_cells: int = field(default=0, compare=False)
    executed_seconds: float = field(default=0.0, compare=False)
    _results: dict = field(default_factory=dict, repr=False)
    _traces: dict = field(default_factory=dict, repr=False)
    _configs: dict = field(default_factory=dict, repr=False)

    @property
    def spec(self) -> ScaleSpec:
        """The resolved scale preset."""
        if self.scale not in SCALES:
            raise ExperimentError(
                f"unknown scale {self.scale!r}; available: {', '.join(SCALES)}")
        return SCALES[self.scale]

    def config(self, pe: int | None = None) -> SSDConfig:
        """A generic scaled configuration (not tied to a trace)."""
        cfg = scaled_config(self.spec, seed=self.seed)
        if pe is not None:
            cfg = cfg.with_pe_cycles(pe)
        return cfg

    # -- trace sizing -----------------------------------------------------

    def trace_requests(self, trace_name: str) -> int:
        """Request count for this scale (paper scale replays in full)."""
        prof = profile(trace_name)
        if self.scale == "paper":
            n = min(prof.n_requests, self.spec.max_requests)
        else:
            n = self.spec.target_requests
        n = int(n * self.length_factor)
        return max(1_000, min(self.spec.max_requests, n))

    def trace_config(self, trace_name: str, pe: int | None = None) -> SSDConfig:
        """Device configuration sized for this trace (memoised).

        SLC cache ~= ``CACHE_OVER_HOTSET`` x hot-set bytes; high-density
        region ~= ``MLC_OVER_FOOTPRINT`` x written page footprint.  The
        paper scale skips auto-sizing and uses Table 2 verbatim.
        """
        key = (trace_name, pe)
        if key in self._configs:
            return self._configs[key]
        if self.scale == "paper":
            cfg = self.config(pe)
            self._configs[key] = cfg
            return cfg

        spec = self.spec
        prof = profile(trace_name)
        n = self.trace_requests(trace_name)
        pilot_n = min(PILOT_REQUESTS, n)
        gen = SyntheticTraceGenerator(prof, n_requests=pilot_n, seed=self.seed)
        gen.generate()
        ext = gen.extents
        scale_factor = n / pilot_n

        base = SSDConfig()
        page_size = base.geometry.page_size
        slc_block_bytes = base.geometry.slc_pages_per_block * page_size
        mlc_block_bytes = base.geometry.mlc_pages_per_block * page_size
        hotset_bytes = float(ext.sizes[ext.is_hot].sum()) * scale_factor
        page_fp = ext.page_footprint_bytes(page_size) * scale_factor

        planes = spec.channels * spec.chips_per_channel * spec.planes_per_chip
        slc_per_plane = max(
            MIN_SLC_PER_PLANE,
            math.ceil(max(MIN_SLC_BLOCKS, CACHE_OVER_HOTSET * hotset_bytes
                          / slc_block_bytes) / planes),
        )
        mlc_per_plane = max(
            MIN_MLC_PER_PLANE,
            math.ceil(MLC_OVER_FOOTPRINT * page_fp / mlc_block_bytes / planes),
        )
        blocks_per_plane = slc_per_plane + mlc_per_plane
        geometry = GeometryConfig(
            channels=spec.channels,
            chips_per_channel=spec.chips_per_channel,
            planes_per_chip=spec.planes_per_chip,
            total_blocks=blocks_per_plane * planes,
        )
        cache = replace(CacheConfig(), slc_ratio=slc_per_plane / blocks_per_plane)
        cfg = SSDConfig(geometry=geometry, cache=cache, seed=self.seed).validate()
        if pe is not None:
            cfg = cfg.with_pe_cycles(pe)
        self._configs[key] = cfg
        return cfg

    def trace(self, trace_name: str) -> Trace:
        """The (memoised) synthetic trace for this context."""
        if trace_name not in self._traces:
            prof = profile(trace_name)
            cfg = self.trace_config(trace_name)
            gen = SyntheticTraceGenerator(
                prof,
                n_requests=self.trace_requests(trace_name),
                seed=self.seed,
                mean_interarrival_ms=estimate_interarrival_ms(prof, cfg),
            )
            self._traces[trace_name] = gen.generate()
        return self._traces[trace_name]

    # -- simulation --------------------------------------------------------------

    def _active_faults(self) -> FaultConfig | None:
        """The fault config when it can actually fire, else ``None``."""
        faults = self.faults
        if faults is None or not faults.enabled:
            return None
        return faults

    def _active_frontend(self) -> FrontendConfig | None:
        """The front-end config when enabled, else ``None``."""
        frontend = self.frontend
        if frontend is None or not frontend.enabled:
            return None
        return frontend

    def cell_key(self, trace_name: str, scheme: str, pe: int | None = None,
                 ) -> str:
        """Content hash identifying one simulation cell for the on-disk
        cache: canonicalised config + trace parameters + scheme + context
        identity (see :func:`repro.experiments.cache.cell_key`)."""
        prof = profile(trace_name)
        faults = self._active_faults()
        frontend = self._active_frontend()
        return _cache_cell_key(
            self.trace_config(trace_name, pe), prof,
            self.trace_requests(trace_name),
            estimate_interarrival_ms(prof, self.trace_config(trace_name)),
            scheme, self.scale, self.seed, self.length_factor, pe,
            faults=faults.to_dict() if faults is not None else None,
            frontend=frontend.to_dict() if frontend is not None else None)

    def _check_scheme(self, scheme: str) -> None:
        from .. import SCHEMES
        if scheme not in SCHEMES:
            raise ExperimentError(
                f"unknown scheme {scheme!r}; available: {', '.join(SCHEMES)}")

    def run(self, trace_name: str, scheme: str, pe: int | None = None,
            ) -> SimulationResult:
        """Replay ``trace_name`` under ``scheme`` (memoised and cached)."""
        from .. import SCHEMES
        self._check_scheme(scheme)
        key = (trace_name, scheme, pe)
        if key in self._results:
            return self._results[key]
        ck = None
        if self.cache is not None:
            ck = self.cell_key(trace_name, scheme, pe)
            payload = self.cache.get(ck)
            if payload is not None:
                self._results[key] = SimulationResult.from_dict(payload)
                return self._results[key]
        cfg = self.trace_config(trace_name, pe)
        ftl = SCHEMES[scheme](cfg)
        attach_faults(ftl, self._active_faults(), seed=self.seed)
        frontend = self._active_frontend()
        if frontend is not None:
            from ..frontend.simulate import FrontendSimulator
            result = FrontendSimulator(ftl, frontend).run(self.trace(trace_name))
        else:
            result = Simulator(ftl).run(self.trace(trace_name))
        self.executed_cells += 1
        self.executed_seconds += result.wall_seconds
        if self.cache is not None:
            self.cache.put(ck, result.to_dict())
        self._results[key] = result
        return result

    def run_cells(self, cells, jobs: int | None = None) -> None:
        """Memoise every ``(trace, scheme, pe)`` cell, in parallel.

        Cells already memoised are skipped; cells present in the on-disk
        cache are restored in-process (counted as hits); only the
        remainder fans out over worker processes.  With an effective
        worker count of 1 this is plain sequential :meth:`run`.
        """
        from . import parallel
        cells = [(t, s, pe) for (t, s, pe) in cells]
        for _, scheme, _ in cells:
            self._check_scheme(scheme)
        jobs = jobs if jobs is not None else self.jobs
        n_workers = parallel.resolve_jobs(jobs) if jobs is not None else 1
        if n_workers <= 1:
            for trace_name, scheme, pe in cells:
                self.run(trace_name, scheme, pe=pe)
            return
        pending: list[tuple[tuple, str]] = []
        for key in cells:
            if key in self._results:
                continue
            trace_name, scheme, pe = key
            if self.cache is not None:
                ck = self.cell_key(trace_name, scheme, pe)
                payload = self.cache.get(ck)
                if payload is not None:
                    self._results[key] = SimulationResult.from_dict(payload)
                    continue
            pending.append(key)
        if not pending:
            return
        cache_dir = str(self.cache.root) if self.cache is not None else None
        faults = self._active_faults()
        faults_json = faults.to_json() if faults is not None else None
        frontend = self._active_frontend()
        frontend_json = frontend.to_json() if frontend is not None else None
        specs = [
            parallel.CellSpec(scale=self.scale, seed=self.seed,
                              trace=t, scheme=s, pe=pe,
                              length_factor=self.length_factor,
                              cache_dir=cache_dir,
                              faults_json=faults_json,
                              frontend_json=frontend_json)
            for (t, s, pe) in pending
        ]
        for key, payload in zip(pending, parallel.run_cells(specs, n_workers)):
            result = SimulationResult.from_dict(payload)
            self.executed_cells += 1
            self.executed_seconds += result.wall_seconds
            self._results[key] = result

    def run_matrix(self, traces: "tuple[str, ...] | None" = None,
                   schemes: "tuple[str, ...]" = SCHEME_ORDER,
                   pe: int | None = None, jobs: int | None = None,
                   ) -> dict[tuple[str, str], SimulationResult]:
        """Replay every (trace, scheme) pair; returns results keyed by pair."""
        names = traces if traces is not None else TRACE_NAMES
        self.run_cells([(t, s, pe) for t in names for s in schemes], jobs=jobs)
        return {
            (t, s): self._results[(t, s, pe)]
            for t in names
            for s in schemes
        }


#: Default shared context: the benchmark suite regenerates every figure
#: from one simulation sweep.
_DEFAULT_CONTEXTS: dict[tuple[str, int], RunContext] = {}

#: Every pool of long-lived contexts :func:`configure_execution` manages
#: (the sweep module registers its own; ad-hoc ``RunContext``s are not
#: tracked).
_CONTEXT_POOLS: list[dict] = [_DEFAULT_CONTEXTS]

#: Execution settings applied to every context created via
#: :func:`new_context` / :func:`default_context`.
_EXEC_DEFAULTS: dict = {"jobs": None, "cache": None}

_UNSET = object()


def register_context_pool(pool: dict) -> dict:
    """Let :func:`configure_execution` manage another memoised-context
    dict (returns it for assignment convenience)."""
    _CONTEXT_POOLS.append(pool)
    return pool


def configure_execution(jobs=_UNSET, cache=_UNSET) -> None:
    """Set the process-wide parallelism / cache defaults.

    Applies both to contexts created from now on and to the already
    memoised shared contexts, so ``--jobs``/``--cache-dir`` reach the
    builders no matter which order figures run in.
    """
    for pool in _CONTEXT_POOLS:
        for ctx in pool.values():
            if jobs is not _UNSET:
                ctx.jobs = jobs
            if cache is not _UNSET:
                ctx.cache = cache
    if jobs is not _UNSET:
        _EXEC_DEFAULTS["jobs"] = jobs
    if cache is not _UNSET:
        _EXEC_DEFAULTS["cache"] = cache


def new_context(scale: str = "small", seed: int = 1,
                length_factor: float = 1.0) -> RunContext:
    """A context carrying the process-wide execution defaults."""
    return RunContext(scale=scale, seed=seed, length_factor=length_factor,
                      jobs=_EXEC_DEFAULTS["jobs"],
                      cache=_EXEC_DEFAULTS["cache"])


def default_context(scale: str = "small", seed: int = 1) -> RunContext:
    """Process-wide memoised context per (scale, seed)."""
    key = (scale, seed)
    if key not in _DEFAULT_CONTEXTS:
        _DEFAULT_CONTEXTS[key] = new_context(scale=scale, seed=seed)
    return _DEFAULT_CONTEXTS[key]


def execution_summary() -> dict:
    """Aggregate cell/cache counters over the managed contexts (the
    numbers behind the CLI summary line)."""
    contexts = [ctx for pool in _CONTEXT_POOLS for ctx in pool.values()]
    cache = _EXEC_DEFAULTS["cache"]
    return {
        "executed_cells": sum(c.executed_cells for c in contexts),
        "executed_seconds": sum(c.executed_seconds for c in contexts),
        "cache_hits": cache.stats.hits if cache is not None else 0,
        "cache_misses": cache.stats.misses if cache is not None else 0,
        "cache_stores": cache.stats.stores if cache is not None else 0,
        "cache_dir": str(cache.root) if cache is not None else None,
    }


def run_one(trace_name: str, scheme: str, scale: str = "small",
            seed: int = 1, pe: int | None = None) -> SimulationResult:
    """Convenience wrapper over the shared context."""
    return default_context(scale, seed).run(trace_name, scheme, pe=pe)


def run_matrix(scale: str = "small", seed: int = 1,
               traces: "tuple[str, ...] | None" = None,
               schemes: "tuple[str, ...]" = SCHEME_ORDER,
               pe: int | None = None):
    """Convenience wrapper over the shared context."""
    return default_context(scale, seed).run_matrix(traces, schemes, pe=pe)
