"""Simulation orchestration for the experiment harnesses.

A :class:`RunContext` fixes the scale and the seed.  For each trace it

1. shrinks the trace to the scale's target request count,
2. **sizes the device to the trace** the way the paper's full-scale setup
   relates to the full traces: the SLC-mode cache comfortably holds the
   trace's *hot* working set (that residency is the premise of any SLC
   cache scheme — the paper's 3.4 GB cache dwarfs an MSR trace's hot set)
   while the cold stream overflows it, and the high-density region is
   sized tight against the written page footprint so eviction churn shows
   up as MLC garbage collection,
3. paces arrivals for a moderate device utilisation, so latency reflects
   contention without saturating the open-loop queues,
4. replays the trace against the requested scheme and memoises the
   :class:`~repro.sim.simulator.SimulationResult`.

At ``paper`` scale the device is the fixed Table 2 configuration (65536
blocks, 5% SLC) and traces replay at full length instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..config import (
    CacheConfig,
    GeometryConfig,
    SCALES,
    SSDConfig,
    ScaleSpec,
    scaled_config,
)
from ..errors import ExperimentError
from ..sim.simulator import SimulationResult, Simulator
from ..traces.model import Trace
from ..traces.profiles import TRACE_NAMES, TraceProfile, profile
from ..traces.synth import SyntheticTraceGenerator

#: SLC cache size over the trace's hot-set bytes.
CACHE_OVER_HOTSET = 0.8
#: High-density capacity over the trace's written page footprint.
MLC_OVER_FOOTPRINT = 1.5
#: Minimum SLC blocks per plane (three level actives need room to rotate).
MIN_SLC_PER_PLANE = 1
#: Minimum SLC blocks in total.
MIN_SLC_BLOCKS = 20
#: Minimum MLC blocks per plane.
MIN_MLC_PER_PLANE = 4
#: Target device utilisation for arrival pacing.
TARGET_UTILIZATION = 0.18
#: Effective per-subpage write cost (SLC program + eviction read +
#: MLC program + amortised erase) used by the pacing estimate, in units
#: of (slc_write + transfer).
PACING_WRITE_AMP = 8.0
#: Pilot request count used to measure per-request footprint statistics.
PILOT_REQUESTS = 6_000

#: Scheme names in the paper's presentation order.
SCHEME_ORDER = ("baseline", "mga", "ipu")


def estimate_interarrival_ms(prof: TraceProfile, config: SSDConfig,
                             utilization: float = TARGET_UTILIZATION) -> float:
    """Mean inter-arrival time giving roughly the target chip utilisation."""
    t = config.timing
    subpage = config.geometry.subpage_size
    w_sub = max(1.0, prof.mean_write_bytes / subpage)
    r_sub = max(1.0, min(w_sub, 4.0))
    chip_ms_write = w_sub * (t.slc_write_ms + t.transfer_ms_per_subpage) * PACING_WRITE_AMP
    chip_ms_read = r_sub * (t.mlc_read_ms + t.transfer_ms_per_subpage + 0.03)
    per_req = prof.write_ratio * chip_ms_write + (1 - prof.write_ratio) * chip_ms_read
    chips = config.geometry.chips
    return max(0.02, per_req / (chips * utilization))


@dataclass
class RunContext:
    """Scale + seed + memoised results for one experiment session."""

    scale: str = "small"
    seed: int = 1
    #: Trace-length multiplier (the P/E sweep uses shorter runs).
    length_factor: float = 1.0
    _results: dict = field(default_factory=dict, repr=False)
    _traces: dict = field(default_factory=dict, repr=False)
    _configs: dict = field(default_factory=dict, repr=False)

    @property
    def spec(self) -> ScaleSpec:
        """The resolved scale preset."""
        if self.scale not in SCALES:
            raise ExperimentError(
                f"unknown scale {self.scale!r}; available: {', '.join(SCALES)}")
        return SCALES[self.scale]

    def config(self, pe: int | None = None) -> SSDConfig:
        """A generic scaled configuration (not tied to a trace)."""
        cfg = scaled_config(self.spec, seed=self.seed)
        if pe is not None:
            cfg = cfg.with_pe_cycles(pe)
        return cfg

    # -- trace sizing -----------------------------------------------------

    def trace_requests(self, trace_name: str) -> int:
        """Request count for this scale (paper scale replays in full)."""
        prof = profile(trace_name)
        if self.scale == "paper":
            n = min(prof.n_requests, self.spec.max_requests)
        else:
            n = self.spec.target_requests
        n = int(n * self.length_factor)
        return max(1_000, min(self.spec.max_requests, n))

    def trace_config(self, trace_name: str, pe: int | None = None) -> SSDConfig:
        """Device configuration sized for this trace (memoised).

        SLC cache ~= ``CACHE_OVER_HOTSET`` x hot-set bytes; high-density
        region ~= ``MLC_OVER_FOOTPRINT`` x written page footprint.  The
        paper scale skips auto-sizing and uses Table 2 verbatim.
        """
        key = (trace_name, pe)
        if key in self._configs:
            return self._configs[key]
        if self.scale == "paper":
            cfg = self.config(pe)
            self._configs[key] = cfg
            return cfg

        spec = self.spec
        prof = profile(trace_name)
        n = self.trace_requests(trace_name)
        pilot_n = min(PILOT_REQUESTS, n)
        gen = SyntheticTraceGenerator(prof, n_requests=pilot_n, seed=self.seed)
        gen.generate()
        ext = gen.extents
        scale_factor = n / pilot_n

        base = SSDConfig()
        page_size = base.geometry.page_size
        slc_block_bytes = base.geometry.slc_pages_per_block * page_size
        mlc_block_bytes = base.geometry.mlc_pages_per_block * page_size
        hotset_bytes = float(ext.sizes[ext.is_hot].sum()) * scale_factor
        page_fp = ext.page_footprint_bytes(page_size) * scale_factor

        planes = spec.channels * spec.chips_per_channel * spec.planes_per_chip
        slc_per_plane = max(
            MIN_SLC_PER_PLANE,
            math.ceil(max(MIN_SLC_BLOCKS, CACHE_OVER_HOTSET * hotset_bytes
                          / slc_block_bytes) / planes),
        )
        mlc_per_plane = max(
            MIN_MLC_PER_PLANE,
            math.ceil(MLC_OVER_FOOTPRINT * page_fp / mlc_block_bytes / planes),
        )
        blocks_per_plane = slc_per_plane + mlc_per_plane
        geometry = GeometryConfig(
            channels=spec.channels,
            chips_per_channel=spec.chips_per_channel,
            planes_per_chip=spec.planes_per_chip,
            total_blocks=blocks_per_plane * planes,
        )
        cache = replace(CacheConfig(), slc_ratio=slc_per_plane / blocks_per_plane)
        cfg = SSDConfig(geometry=geometry, cache=cache, seed=self.seed).validate()
        if pe is not None:
            cfg = cfg.with_pe_cycles(pe)
        self._configs[key] = cfg
        return cfg

    def trace(self, trace_name: str) -> Trace:
        """The (memoised) synthetic trace for this context."""
        if trace_name not in self._traces:
            prof = profile(trace_name)
            cfg = self.trace_config(trace_name)
            gen = SyntheticTraceGenerator(
                prof,
                n_requests=self.trace_requests(trace_name),
                seed=self.seed,
                mean_interarrival_ms=estimate_interarrival_ms(prof, cfg),
            )
            self._traces[trace_name] = gen.generate()
        return self._traces[trace_name]

    # -- simulation --------------------------------------------------------------

    def run(self, trace_name: str, scheme: str, pe: int | None = None,
            ) -> SimulationResult:
        """Replay ``trace_name`` under ``scheme`` (memoised)."""
        from .. import SCHEMES
        if scheme not in SCHEMES:
            raise ExperimentError(
                f"unknown scheme {scheme!r}; available: {', '.join(SCHEMES)}")
        key = (trace_name, scheme, pe)
        if key not in self._results:
            cfg = self.trace_config(trace_name, pe)
            ftl = SCHEMES[scheme](cfg)
            self._results[key] = Simulator(ftl).run(self.trace(trace_name))
        return self._results[key]

    def run_matrix(self, traces: "tuple[str, ...] | None" = None,
                   schemes: "tuple[str, ...]" = SCHEME_ORDER,
                   pe: int | None = None,
                   ) -> dict[tuple[str, str], SimulationResult]:
        """Replay every (trace, scheme) pair; returns results keyed by pair."""
        names = traces if traces is not None else TRACE_NAMES
        return {
            (t, s): self.run(t, s, pe=pe)
            for t in names
            for s in schemes
        }


#: Default shared context: the benchmark suite regenerates every figure
#: from one simulation sweep.
_DEFAULT_CONTEXTS: dict[tuple[str, int], RunContext] = {}


def default_context(scale: str = "small", seed: int = 1) -> RunContext:
    """Process-wide memoised context per (scale, seed)."""
    key = (scale, seed)
    if key not in _DEFAULT_CONTEXTS:
        _DEFAULT_CONTEXTS[key] = RunContext(scale=scale, seed=seed)
    return _DEFAULT_CONTEXTS[key]


def run_one(trace_name: str, scheme: str, scale: str = "small",
            seed: int = 1, pe: int | None = None) -> SimulationResult:
    """Convenience wrapper over the shared context."""
    return default_context(scale, seed).run(trace_name, scheme, pe=pe)


def run_matrix(scale: str = "small", seed: int = 1,
               traces: "tuple[str, ...] | None" = None,
               schemes: "tuple[str, ...]" = SCHEME_ORDER,
               pe: int | None = None):
    """Convenience wrapper over the shared context."""
    return default_context(scale, seed).run_matrix(traces, schemes, pe=pe)
