"""The result object every experiment produces."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.report import format_table


@dataclass
class Artifact:
    """A regenerated table or figure: rows plus provenance."""

    id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    #: Free-text commentary: paper-reported values, observed deviations.
    notes: str = ""
    #: Scale the rows were produced at.
    scale: str = ""
    #: Optional terminal chart (see :mod:`repro.metrics.charts`).
    chart: str = ""

    def render(self) -> str:
        """Printable form: title, table, chart, notes."""
        parts = [format_table(self.rows, title=f"[{self.id}] {self.title}"
                                               + (f" (scale={self.scale})"
                                                  if self.scale else ""))]
        if self.chart:
            parts.append("")
            parts.append(self.chart.rstrip())
        if self.notes:
            parts.append(self.notes.rstrip())
        return "\n".join(parts)

    def column(self, key: str) -> list:
        """Extract one column across rows (test helper)."""
        return [row[key] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-ready form (the chart is presentation-only and omitted)."""
        return {
            "id": self.id,
            "title": self.title,
            "scale": self.scale,
            "rows": self.rows,
            "notes": self.notes,
        }

    def save_json(self, path) -> None:
        """Write the artifact as JSON for downstream plotting."""
        import json
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, default=str) + "\n")
