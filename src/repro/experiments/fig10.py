"""Figure 10: erase counts in the SLC-mode cache (a) and MLC region (b).

Paper: Baseline erases SLC blocks the most (fragmentation forces frequent
GC); IPU erases SLC more than MGA (it trades utilisation for in-cache hot
data) but erases MLC blocks the least — the endurance win, since SLC-mode
blocks endure ~10x the P/E cycles of MLC blocks.
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def _build(scale: str, seed: int, slc: bool) -> Artifact:
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()
    rows = []
    for trace in TRACE_NAMES:
        row = {"Trace": trace}
        for scheme in SCHEME_ORDER:
            r = results[(trace, scheme)]
            row[scheme] = r.erases_slc if slc else r.erases_mlc
        rows.append(row)
    from ..metrics.charts import grouped_bar_chart
    chart = grouped_bar_chart(
        {trace: {s: float(results[(trace, s)].erases_slc if slc
                          else results[(trace, s)].erases_mlc)
                 for s in SCHEME_ORDER}
         for trace in TRACE_NAMES},
        title="Erase count")
    region = "SLC-mode cache" if slc else "MLC region"
    shape = (
        "Expected shape: Baseline highest, IPU above MGA (Figure 10a)."
        if slc else
        "Expected shape: IPU lowest (Figure 10b); endurance ratio SLC:MLC "
        "is ~10:1 so shifting erases into the cache extends device life."
    )
    return Artifact(
        id="fig10" if slc else "fig10b",
        title=f"Erase number occurred in the {region}",
        rows=rows,
        chart=chart,
        scale=scale,
        notes=shape,
    )


def build_slc(scale: str = "small", seed: int = 1) -> Artifact:
    """Figure 10(a): erases in the SLC-mode cache."""
    return _build(scale, seed, slc=True)


def build_mlc(scale: str = "small", seed: int = 1) -> Artifact:
    """Figure 10(b): erases in the MLC region."""
    return _build(scale, seed, slc=False)
