"""Figure 8: average read error rate per trace and scheme.

Paper: versus Baseline, MGA raises the read error rate ~14.0% and IPU
only ~3.5% on average — partial programming costs reliability, but
intra-page update confines the damage to already-invalid data.
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Expected raw bit errors per bit read, per trace and scheme."""
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()
    rows = []
    for trace in TRACE_NAMES:
        base = results[(trace, "baseline")].read_error_rate
        for scheme in SCHEME_ORDER:
            r = results[(trace, scheme)]
            rows.append({
                "Trace": trace,
                "Scheme": scheme,
                "read error rate": f"{r.read_error_rate:.4e}",
                "vs baseline": ("-" if scheme == "baseline" or base == 0
                                else f"{r.read_error_rate / base - 1:+.1%}"),
            })

    def avg_delta(scheme: str) -> float:
        deltas = []
        for trace in TRACE_NAMES:
            base = results[(trace, "baseline")].read_error_rate
            if base > 0:
                deltas.append(results[(trace, scheme)].read_error_rate / base - 1)
        return sum(deltas) / len(deltas) if deltas else float("nan")

    from ..metrics.charts import grouped_bar_chart
    chart = grouped_bar_chart(
        {trace: {s: results[(trace, s)].read_error_rate for s in SCHEME_ORDER}
         for trace in TRACE_NAMES},
        title="Average read error rate (raw bit errors per bit read)")
    notes = (
        f"Average increase vs Baseline: MGA {avg_delta('mga'):+.1%} "
        f"(paper +14.0%), IPU {avg_delta('ipu'):+.1%} (paper +3.5%)."
    )
    return Artifact(
        id="fig8",
        title="Average read error rate",
        rows=rows,
        chart=chart,
        scale=scale,
        notes=notes,
    )
