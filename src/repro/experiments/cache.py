"""Content-addressed on-disk cache for simulation results.

Replaying a ``(trace, scheme, scale, seed, P/E)`` cell is by far the most
expensive step of regenerating any figure, and it is fully deterministic:
the same device configuration and synthetic-trace parameters always
produce the same :class:`~repro.sim.simulator.SimulationResult`.  This
module therefore keys each cell by the SHA-256 of everything that
determines its outcome — the canonicalised :class:`~repro.config.SSDConfig`,
the trace profile and generation parameters, the scheme, the scale/seed
pair and a schema version — and stores the serialised result JSON under
``~/.cache/repro`` (or ``REPRO_CACHE_DIR`` / ``--cache-dir``).

Invalidation is purely by key: any Table-2 field change, a different
seed, trace length or scheme yields a different digest, and a bump of
:data:`CACHE_SCHEMA_VERSION` (required whenever the simulator's observable
behaviour or the result schema changes) orphans every old entry at once.
Stale entries are never *wrong*, only unreachable; ``repro-ssd cache
--clear`` removes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..config import SSDConfig
from ..configio import config_to_dict
from ..traces.profiles import TraceProfile
from ..units import Ms

#: Bump whenever simulator behaviour or the result schema changes, so a
#: code change can never be masked by a stale cache entry.
CACHE_SCHEMA_VERSION = 5


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def cell_key(config: SSDConfig, profile: TraceProfile, n_requests: int,
             interarrival_ms: Ms | None, scheme: str, scale: str,
             seed: int, length_factor: float = 1.0,
             pe: int | None = None,
             faults: dict | None = None,
             frontend: dict | None = None) -> str:
    """SHA-256 digest identifying one simulation cell.

    Everything that influences the replay goes in: the full nested config
    (so any Table-2 field change moves the key), the trace profile and
    generator parameters, the scheme, and the context identity.  Floats
    are serialised via ``repr`` inside ``json.dumps``, which is exact for
    round-trippable doubles.

    ``faults`` is the serialised :class:`repro.faults.FaultConfig` of a
    fault campaign, or ``None`` when injection is disabled.  Callers must
    canonicalise a disabled config to ``None`` (``RunContext`` does), so
    a rate-0 campaign shares keys — and results — with ordinary runs,
    and a fault campaign can never be served a cached no-fault result.

    ``frontend`` is the serialised :class:`repro.frontend.FrontendConfig`
    of a front-end replay, under the same contract: disabled configs are
    canonicalised to ``None``, so they share keys with direct-path runs
    (whose results they reproduce bit-identically), while any enabled
    knob combination gets its own key space.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "profile": dataclasses.asdict(profile),
        "n_requests": int(n_requests),
        "interarrival_ms": interarrival_ms,
        "scheme": scheme,
        "scale": scale,
        "seed": int(seed),
        "length_factor": float(length_factor),
        "pe": pe,
        "faults": faults,
        "frontend": frontend,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> None:
        """Fold another handle's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores


class ResultCache:
    """Content-addressed store of serialised simulation results.

    One JSON file per cell, sharded by the first two hex digits of the
    key.  Writes go through a temp file + :func:`os.replace`, so
    concurrent workers (the parallel fan-out) can safely store the same
    entry: last writer wins with identical bytes.
    """

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload dict, or None on a miss (counted)."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # A torn or corrupt entry is a miss; drop it so the fresh
            # result replaces it.
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store one payload atomically (counted)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        """Number of entries on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def summary_line(self) -> str:
        """One-line hit/miss report for the CLI."""
        s = self.stats
        return (f"cache {self.root}: {s.hits} hits / {s.misses} misses / "
                f"{s.stores} stores")
