"""Figure 6: completed writes distribution in SLC vs MLC blocks.

Paper: IPU yields the lowest write count in the MLC region — the SLC-mode
cache absorbs the hot write traffic instead of bouncing it through the
high-density region.  We report written subpages per region: host writes
plus the data the cache scheme ejects into MLC (MLC-internal GC churn is
reported separately so the scheme-attributable volume is visible).
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Written subpages per region, per trace and scheme."""
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()
    rows = []
    for trace in TRACE_NAMES:
        for scheme in SCHEME_ORDER:
            r = results[(trace, scheme)]
            slc_total = r.host_subpages_slc + r.gc_subpages_slc
            mlc_attr = r.host_subpages_mlc + r.evicted_subpages_to_mlc
            mlc_churn = r.gc_subpages_mlc - r.evicted_subpages_to_mlc
            rows.append({
                "Trace": trace,
                "Scheme": scheme,
                "SLC subpages": slc_total,
                "MLC subpages": mlc_attr,
                "MLC host": r.host_subpages_mlc,
                "MLC evicted": r.evicted_subpages_to_mlc,
                "MLC churn": mlc_churn,
                "MLC share": f"{mlc_attr / max(1, mlc_attr + slc_total):.1%}",
            })
    from ..metrics.charts import grouped_bar_chart
    chart = grouped_bar_chart(
        {trace: {s: float(results[(trace, s)].host_subpages_mlc
                          + results[(trace, s)].evicted_subpages_to_mlc)
                 for s in SCHEME_ORDER}
         for trace in TRACE_NAMES},
        title="Writes landing in the MLC region (subpages)")
    return Artifact(
        id="fig6",
        chart=chart,
        title="Completed writes distribution in SLC/MLC blocks",
        rows=rows,
        scale=scale,
        notes=("Expected shape: IPU shows the smallest MLC column per trace "
               "(hot data is retained in the cache); Baseline the largest."),
    )
