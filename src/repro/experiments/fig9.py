"""Figure 9: page utilisation of collected blocks in the SLC-mode cache.

Paper averages: Baseline ~52.8% (fragmentation), MGA ~99.9% (full
packing), IPU ~73.0% (free slots are deliberately reserved for intra-page
updates, trading utilisation for disturb-free updates).
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Used-subpage ratio of GC victim blocks per trace and scheme."""
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()
    rows = []
    sums = {s: 0.0 for s in SCHEME_ORDER}
    counts = {s: 0 for s in SCHEME_ORDER}
    for trace in TRACE_NAMES:
        row = {"Trace": trace}
        for scheme in SCHEME_ORDER:
            r = results[(trace, scheme)]
            row[scheme] = f"{r.slc_page_utilization:.1%}"
            if r.slc_gc_collections:
                sums[scheme] += r.slc_page_utilization
                counts[scheme] += 1
        rows.append(row)
    averages = {
        s: (sums[s] / counts[s] if counts[s] else float("nan"))
        for s in SCHEME_ORDER
    }
    from ..metrics.charts import grouped_bar_chart
    chart = grouped_bar_chart(
        {trace: {s: results[(trace, s)].slc_page_utilization
                 for s in SCHEME_ORDER}
         for trace in TRACE_NAMES},
        title="Page utilisation of collected SLC blocks")
    notes = (
        f"Averages: baseline {averages['baseline']:.1%} (paper 52.8%), "
        f"mga {averages['mga']:.1%} (paper 99.9%), "
        f"ipu {averages['ipu']:.1%} (paper 73.0%)."
    )
    return Artifact(
        id="fig9",
        title="Page utilisation ratio of GC blocks in the SLC-mode cache",
        rows=rows,
        chart=chart,
        scale=scale,
        notes=notes,
    )
