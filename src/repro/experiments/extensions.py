"""Extension experiments beyond the paper's figures.

* ``ext-delta`` — adds the Delta comparator (Zhang et al., FAST'16, the
  related work IPU builds on) to the scheme comparison: same page-per-
  request layout and in-page appends as IPU, but without the
  invalidate-first rule, so its partial passes disturb live data.
* ``ext-translation`` — quantifies the address-translation latency the
  paper's introduction attributes to second-level mapping tables, using
  the DFTL-style cached-mapping-table model: MGA's two-level table misses
  more than IPU's page-level-plus-offset table.
"""

from __future__ import annotations

import dataclasses

from ..config import TranslationConfig
from ..sim.simulator import Simulator
from .artifact import Artifact
from .runner import default_context

#: Traces used by the extension studies (one write-hot, one read-hot).
EXT_TRACES = ("ts0", "lun2")


def build_delta_comparison(scale: str = "small", seed: int = 1) -> Artifact:
    """Four-way comparison including the Delta scheme."""
    from .. import SCHEMES
    ctx = default_context(scale, seed)
    rows = []
    for trace in EXT_TRACES:
        for scheme in ("baseline", "mga", "delta", "ipu"):
            if scheme in ("baseline", "mga", "ipu"):
                r = ctx.run(trace, scheme)
            else:
                ftl = SCHEMES["delta"](ctx.trace_config(trace))
                r = Simulator(ftl).run(ctx.trace(trace))
            rows.append({
                "Trace": trace,
                "Scheme": scheme,
                "latency ms": f"{r.avg_latency_ms:.4f}",
                "error rate": f"{r.read_error_rate:.4e}",
                "GC util": f"{r.slc_page_utilization:.1%}",
                "in-page svc": r.intra_page_updates,
                "disturbed valid": r.disturbed_valid_subpages,
            })
    return Artifact(
        id="ext-delta",
        title="Related-work comparison including in-place delta compression",
        rows=rows,
        scale=scale,
        notes=("Delta keeps updates in-page like IPU but without "
               "invalidating first: its 'disturbed valid' column is the "
               "in-page damage IPU provably avoids (IPU's is always 0)."),
    )


def build_seed_study(scale: str = "small", seed: int = 1) -> Artifact:
    """Headline metrics across independent seeds (reproducibility check).

    The paper reports single-run numbers; here the IPU-vs-Baseline latency
    gain, the error-rate increases and the utilisation gaps are re-derived
    under three different generator/device seeds to show they are
    properties of the mechanisms, not of one lucky trace realisation.
    """
    from .runner import RunContext
    rows = []
    for s_ in (seed, seed + 1, seed + 2):
        ctx = RunContext(scale=scale, seed=s_)
        results = {scheme: ctx.run("ts0", scheme)
                   for scheme in ("baseline", "mga", "ipu")}
        base, mga, ipu = (results[k] for k in ("baseline", "mga", "ipu"))
        rows.append({
            "seed": s_,
            "IPU vs Base lat": f"{ipu.avg_latency_ms / base.avg_latency_ms - 1:+.1%}",
            "MGA err incr": f"{mga.read_error_rate / base.read_error_rate - 1:+.1%}",
            "IPU err incr": f"{ipu.read_error_rate / base.read_error_rate - 1:+.1%}",
            "util B/M/I": "/".join(
                f"{r.slc_page_utilization:.0%}" for r in (base, mga, ipu)),
            "SLC erases B/M/I": "/".join(
                str(r.erases_slc) for r in (base, mga, ipu)),
        })
    return Artifact(
        id="ext-seeds",
        title="Headline shapes across independent seeds (ts0)",
        rows=rows,
        scale=scale,
        notes=("Every row must show the same orderings: IPU faster than "
               "Baseline, IPU's error increase a fraction of MGA's, "
               "utilisation Baseline < IPU < MGA, erases MGA < IPU <= "
               "Baseline."),
    )


def build_cache_sensitivity(scale: str = "small", seed: int = 1) -> Artifact:
    """IPU behaviour versus SLC cache size (the Table 2 ratio is fixed at
    5%; this sweeps the cache relative to the trace's hot set)."""
    import dataclasses

    from ..config import SSDConfig
    from .runner import RunContext

    ctx = RunContext(scale=scale, seed=seed)
    base_cfg = ctx.trace_config("ts0")
    trace = ctx.trace("ts0")
    planes = base_cfg.geometry.planes
    base_slc_pp = max(1, round(base_cfg.geometry.blocks_per_plane
                               * base_cfg.cache.slc_ratio))
    mlc_pp = base_cfg.geometry.blocks_per_plane - base_slc_pp

    rows = []
    for factor in (0.5, 1.0, 2.0):
        slc_pp = max(1, round(base_slc_pp * factor))
        bpp = slc_pp + mlc_pp
        geometry = dataclasses.replace(
            base_cfg.geometry, total_blocks=bpp * planes)
        cache = dataclasses.replace(base_cfg.cache, slc_ratio=slc_pp / bpp)
        cfg = SSDConfig(geometry=geometry, cache=cache,
                        reliability=base_cfg.reliability,
                        timing=base_cfg.timing).validate()
        from .. import SCHEMES
        ftl = SCHEMES["ipu"](cfg)
        r = Simulator(ftl).run(trace)
        rows.append({
            "cache factor": f"{factor:.1f}x",
            "SLC blocks": cfg.slc_blocks,
            "latency ms": f"{r.avg_latency_ms:.4f}",
            "intra-page": r.intra_page_updates,
            "evicted": r.evicted_subpages_to_mlc,
            "SLC erases": r.erases_slc,
        })
    return Artifact(
        id="ext-cache",
        title="IPU sensitivity to SLC cache size (ts0)",
        rows=rows,
        scale=scale,
        notes=("A larger cache retains more of the hot set: intra-page "
               "updates rise and evictions fall; shrinking it below the "
               "hot set collapses the benefit toward Baseline behaviour."),
    )


#: Queue depths the ext-qd sweep visits by default.
QD_SWEEP = (1, 4, 16, 64)


def build_qd_study(scale: str = "small", seed: int = 1,
                   qds: "tuple[int, ...]" = QD_SWEEP,
                   frontend: bool = True) -> Artifact:
    """Queue-depth sweep, closed loop and through the device front-end.

    ``closed`` rows replay with the classic closed-loop driver (no
    buffer, QD caps outstanding requests).  ``frontend`` rows replay the
    open-loop trace through the write-back buffer and the multi-queue
    scheduler (:mod:`repro.frontend`), reporting the buffer's hit /
    coalesce / flush counters and the tail of the response-time
    distribution.  ``--qd``/``--frontend`` on ``repro-ssd run`` map to
    the ``qds``/``frontend`` keywords.
    """
    from .. import SCHEMES
    from .runner import new_context
    ctx = default_context(scale, seed)
    rows = []
    trace = ctx.trace("ts0")
    schemes = ("baseline", "mga", "ipu")
    for qd in qds:
        for scheme in schemes:
            ftl = SCHEMES[scheme](ctx.trace_config("ts0"))
            result = Simulator(ftl).run_closed(trace, queue_depth=qd)
            iops = (result.n_requests / result.sim_time_ms * 1e3
                    if result.sim_time_ms else 0.0)
            rows.append({
                "QD": qd,
                "Scheme": scheme,
                "mode": "closed",
                "KIOPS": f"{iops / 1e3:.2f}",
                "mean lat ms": f"{result.avg_latency_ms:.4f}",
                "p99 ms": "-",
                "hits": "-",
                "coalesced": "-",
                "flushes": "-",
            })
    if frontend:
        from ..frontend import FrontendConfig
        for qd in qds:
            fctx = new_context(scale, seed)
            fctx.frontend = FrontendConfig.from_qd(qd)
            fctx.run_cells([("ts0", s, None) for s in schemes])
            for scheme in schemes:
                result = fctx.run("ts0", scheme)
                rows.append({
                    "QD": qd,
                    "Scheme": scheme,
                    "mode": "frontend",
                    "KIOPS": "-",
                    "mean lat ms": f"{result.avg_latency_ms:.4f}",
                    "p99 ms": f"{result.lat_p99_ms:.4f}",
                    "hits": result.cache_read_hits,
                    "coalesced": result.coalesced_writes,
                    "flushes": result.flushes,
                })
    return Artifact(
        id="ext-qd",
        title="Queue-depth sweep: closed loop and device front-end (ts0)",
        rows=rows,
        scale=scale,
        notes=("Closed-loop rows are the sustainable-rate view (throughput "
               "saturates at the device's chip parallelism).  Front-end "
               "rows replay the arrival-paced trace through the coalescing "
               "write buffer and multi-queue scheduler: deeper queues hide "
               "destage backpressure, so the p99 tail tightens with QD "
               "while the hit/coalesce counters barely move."),
    )


def build_translation_study(scale: str = "small", seed: int = 1) -> Artifact:
    """CMT hit ratios and the latency cost of second-level translation."""
    from .. import SCHEMES
    ctx = default_context(scale, seed)
    rows = []
    for trace in EXT_TRACES:
        base_cfg = ctx.trace_config(trace)
        # Size the CMT to cover ~30% of the trace's first-level working
        # set: page-mapped lookups mostly hit, while MGA's 4x-denser
        # second-level key space cannot fit.
        entries = 256
        lpns = ctx.trace(trace).footprint_bytes // base_cfg.geometry.page_size
        cache_pages = max(2, int(0.3 * lpns / entries))
        for scheme in ("baseline", "mga", "ipu"):
            cfg = dataclasses.replace(
                base_cfg,
                translation=TranslationConfig(
                    enabled=True, entries_per_page=entries,
                    cache_pages=cache_pages))
            ftl = SCHEMES[scheme](cfg)
            result = Simulator(ftl).run(ctx.trace(trace))
            plain = ctx.run(trace, scheme)
            rows.append({
                "Trace": trace,
                "Scheme": scheme,
                "CMT hit ratio": f"{ftl.cmt.stats.hit_ratio:.1%}",
                "misses": ftl.cmt.stats.misses,
                "writebacks": ftl.cmt.stats.writebacks,
                "latency ms": f"{result.avg_latency_ms:.4f}",
                "vs no-CMT": (f"{result.avg_latency_ms / plain.avg_latency_ms - 1:+.1%}"
                              if plain.avg_latency_ms else "-"),
            })
    return Artifact(
        id="ext-translation",
        title="Address-translation overhead under a cached mapping table",
        rows=rows,
        scale=scale,
        notes=("Section 1's motivation quantified: MGA's second-level "
               "subpage entries thrash the translation cache harder than "
               "IPU's page-level table, costing extra foreground flash "
               "reads."),
    )
