"""Parallel execution of independent simulation cells.

Every artifact decomposes into ``(trace, scheme, scale, seed, P/E)``
cells whose replays share no state: the synthetic trace, the device
configuration and the FTL are all rebuilt deterministically from the cell
description.  That makes the fan-out embarrassingly parallel — each
worker process reconstructs a fresh :class:`~repro.experiments.runner.RunContext`
from the spec, replays its one cell, and ships the serialised
:class:`~repro.sim.simulator.SimulationResult` back to the parent, which
folds it into the ordinary memo.  No RNG state crosses process
boundaries, so parallel and sequential execution are bit-identical
(``tests/test_parallel.py`` asserts this).

Workers consult and populate the shared on-disk
:class:`~repro.experiments.cache.ResultCache` themselves (writes are
atomic), so a warm cache short-circuits inside the worker too.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

__all__ = ["CellSpec", "FleetDeviceSpec", "resolve_jobs", "run_cells",
           "run_fleet_devices", "simulate_cell", "simulate_fleet_device"]


def resolve_jobs(jobs: "int | str | None" = None) -> int:
    """Resolve a ``--jobs`` / ``REPRO_JOBS`` setting to a worker count.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable and
    then to :func:`os.cpu_count`; ``0`` (or anything non-positive) means
    "auto", i.e. :func:`os.cpu_count` as well.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 0
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class CellSpec:
    """Everything a worker needs to replay one cell from scratch.

    Only primitives, so the spec pickles cheaply and the worker-side
    reconstruction goes through exactly the same code path a sequential
    run uses.
    """

    scale: str
    seed: int
    trace: str
    scheme: str
    pe: int | None = None
    length_factor: float = 1.0
    #: Root of the shared on-disk result cache (None = no cache).
    cache_dir: str | None = None
    #: Serialised :class:`repro.faults.FaultConfig` of a fault campaign
    #: (None = no injection) — a string so the spec stays primitives-only.
    faults_json: str | None = None
    #: Serialised :class:`repro.frontend.FrontendConfig` of a front-end
    #: replay (None = direct path), under the same primitives-only rule.
    frontend_json: str | None = None


def simulate_cell(spec: CellSpec) -> dict:
    """Worker entry point: replay one cell, return its serialised result."""
    from ..faults import FaultConfig
    from ..frontend import FrontendConfig
    from .cache import ResultCache
    from .runner import RunContext

    cache = ResultCache(spec.cache_dir) if spec.cache_dir else None
    faults = (FaultConfig.from_json(spec.faults_json)
              if spec.faults_json else None)
    frontend = (FrontendConfig.from_json(spec.frontend_json)
                if spec.frontend_json else None)
    ctx = RunContext(scale=spec.scale, seed=spec.seed,
                     length_factor=spec.length_factor, cache=cache,
                     faults=faults, frontend=frontend)
    return ctx.run(spec.trace, spec.scheme, pe=spec.pe).to_dict()


def run_cells(specs: "list[CellSpec]", jobs: "int | None" = None) -> list[dict]:
    """Replay many cells, fanning out over worker processes.

    Results come back in spec order.  With one worker (or one cell) the
    replays run inline — no pool, no pickling — which keeps the
    single-CPU path identical to the historical sequential runner.
    """
    specs = list(specs)
    n_workers = min(resolve_jobs(jobs), len(specs))
    if n_workers <= 1:
        return [simulate_cell(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(simulate_cell, specs))


@dataclass(frozen=True)
class FleetDeviceSpec:
    """One fleet device cell, under the same primitives-only rule as
    :class:`CellSpec` — the worker rebuilds the
    :class:`~repro.fleet.FleetConfig` from its canonical JSON and runs
    the device exactly as the sequential path would."""

    #: Canonical JSON of the :class:`~repro.fleet.FleetConfig`.
    fleet_json: str
    #: Device index within the fleet.
    device: int
    #: Root of the shared on-disk result cache (None = no cache).
    cache_dir: str | None = None
    #: Root of the checkpoint store (None = no snapshots, no resume).
    checkpoint_dir: str | None = None
    #: Snapshot after every N completed epochs (0 = only when stopping).
    checkpoint_every: int = 0
    #: Save a snapshot and stop before this epoch (None = run to end).
    stop_after_epoch: int | None = None


def simulate_fleet_device(spec: FleetDeviceSpec) -> "dict | None":
    """Worker entry point: run one fleet device, return its payload.

    The cache is consulted before — and populated after — the replay, so
    a warm cache short-circuits inside the worker just like
    :func:`simulate_cell` does.  Returns ``None`` when the run stopped
    early at ``stop_after_epoch`` (the snapshot holds the progress).
    """
    from ..fleet.config import FleetConfig
    from ..fleet.runner import run_device
    from .cache import ResultCache

    cfg = FleetConfig.from_json(spec.fleet_json)
    cache = ResultCache(spec.cache_dir) if spec.cache_dir else None
    key = cfg.device_key(spec.device)
    if cache is not None and spec.stop_after_epoch is None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    payload = run_device(cfg, spec.device,
                         checkpoint_dir=spec.checkpoint_dir,
                         checkpoint_every=spec.checkpoint_every,
                         stop_after_epoch=spec.stop_after_epoch)
    if cache is not None and payload is not None:
        cache.put(key, payload)
    return payload


def run_fleet_devices(specs: "list[FleetDeviceSpec]",
                      jobs: "int | None" = None) -> "list[dict | None]":
    """Run many fleet device cells, fanning out over worker processes.

    Same contract as :func:`run_cells`: results in spec order, inline
    when one worker suffices, bit-identical either way.
    """
    specs = list(specs)
    n_workers = min(resolve_jobs(jobs), len(specs))
    if n_workers <= 1:
        return [simulate_fleet_device(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(simulate_fleet_device, specs))
