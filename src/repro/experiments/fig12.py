"""Figure 12: computation overhead of GC victim selection.

Paper: IPU's ISR policy costs only ~1.2% more scan time than the greedy
policy, staying under 2.48 ms per search — feasible because the IS'
coldness terms are stored per page (Section 4.4.1) rather than recomputed
per scan; our :class:`~repro.ftl.victim.IsrVictimPolicy` mirrors that
caching.

Two cost channels are reported per policy:

* **modelled ms/scan** — deterministic firmware-cost model: every
  candidate block examined during selection is charged a per-block
  constant (ISR pays 2.5x greedy for the stored IS' record read).  This
  is the reproduction target; it cannot be distorted by how fast the
  *simulator* happens to evaluate a scan, so the incremental victim
  index (an optimisation of host wall time) leaves it untouched.
* **host ms/scan** — measured Python wall time, a nondeterministic
  diagnostic retained for context.
"""

from __future__ import annotations

from ..ftl.victim import (
    MODELLED_SCAN_NS_PER_BLOCK_GREEDY,
    MODELLED_SCAN_NS_PER_BLOCK_ISR,
)
from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Victim-selection cost: Baseline's greedy vs IPU's ISR."""
    ctx = default_context(scale, seed)
    rows = []
    for trace in TRACE_NAMES:
        base = ctx.run(trace, "baseline")
        ipu = ctx.run(trace, "ipu")
        base_model = (base.gc_scan_blocks * MODELLED_SCAN_NS_PER_BLOCK_GREEDY
                      * 1e-6 / base.gc_scans if base.gc_scans else 0.0)
        ipu_model = (ipu.gc_scan_blocks * MODELLED_SCAN_NS_PER_BLOCK_ISR
                     * 1e-6 / ipu.gc_scans if ipu.gc_scans else 0.0)
        base_wall = (base.gc_scan_seconds / base.gc_scans * 1e3
                     if base.gc_scans else 0.0)
        ipu_wall = (ipu.gc_scan_seconds / ipu.gc_scans * 1e3
                    if ipu.gc_scans else 0.0)
        rows.append({
            "Trace": trace,
            "greedy scans": base.gc_scans,
            "greedy modelled ms/scan": f"{base_model:.6f}",
            "ISR scans": ipu.gc_scans,
            "ISR modelled ms/scan": f"{ipu_model:.6f}",
            "ISR/greedy (modelled)": (f"{ipu_model / base_model:.2f}x"
                                      if base_model > 0 else "-"),
            "greedy host ms/scan": f"{base_wall:.4f}",
            "ISR host ms/scan": f"{ipu_wall:.4f}",
        })
    return Artifact(
        id="fig12",
        title="Computation overhead in GC processing",
        rows=rows,
        scale=scale,
        notes=("Paper: ISR adds ~1.2% over greedy and needs <2.48 ms per "
               "search.  'Modelled' columns charge a deterministic "
               "per-candidate firmware cost (ISR reads the stored 4-byte "
               "IS' record on top of the invalid counter) and are the "
               "reproduction target; 'host' columns are interpreted-Python "
               "wall time, kept as a diagnostic."),
    )
