"""Figure 12: computation overhead of GC victim selection.

Paper: IPU's ISR policy costs only ~1.2% more scan time than the greedy
policy, staying under 2.48 ms per search — feasible because the IS'
coldness terms are stored per page (Section 4.4.1) rather than recomputed
per scan; our :class:`~repro.ftl.victim.IsrVictimPolicy` mirrors that
caching.  Absolute numbers here are Python wall time; the comparison (and
the per-scan budget) is the reproducible quantity.
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Victim-selection wall time: Baseline's greedy vs IPU's ISR."""
    ctx = default_context(scale, seed)
    rows = []
    for trace in TRACE_NAMES:
        base = ctx.run(trace, "baseline")
        ipu = ctx.run(trace, "ipu")
        base_per = (base.gc_scan_seconds / base.gc_scans * 1e3
                    if base.gc_scans else 0.0)
        ipu_per = (ipu.gc_scan_seconds / ipu.gc_scans * 1e3
                   if ipu.gc_scans else 0.0)
        rows.append({
            "Trace": trace,
            "greedy scans": base.gc_scans,
            "greedy ms/scan": f"{base_per:.4f}",
            "ISR scans": ipu.gc_scans,
            "ISR ms/scan": f"{ipu_per:.4f}",
            "ISR/greedy": (f"{ipu_per / base_per:.2f}x"
                           if base_per > 0 else "-"),
        })
    return Artifact(
        id="fig12",
        title="Computation overhead in GC processing",
        rows=rows,
        scale=scale,
        notes=("Paper: ISR adds ~1.2% over greedy and needs <2.48 ms per "
               "search.  Wall times here are interpreted-Python; the "
               "comparison shape and the per-search budget are the "
               "reproduction targets."),
    )
