"""Figure 11: normalised mapping-table size.

Paper: MGA needs ~23.7% more mapping memory than Baseline (two-level
subpage table); IPU needs only ~0.84% more (per-page live-offset record
plus 2-bit block labels).  The model is analytic — it depends only on the
device configuration — and is also evaluated at paper scale for the exact
comparison.
"""

from __future__ import annotations

from ..config import paper_config
from ..metrics.memory import mapping_breakdown
from ..units import fmt_bytes
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Mapping bytes per scheme, normalised to Baseline."""
    ctx = default_context(scale, seed)
    rows = []
    for label, cfg in (("scaled", ctx.config()), ("paper", paper_config())):
        base = mapping_breakdown("baseline", cfg)
        for scheme in SCHEME_ORDER:
            b = mapping_breakdown(scheme, cfg)
            rows.append({
                "Config": label,
                "Scheme": scheme,
                "mapping": fmt_bytes(b.mapping_bytes),
                "normalized": f"{b.normalized_to(base):.4f}",
                "2nd level": fmt_bytes(b.second_level_bytes),
                "labels": fmt_bytes(b.label_bytes),
                "IS' metadata": fmt_bytes(b.metadata_bytes),
            })
    return Artifact(
        id="fig11",
        title="Normalized mapping table size",
        rows=rows,
        scale=scale,
        notes=("Paper: MGA +23.7%, IPU +0.84% vs Baseline; IS' metadata "
               "(819.2KB at paper scale) is reported separately in "
               "Section 4.4.1, not in Figure 11."),
    )
