"""Experiment harnesses: one module per table/figure of the evaluation.

Every artefact of Section 4 has a module that regenerates it::

    table1  update-size distribution of the traces
    table2  simulator settings
    table3  trace specifications
    fig2    RBER: conventional vs partial programming over P/E cycles
    fig5    I/O response time per trace and scheme
    fig6    completed writes in SLC vs MLC regions
    fig7    IPU write distribution over Work/Monitor/Hot blocks
    fig8    average read error rate
    fig9    page utilisation of collected SLC blocks
    fig10   erase counts per region
    fig11   normalised mapping-table size
    fig12   GC victim-selection compute overhead
    fig13   I/O latency under varied P/E cycles
    fig14   read error rate under varied P/E cycles

plus extension studies beyond the paper (``summary`` scoreboard,
``ext-delta``, ``ext-translation``, ``ext-qd``, ``ext-seeds``,
``ext-cache``).

Use :func:`repro.experiments.registry.get` (or the CLI) to run one, and
:class:`repro.experiments.runner.RunContext` to control scale and seeding.
Simulation results are memoised per (trace, scheme, scale, seed, P/E), so
regenerating every figure costs one simulation sweep, not one per figure.
"""

from .artifact import Artifact
from .cache import CACHE_SCHEMA_VERSION, ResultCache, cell_key, default_cache_dir
from .parallel import CellSpec, resolve_jobs, run_cells
from .runner import (
    RunContext,
    configure_execution,
    execution_summary,
    run_one,
    run_matrix,
)
from .registry import EXPERIMENTS, get, run

__all__ = [
    "Artifact",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cell_key",
    "default_cache_dir",
    "CellSpec",
    "resolve_jobs",
    "run_cells",
    "RunContext",
    "configure_execution",
    "execution_summary",
    "run_one",
    "run_matrix",
    "EXPERIMENTS",
    "get",
    "run",
]
