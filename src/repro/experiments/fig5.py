"""Figure 5: I/O response time per trace and scheme.

Paper headline: versus Baseline, MGA cuts overall I/O time ~6.4% and IPU
~14.9% on average; IPU cuts write latency 23.8%/17.9% versus Baseline/MGA
and read latency up to 6.3% versus MGA.
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Replay the full matrix and report read/write/overall means."""
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()
    rows = []
    for trace in TRACE_NAMES:
        for scheme in SCHEME_ORDER:
            r = results[(trace, scheme)]
            rows.append({
                "Trace": trace,
                "Scheme": scheme,
                "read ms": f"{r.avg_read_latency_ms:.4f}",
                "write ms": f"{r.avg_write_latency_ms:.4f}",
                "overall ms": f"{r.avg_latency_ms:.4f}",
            })

    def geomean_ratio(metric: str, scheme: str, ref: str) -> float:
        import math
        logs = []
        for trace in TRACE_NAMES:
            a = getattr(results[(trace, scheme)], metric)
            b = getattr(results[(trace, ref)], metric)
            if a > 0 and b > 0:
                logs.append(math.log(a / b))
        return math.exp(sum(logs) / len(logs)) if logs else float("nan")

    from ..metrics.charts import distribution_chart, grouped_bar_chart
    from ..metrics.latency import latency_distribution
    import numpy as np
    chart = grouped_bar_chart(
        {trace: {s: results[(trace, s)].avg_latency_ms for s in SCHEME_ORDER}
         for trace in TRACE_NAMES},
        title="Mean I/O response time (ms)")
    bands = {}
    for scheme in SCHEME_ORDER:
        lats = np.concatenate([
            np.concatenate([results[(t, scheme)].read_latencies,
                            results[(t, scheme)].write_latencies])
            for t in TRACE_NAMES])
        bands[scheme] = latency_distribution(lats, edges_ms=[0.25, 0.5, 1.0, 5.0])
    chart += "\n\n" + distribution_chart(
        bands, title="Response-time distribution (all traces pooled)")
    notes = (
        "Average improvement (geometric mean across traces):\n"
        f"  overall: MGA vs Baseline {geomean_ratio('avg_latency_ms', 'mga', 'baseline') - 1:+.1%}"
        f" (paper -6.4%), IPU vs Baseline {geomean_ratio('avg_latency_ms', 'ipu', 'baseline') - 1:+.1%}"
        " (paper -14.9%)\n"
        f"  write:   IPU vs Baseline {geomean_ratio('avg_write_latency_ms', 'ipu', 'baseline') - 1:+.1%}"
        f" (paper -23.8%), IPU vs MGA {geomean_ratio('avg_write_latency_ms', 'ipu', 'mga') - 1:+.1%}"
        " (paper -17.9%)\n"
        f"  read:    IPU vs MGA {geomean_ratio('avg_read_latency_ms', 'ipu', 'mga') - 1:+.1%}"
        " (paper up to -6.3%)"
    )
    return Artifact(
        id="fig5",
        title="I/O response time distribution",
        rows=rows,
        chart=chart,
        scale=scale,
        notes=notes,
    )
