"""Live paper-vs-measured scoreboard.

Aggregates the headline quantity of every reproduced artefact next to the
paper's reported value and a pass/shape verdict — the condensed form of
EXPERIMENTS.md, computed from the current code on the current scale.
"""

from __future__ import annotations

import math

from ..metrics.memory import mapping_breakdown
from ..config import paper_config
from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, default_context


def _geomean_ratio(results, metric: str, scheme: str, ref: str) -> float:
    logs = []
    for trace in TRACE_NAMES:
        a = getattr(results[(trace, scheme)], metric)
        b = getattr(results[(trace, ref)], metric)
        if a > 0 and b > 0:
            logs.append(math.log(a / b))
    return math.exp(sum(logs) / len(logs)) if logs else float("nan")


def _mean(results, metric: str, scheme: str) -> float:
    values = [getattr(results[(trace, scheme)], metric)
              for trace in TRACE_NAMES]
    return sum(values) / len(values)


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Compute the scoreboard (runs the full matrix once, memoised)."""
    ctx = default_context(scale, seed)
    results = ctx.run_matrix()

    def row(artefact, quantity, paper, ours, ok):
        return {"Artefact": artefact, "Quantity": quantity,
                "Paper": paper, "Ours": ours,
                "Shape": "ok" if ok else "DEVIATES"}

    rows = []

    ipu_vs_base = _geomean_ratio(results, "avg_latency_ms", "ipu", "baseline") - 1
    rows.append(row("fig5", "IPU vs Baseline latency", "-14.9%",
                    f"{ipu_vs_base:+.1%}", ipu_vs_base < -0.02))
    ipu_vs_mga = _geomean_ratio(results, "avg_latency_ms", "ipu", "mga") - 1
    rows.append(row("fig5", "IPU vs MGA latency", "-9.0% (approx)",
                    f"{ipu_vs_mga:+.1%}", ipu_vs_mga < 0))

    mga_err = _geomean_ratio(results, "read_error_rate", "mga", "baseline") - 1
    ipu_err = _geomean_ratio(results, "read_error_rate", "ipu", "baseline") - 1
    rows.append(row("fig8", "MGA error increase", "+14.0%",
                    f"{mga_err:+.1%}", mga_err > 0.02))
    rows.append(row("fig8", "IPU error increase", "+3.5%",
                    f"{ipu_err:+.1%}", 0 <= ipu_err < mga_err))

    def _util_mean(scheme: str) -> float:
        values = [results[(t, scheme)].slc_page_utilization
                  for t in TRACE_NAMES
                  if results[(t, scheme)].slc_gc_collections]
        return sum(values) / len(values) if values else 0.0

    utils = {s: _util_mean(s) for s in SCHEME_ORDER}
    rows.append(row("fig9", "utilisation B/M/I", "52.8/99.9/73.0%",
                    "/".join(f"{utils[s]:.1%}" for s in SCHEME_ORDER),
                    utils["baseline"] < utils["ipu"] < utils["mga"]))

    erases = {s: _mean(results, "erases_slc", s) for s in SCHEME_ORDER}
    rows.append(row("fig10a", "SLC erase ordering", "B > I > M",
                    " > ".join(f"{erases[s]:.0f}" for s in
                               ("baseline", "ipu", "mga")),
                    erases["mga"] < erases["ipu"] <= erases["baseline"]))

    mlc_writes = {
        s: _mean(results, "evicted_subpages_to_mlc", s)
        + _mean(results, "host_subpages_mlc", s)
        for s in SCHEME_ORDER
    }
    rows.append(row("fig6", "MLC write volume", "IPU lowest",
                    " / ".join(f"{mlc_writes[s]:.0f}" for s in SCHEME_ORDER),
                    mlc_writes["ipu"] < mlc_writes["baseline"]))

    cfg = paper_config()
    base_mem = mapping_breakdown("baseline", cfg)
    mga_mem = mapping_breakdown("mga", cfg).normalized_to(base_mem)
    ipu_mem = mapping_breakdown("ipu", cfg).normalized_to(base_mem)
    rows.append(row("fig11", "mapping size MGA/IPU", "1.237 / 1.0084",
                    f"{mga_mem:.4f} / {ipu_mem:.4f}",
                    1.0 < ipu_mem < 1.02 < 1.15 < mga_mem))

    ipu_disturb = sum(results[(t, "ipu")].disturbed_valid_subpages
                      for t in TRACE_NAMES)
    rows.append(row("mechanism", "IPU valid subpages disturbed", "0",
                    str(ipu_disturb), ipu_disturb == 0))

    return Artifact(
        id="summary",
        title="Paper-vs-measured scoreboard",
        rows=rows,
        scale=scale,
        notes=("One-line verdicts; EXPERIMENTS.md discusses each artefact "
               "and the known deviations in full."),
    )
