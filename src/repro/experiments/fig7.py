"""Figure 7: IPU write distribution over the three SLC block levels.

Paper: ~62.7% of writes complete in Work blocks and ~32.9% in Hot blocks
on average, with the remainder in Monitor blocks.
"""

from __future__ import annotations

from ..ftl.levels import BlockLevel
from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import default_context


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Host write chunks per destination level for the IPU scheme."""
    ctx = default_context(scale, seed)
    rows = []
    totals = {int(level): 0 for level in BlockLevel}
    for trace in TRACE_NAMES:
        r = ctx.run(trace, "ipu")
        level_counts = {int(level): r.level_writes.get(int(level), 0)
                        for level in BlockLevel}
        slc_total = sum(v for k, v in level_counts.items()
                        if k != int(BlockLevel.HIGH_DENSITY))
        denom = max(1, slc_total)
        for k, v in level_counts.items():
            totals[k] += v
        rows.append({
            "Trace": trace,
            "Work": f"{level_counts[int(BlockLevel.WORK)] / denom:.1%}",
            "Monitor": f"{level_counts[int(BlockLevel.MONITOR)] / denom:.1%}",
            "Hot": f"{level_counts[int(BlockLevel.HOT)] / denom:.1%}",
            "(MLC spill)": level_counts[int(BlockLevel.HIGH_DENSITY)],
        })
    slc_sum = sum(v for k, v in totals.items()
                  if k != int(BlockLevel.HIGH_DENSITY))
    notes = (
        "Average across traces: "
        f"Work {totals[int(BlockLevel.WORK)] / max(1, slc_sum):.1%} "
        f"(paper 62.7%), Monitor {totals[int(BlockLevel.MONITOR)] / max(1, slc_sum):.1%}, "
        f"Hot {totals[int(BlockLevel.HOT)] / max(1, slc_sum):.1%} (paper 32.9%)."
    )
    return Artifact(
        id="fig7",
        title="Occurred writes distribution in three-level blocks (IPU)",
        rows=rows,
        scale=scale,
        notes=notes,
    )
