"""Figures 13 and 14: behaviour under varied device wear (P/E cycles).

The paper ages the device to four P/E levels and shows that both I/O
latency and read error rate grow with wear while IPU's advantage over MGA
persists ("fine scalability on varieties of SSD use stages").  Both
figures share one simulation sweep; the sweep uses shortened traces
(``SWEEP_LENGTH_FACTOR``) to keep the 4x matrix affordable.
"""

from __future__ import annotations

from ..traces.profiles import TRACE_NAMES
from .artifact import Artifact
from .runner import SCHEME_ORDER, RunContext, new_context, register_context_pool

#: Wear levels swept (the paper's default is 4000).
PE_LEVELS = (1000, 2000, 4000, 8000)
#: Trace-length multiplier for sweep runs.
SWEEP_LENGTH_FACTOR = 0.35
#: Traces used in the sweep (all six, as in the paper).
SWEEP_TRACES = TRACE_NAMES

_sweep_contexts: dict[tuple[str, int], RunContext] = register_context_pool({})


def sweep_context(scale: str, seed: int) -> RunContext:
    """Memoised context with shortened traces for the P/E sweep."""
    key = (scale, seed)
    if key not in _sweep_contexts:
        ctx = new_context(scale=scale, seed=seed,
                          length_factor=SWEEP_LENGTH_FACTOR)
        _sweep_contexts[key] = ctx
    return _sweep_contexts[key]


def _build(scale: str, seed: int, metric: str, fig_id: str, title: str,
           fmt: str, paper_note: str) -> Artifact:
    ctx = sweep_context(scale, seed)
    # One fan-out covers the full wear-level matrix; the loops below then
    # read from the memo.
    ctx.run_cells([(t, s, pe) for pe in PE_LEVELS for t in SWEEP_TRACES
                   for s in SCHEME_ORDER])
    rows = []
    for pe in PE_LEVELS:
        for scheme in SCHEME_ORDER:
            values = [
                getattr(ctx.run(trace, scheme, pe=pe), metric)
                for trace in SWEEP_TRACES
            ]
            rows.append({
                "P/E": pe,
                "Scheme": scheme,
                "mean": format(sum(values) / len(values), fmt),
                **{trace: format(v, fmt)
                   for trace, v in zip(SWEEP_TRACES, values)},
            })
    from ..metrics.charts import line_chart
    series = {
        scheme: [
            sum(getattr(ctx.run(t, scheme, pe=pe), metric)
                for t in SWEEP_TRACES) / len(SWEEP_TRACES)
            for pe in PE_LEVELS
        ]
        for scheme in SCHEME_ORDER
    }
    chart = line_chart(series, x_labels=list(PE_LEVELS),
                       log_y=metric == "read_error_rate",
                       title=f"{title} (mean over traces)")
    return Artifact(
        id=fig_id, title=title, rows=rows, chart=chart, scale=scale,
        notes=paper_note)


def build_latency(scale: str = "small", seed: int = 1) -> Artifact:
    """Figure 13: I/O latency under varied P/E cycles."""
    return _build(
        scale, seed, "avg_latency_ms", "fig13",
        "I/O latency under varied P/E cycles", ".4f",
        "Expected shape: latency grows with wear (longer ECC decode), and "
        "IPU <= MGA at every wear level.",
    )


def build_error_rate(scale: str = "small", seed: int = 1) -> Artifact:
    """Figure 14: read error rate under varied P/E cycles."""
    return _build(
        scale, seed, "read_error_rate", "fig14",
        "Bit error rate under varied P/E cycles", ".4e",
        "Expected shape: error rate grows superlinearly with wear; "
        "IPU < MGA at every wear level.",
    )
