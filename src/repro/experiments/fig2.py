"""Figure 2: RBER of conventional vs partial programming over P/E cycles."""

from __future__ import annotations

from .artifact import Artifact
from .runner import default_context

#: P/E cycle grid of the reproduction (the paper plots 0..5000-ish).
PE_GRID = (500, 1000, 2000, 3000, 4000, 5000, 6000, 8000)


def build(scale: str = "small", seed: int = 1) -> Artifact:
    """Evaluate both calibrated curves on the P/E grid."""
    ctx = default_context(scale, seed)
    from ..error import RberModel
    model = RberModel(ctx.config().reliability)
    curves = model.curve(list(PE_GRID))
    rows = [
        {
            "P/E cycles": int(pe),
            "conventional": f"{conv:.3e}",
            "partial": f"{part:.3e}",
            "gap": f"{part / conv:.3f}x",
        }
        for pe, conv, part in zip(curves["pe"], curves["conventional"],
                                  curves["partial"])
    ]
    from ..metrics.charts import line_chart
    chart = line_chart(
        {"conventional": list(curves["conventional"]),
         "partial": list(curves["partial"])},
        x_labels=list(PE_GRID), log_y=True, height=10,
        title="RBER vs P/E cycles (log scale)")
    return Artifact(
        id="fig2",
        title="Bit error rate: conventional vs partial programming",
        rows=rows,
        chart=chart,
        scale=scale,
        notes=("Calibration anchors (Zhang et al., FAST'16): conventional "
               "2.8e-4 and partial 3.8e-4 at 4000 P/E; the absolute gap "
               "widens with wear."),
    )
