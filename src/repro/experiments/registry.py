"""Registry mapping experiment ids to their builders."""

from __future__ import annotations

from typing import Callable

from ..errors import ExperimentError
from .artifact import Artifact
from . import (extensions, fig2, fig5, fig6, fig7, fig8, fig9, fig10,
               fig11, fig12, summary, sweep, tables)

#: id -> builder(scale, seed) -> Artifact
EXPERIMENTS: dict[str, Callable[..., Artifact]] = {
    "table1": tables.build_table1,
    "table2": tables.build_table2,
    "table3": tables.build_table3,
    "fig2": fig2.build,
    "fig5": fig5.build,
    "fig6": fig6.build,
    "fig7": fig7.build,
    "fig8": fig8.build,
    "fig9": fig9.build,
    "fig10": fig10.build_slc,
    "fig10b": fig10.build_mlc,
    "fig11": fig11.build,
    "fig12": fig12.build,
    "fig13": sweep.build_latency,
    "fig14": sweep.build_error_rate,
    "ext-delta": extensions.build_delta_comparison,
    "ext-translation": extensions.build_translation_study,
    "ext-qd": extensions.build_qd_study,
    "ext-seeds": extensions.build_seed_study,
    "ext-cache": extensions.build_cache_sensitivity,
    "summary": summary.build,
}


def get(experiment_id: str) -> Callable[..., Artifact]:
    """Builder for ``experiment_id``."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}") from None


def run(experiment_id: str, scale: str = "small", seed: int = 1, *,
        jobs: "int | None" = None, cache=None, **kwargs) -> Artifact:
    """Run one experiment and return its artifact.

    ``jobs`` (worker-process count; 0 = one per CPU) and ``cache`` (a
    :class:`~repro.experiments.cache.ResultCache`) set the process-wide
    execution defaults before building — the keyword form of the CLI's
    ``--jobs`` / ``--cache-dir`` flags.  Extra keywords pass through to
    the builder (e.g. ``qds``/``frontend`` for ``ext-qd``); an unknown
    keyword raises :class:`~repro.errors.ExperimentError` naming the
    experiment rather than a bare ``TypeError``.
    """
    from . import runner
    if jobs is not None:
        runner.configure_execution(jobs=jobs)
    if cache is not None:
        runner.configure_execution(cache=cache)
    builder = get(experiment_id)
    try:
        return builder(scale=scale, seed=seed, **kwargs)
    except TypeError as exc:
        if kwargs:
            raise ExperimentError(
                f"experiment {experiment_id!r} does not accept "
                f"{sorted(kwargs)}: {exc}") from None
        raise
