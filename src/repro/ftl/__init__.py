"""FTL framework and the two comparison schemes.

* :mod:`repro.ftl.base` — shared plumbing: read path, allocation, GC
  wiring, statistics.
* :mod:`repro.ftl.baseline` — *Baseline*: dynamic page-level mapping, no
  partial programming (read-modify-write of whole pages).
* :mod:`repro.ftl.mga` — *MGA* (Feng et al., DATE'17): subpage-granularity
  two-level mapping; small writes from different requests are packed into
  one SLC page with partial programming.

The paper's own scheme lives in :mod:`repro.core`.
"""

from .mapping import PageMap, SubpageMap
from .allocator import RegionAllocator
from .hotcold import block_isr, coldness_weight
from .victim import GreedyVictimPolicy, IsrVictimPolicy, VictimPolicy
from .gc import GarbageCollector
from .base import BaseFTL
from .baseline import BaselineFTL
from .mga import MGAFTL
from .delta import DeltaFTL

__all__ = [
    "PageMap",
    "SubpageMap",
    "RegionAllocator",
    "block_isr",
    "coldness_weight",
    "VictimPolicy",
    "GreedyVictimPolicy",
    "IsrVictimPolicy",
    "GarbageCollector",
    "BaseFTL",
    "BaselineFTL",
    "MGAFTL",
    "DeltaFTL",
]
