"""*Baseline*: dynamic page-level FTL without partial programming.

Every write chunk (the subpages of one logical page touched by a request)
consumes a whole fresh physical page, holding only the chunk's subpages at
their positional slots (logical subpage ``k`` of the LPN in slot ``k``).
Because the page can never be programmed again, slots for subpages the
request did not carry stay unused — the internal fragmentation partial
programming exists to fix.  With the paper's 4K-dominated request mix this
yields the ~53% page utilisation of Figure 9.

``merge_siblings=True`` enables a read-modify-write variant that folds the
still-valid sibling subpages of the logical page into the new page; it
trades extra GC-visible reads for better utilisation and serves as an
ablation (the paper's Baseline does not merge — its utilisation figure is
incompatible with merging).

GC is greedy (most reclaimable subpages); collected valid data leaves the
SLC-mode cache for the high-density region, keeping positional layout.
"""

from __future__ import annotations

from ..config import SSDConfig
from ..nand.block import Block
from ..nand.flash import FlashArray
from ..nand.geometry import PPA
from ..sim.ops import Cause, OpKind, OpRecord
from .base import BaseFTL
from .levels import BlockLevel
from .mapping import SubpageMap
from ..units import Lpn, Lsn, Ms


class BaselineFTL(BaseFTL):
    """Default page-mapping FTL (no partial programming)."""

    scheme_name = "baseline"
    uses_partial_programming = False

    def __init__(self, config: SSDConfig, flash: FlashArray | None = None,
                 merge_siblings: bool = False):
        self.subpage_map = SubpageMap()
        self.merge_siblings = merge_siblings
        super().__init__(config, flash)

    # -- mapping -----------------------------------------------------------

    def lookup(self, lsn: Lsn) -> PPA | None:
        return self.subpage_map.lookup(lsn)

    def iter_bindings(self):
        yield from self.subpage_map.items()

    # -- write path ------------------------------------------------------------

    def write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        ops: list[OpRecord] = []
        spp = self.geometry.subpages_per_page
        lookup = self.subpage_map.lookup
        unbind = self.subpage_map.unbind
        bind = self.subpage_map.bind
        invalidate_many = self.flash.invalidate_many
        stats = self.stats
        for chunk in self.chunks_by_lpn(lsns):
            write_lsns = chunk
            mapped_old = [lookup(lsn) for lsn in chunk]
            is_update = any(ppa is not None for ppa in mapped_old)

            if self.merge_siblings:
                lpn = chunk[0] // spp
                carry = self._collect_siblings(lpn, chunk, now, ops)
                write_lsns = sorted(set(chunk) | set(carry))
                mapped_old = [lookup(lsn) for lsn in write_lsns]

            if is_update:
                stats.update_writes += 1
            else:
                stats.new_data_writes += 1

            res = self.alloc_slc_page(BlockLevel.WORK, now, ops)
            if res is None:
                res = self.alloc_mlc_page(now, ops)
                stats.slc_overflow_chunks += 1
            block, page = res

            # Old versions of a positionally-written chunk usually share
            # one physical page — invalidate them per page, not per slot.
            stale: dict[tuple[int, int], list[int]] = {}
            for lsn, ppa in zip(write_lsns, mapped_old):
                if ppa is not None:
                    stale.setdefault((ppa.block, ppa.page), []).append(ppa.slot)
                    unbind(lsn)
            for (old_block, old_page), old_slots in stale.items():
                invalidate_many(old_block, old_page, old_slots)

            slots = [lsn % spp for lsn in write_lsns]
            op = self.program_subpages(block, page, slots, write_lsns,
                                       now, Cause.HOST)
            ops.append(op)
            if op.block_id != block.block_id or op.page != page:
                # A program failure remapped the data; bind the actual
                # destination (same slot indices).
                block = self.flash.block(op.block_id)
                page = op.page
            block_id = block.block_id
            make = PPA._make  # skips the NamedTuple __new__ frame
            for lsn, slot in zip(write_lsns, slots):
                bind(lsn, make((block_id, page, slot)))
            level = block.level if block.level is not None else 0
            stats.note_level_write(level)
        return ops

    def _collect_siblings(self, lpn: Lpn, chunk: list[int], now: Ms,
                          ops: list[OpRecord]) -> list[int]:
        """Read the logical page's other live subpages for merging."""
        spp = self.geometry.subpages_per_page
        in_chunk = set(chunk)
        carriers: dict[tuple[int, int], list[int]] = {}
        carry: list[int] = []
        for lsn in range(lpn * spp, (lpn + 1) * spp):
            if lsn in in_chunk:
                continue
            ppa = self.subpage_map.lookup(lsn)
            if ppa is None:
                continue
            carriers.setdefault((ppa.block, ppa.page), []).append(ppa.slot)
            carry.append(lsn)
        for (block_id, page), slots in carriers.items():
            slots.sort()
            values = self.flash.read_list(block_id, page, slots, now)
            ops.append(OpRecord(
                kind=OpKind.READ, block_id=block_id, page=page,
                n_slots=len(slots),
                is_slc=self.flash.block(block_id).is_slc,
                cause=Cause.HOST,
                ecc_ms=self.ecc.decode_ms_list(values),
            ))
            self.stats.rmw_read_ops += 1
        return carry

    # -- GC movement ----------------------------------------------------------------

    def _relocate_positional(self, victim: Block, page: int, slots: list[int],
                             lsns: list[Lsn], now: Ms, cause: Cause,
                             ) -> list[OpRecord]:
        """Move a page keeping slot positions; destination is always MLC.

        Baseline's SLC cache is a pure staging area: collected data leaves
        the cache for the high-density region, and high-density GC moves
        pages within the region.
        """
        ops: list[OpRecord] = []
        block, npage = self.alloc_mlc_page(now, ops, for_gc=True)
        self.flash.invalidate_many(victim.block_id, page, slots)
        op = self.program_subpages(block, npage, slots, lsns, now, cause)
        ops.append(op)
        if op.block_id != block.block_id or op.page != npage:
            block = self.flash.block(op.block_id)
            npage = op.page
        for lsn, slot in zip(lsns, slots):
            self.subpage_map.bind(lsn, PPA(block.block_id, npage, slot))
        return ops

    def _relocate_slc_page(self, victim, page, slots, lsns, now, cause):
        self.stats.evicted_subpages_to_mlc += len(slots)
        return self._relocate_positional(victim, page, slots, lsns, now, cause)

    def _relocate_mlc_page(self, victim, page, slots, lsns, now, cause):
        return self._relocate_positional(victim, page, slots, lsns, now, cause)
