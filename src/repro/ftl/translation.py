"""Demand-paged address translation (a DFTL-style cached mapping table).

The paper repeatedly notes that partial programming "results in higher
address translation latency and needs more memory for the mapping table"
(Section 1) and counts IPU's freedom from a second-level table among its
contributions.  The evaluation itself does not quantify translation
latency, so this model is an **optional extension** (off by default):

* the full mapping table lives in flash, split into *translation pages*
  of ``entries_per_page`` entries;
* the controller caches recently used translation pages in an LRU-managed
  SRAM of ``cache_pages`` slots (the CMT of DFTL, Gupta et al.);
* a lookup outside the cache costs one flash read of a translation page
  (and, for a dirtied evictee, one program), which the simulator prices
  like any other MLC read/program.

Scheme coupling: the table a scheme must page in is exactly the mapping
structure :mod:`repro.metrics.memory` sizes — Baseline/IPU one entry per
logical page, MGA additionally one entry per SLC subpage — so the same
byte counts that give Figure 11's memory ordering also drive the miss
rates here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..config import TranslationConfig
from ..errors import ConfigError

__all__ = ["TranslationConfig", "TranslationStats", "CachedMappingTable"]


@dataclass
class TranslationStats:
    """Hit/miss accounting."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cached pages."""
        return self.hits / self.lookups if self.lookups else 1.0


class CachedMappingTable:
    """LRU cache of translation pages.

    Pure bookkeeping: callers translate a logical key to a translation
    page id and ask :meth:`access`; the returned ``(miss, writeback)``
    tells the FTL which extra flash operations to charge.
    """

    def __init__(self, config: TranslationConfig):
        config.validate()
        self.config = config
        self._lru: OrderedDict[int, bool] = OrderedDict()  # page -> dirty
        self.stats = TranslationStats()

    def page_of(self, key: int) -> int:
        """Translation page holding the entry for ``key``."""
        if key < 0:
            raise ConfigError(f"negative translation key {key}")
        return key // self.config.entries_per_page

    def access(self, key: int, dirty: bool = False) -> tuple[bool, bool]:
        """Touch the entry for ``key``.

        Returns ``(miss, writeback)``: whether the translation page had to
        be fetched from flash, and whether fetching it evicted a dirty
        page that must be written back first.
        """
        page = self.page_of(key)
        self.stats.lookups += 1
        if page in self._lru:
            self.stats.hits += 1
            self._lru[page] = self._lru[page] or dirty
            self._lru.move_to_end(page)
            return False, False

        self.stats.misses += 1
        writeback = False
        if len(self._lru) >= self.config.cache_pages:
            _, evicted_dirty = self._lru.popitem(last=False)
            if evicted_dirty:
                writeback = True
                self.stats.writebacks += 1
        self._lru[page] = dirty
        return True, writeback

    @property
    def resident_pages(self) -> int:
        """Translation pages currently cached."""
        return len(self._lru)

    def flush(self) -> int:
        """Drop everything; returns the number of dirty pages flushed."""
        dirty = sum(1 for d in self._lru.values() if d)
        self._lru.clear()
        return dirty
