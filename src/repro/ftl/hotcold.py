"""Hot/cold scoring: the ISR metric of Equations 1 and 2.

The IPU GC policy scores a candidate block ``i`` by its *invalid subpage
ratio*::

    ISR_i = (IS_i + IS'_i) / TS_i                               (Eq. 1)

where ``IS_i`` counts invalidated subpages, ``TS_i`` counts all subpages,
and ``IS'_i`` weights the *never-updated* valid subpages by how cold they
look::

    IS'_i = sum_j (1 - exp(-t_ij / T))                          (Eq. 2)

``t_ij`` is the time since subpage ``j`` was last accessed and ``T`` is
the mean access interval over "all subpages" — we read that as the
*region-wide* mean (over every candidate block's valid subpages): a
block-local mean would make a uniformly-aged block score a constant
``1 - 1/e`` per subpage regardless of how long it has actually been idle,
destroying exactly the cross-block cold/hot discrimination Figure 4
illustrates.  Under the paper's Poisson-update assumption, ``1 -
exp(-t/T)`` is the probability that a subpage with mean interval ``T``
would already have been updated after ``t`` — how confidently the data
can be called cold.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nand.block import Block
from ..units import Ms


def coldness_weight(t_ij: np.ndarray, t_mean: float) -> np.ndarray:
    """``1 - exp(-t_ij / T)`` with a guard for a degenerate mean."""
    if t_mean <= 0.0:
        return np.zeros_like(np.asarray(t_ij, dtype=np.float64))
    return 1.0 - np.exp(-np.asarray(t_ij, dtype=np.float64) / t_mean)


def block_age_sum(block: Block, now: Ms) -> tuple[float, int]:
    """Sum of valid-subpage ages and their count (region-mean ingredient)."""
    if block.slot_time is None:
        raise ValueError("age accounting is defined for SLC-mode blocks only")
    if block.n_valid == 0:
        return 0.0, 0
    times = block.slot_time[block.valid]
    return float(block.n_valid * now - times.sum()), block.n_valid


def region_mean_age(blocks: Iterable[Block], now: Ms) -> float:
    """Mean age of valid subpages across candidate blocks (the ``T``)."""
    total = 0.0
    count = 0
    for block in blocks:
        s, n = block_age_sum(block, now)
        total += s
        count += n
    return total / count if count else 0.0


def block_coldness(block: Block, now: Ms, t_mean: float | None = None) -> float:
    """``IS'_i`` of Equation 2 for one SLC-mode block.

    The index set J contains the valid subpages of pages whose resident
    data was never updated while in this block; an intra-page update both
    invalidates old slots and marks the page updated, so everything still
    valid in a non-updated page is by definition not-yet-updated data.

    ``t_mean`` is the mean access interval ``T``; when omitted, the
    block's own mean valid-subpage age is used (self-normalised variant).
    """
    if block.slot_time is None:
        raise ValueError("IS' is defined for SLC-mode blocks only")
    valid = block.valid
    if block.n_valid == 0:
        return 0.0
    if t_mean is None:
        age_sum, count = block_age_sum(block, now)
        t_mean = age_sum / count
    if not block.page_updated.any():
        # Common case (no update ever hit this block): J covers every
        # valid subpage.
        ages = now - block.slot_time[valid]
        return float(coldness_weight(ages, t_mean).sum())
    never_updated = valid & ~block.page_updated[:, None]
    if not never_updated.any():
        return 0.0
    ages_cold = now - block.slot_time[never_updated]
    return float(coldness_weight(ages_cold, t_mean).sum())


def block_isr(block: Block, now: Ms, t_mean: float | None = None) -> float:
    """``ISR_i`` of Equation 1."""
    return (block.n_invalid + block_coldness(block, now, t_mean)) / block.total_subpages
