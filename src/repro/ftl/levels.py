"""Block-level labels.

Section 3.1 defines four levels in ascending order: *High-density Block*
(the native MLC region), then the SLC-mode *Work*, *Monitor* and *Hot*
blocks.  New data enters at Work level; every update that overflows its
page promotes the data one level; GC demotes never-updated data one level,
ejecting it to the high-density region once it falls below Work.

Baseline and MGA do not differentiate SLC blocks — they allocate
everything at Work level.
"""

from __future__ import annotations

import enum


class BlockLevel(enum.IntEnum):
    """The paper's three-plus-one level hierarchy (Algorithm 1's block_flag)."""

    HIGH_DENSITY = 0
    WORK = 1
    MONITOR = 2
    HOT = 3

    @property
    def is_slc(self) -> bool:
        """True for levels living in the SLC-mode cache."""
        return self is not BlockLevel.HIGH_DENSITY

    def promoted(self) -> "BlockLevel":
        """Level for data whose update overflowed its page (upgrade move)."""
        return BlockLevel(min(int(self) + 1, int(BlockLevel.HOT)))

    def demoted(self) -> "BlockLevel":
        """Level for never-updated data during GC (degrade move)."""
        return BlockLevel(max(int(self) - 1, int(BlockLevel.HIGH_DENSITY)))


#: Levels the SLC-mode cache hosts, ascending.
SLC_LEVELS: tuple[BlockLevel, ...] = (
    BlockLevel.WORK, BlockLevel.MONITOR, BlockLevel.HOT,
)
