"""Logical-to-physical mapping tables.

Two granularities are provided:

* :class:`PageMap` — LPN -> (block, page), the classic dynamic page-level
  table the *Baseline* scheme uses (subpages sit positionally inside the
  page: logical subpage ``k`` of the LPN occupies slot ``k``),
* :class:`SubpageMap` — LSN -> (block, page, slot), the second-level table
  partial-programming schemes need (MGA's packing, IPU's intra-page
  offsets).

Both structures count their own entries so the memory-overhead experiment
(Figure 11) can be driven by real occupancy; the byte-cost *model* per
scheme lives in :mod:`repro.metrics.memory`.
"""

from __future__ import annotations

from ..errors import MappingError
from ..nand.geometry import PPA
from ..units import Lpn, Lsn


class PageMap:
    """Dynamic page-level mapping: LPN -> (block, page)."""

    def __init__(self):
        self._map: dict[Lpn, tuple[int, int]] = {}
        # Bind the lookup straight to dict.get: the method body below is
        # documentation; the instance attribute skips one Python frame on
        # the hottest call in the FTL.
        self.lookup = self._map.get

    def lookup(self, lpn: Lpn) -> tuple[int, int] | None:
        """Physical page of ``lpn``, or None if unmapped."""
        return self._map.get(lpn)

    def bind(self, lpn: Lpn, block: int, page: int) -> None:
        """Map ``lpn`` to a physical page (replacing any previous binding)."""
        if lpn < 0:
            raise MappingError(f"negative LPN {lpn}")
        self._map[lpn] = (block, page)

    def unbind(self, lpn: Lpn) -> None:
        """Drop the binding of ``lpn``."""
        if lpn not in self._map:
            raise MappingError(f"LPN {lpn} not mapped")
        del self._map[lpn]

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lpn: Lpn) -> bool:
        return lpn in self._map

    def items(self):
        """Iterate ``(lpn, (block, page))`` bindings."""
        return self._map.items()


class SubpageMap:
    """Subpage-level mapping: LSN -> :class:`PPA`."""

    def __init__(self):
        self._map: dict[Lsn, PPA] = {}
        # Same one-frame shortcut as PageMap.lookup.
        self.lookup = self._map.get

    def lookup(self, lsn: Lsn) -> PPA | None:
        """Physical subpage of ``lsn``, or None if unmapped."""
        return self._map.get(lsn)

    def bind(self, lsn: Lsn, ppa: PPA) -> None:
        """Map ``lsn`` to a physical subpage."""
        if lsn < 0:
            raise MappingError(f"negative LSN {lsn}")
        self._map[lsn] = ppa

    def unbind(self, lsn: Lsn) -> None:
        """Drop the binding of ``lsn``."""
        if lsn not in self._map:
            raise MappingError(f"LSN {lsn} not mapped")
        del self._map[lsn]

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lsn: Lsn) -> bool:
        return lsn in self._map

    def items(self):
        """Iterate ``(lsn, ppa)`` bindings."""
        return self._map.items()
