"""Block allocation for one region (SLC-mode cache or high-density).

Two jobs:

* **wear-aware free pools** — one min-heap of free blocks per plane,
  keyed by erase count, so fresh writes land on the least-worn block of
  their plane (dynamic wear levelling);
* **striped active blocks** — one open block per (level, plane), with
  allocations rotating round-robin over the planes, so consecutive writes
  spread across channels and chips (the multilevel parallelism SSDsim is
  built around; a single global active block would serialise the whole
  device onto one chip).

Page allocation is always an active block's next sequential page, as NAND
requires.
"""

from __future__ import annotations

import heapq

from ..errors import AllocationError
from ..nand.block import Block, BlockState
from ..nand.flash import FlashArray

#: Free blocks host allocations may not dip into — garbage collection
#: always needs landing room, or a nearly-full region deadlocks.
GC_RESERVE_BLOCKS = 2


class RegionAllocator:
    """Free-pool and active-block management for one region."""

    def __init__(self, flash: FlashArray, block_ids: list[int], name: str,
                 max_stripes: int | None = None):
        if not block_ids:
            raise AllocationError(f"region {name!r} has no blocks")
        self.flash = flash
        self.name = name
        self.block_ids = list(block_ids)
        self.total_blocks = len(block_ids)

        geometry = flash.geometry
        plane_of = geometry.plane_of
        planes = sorted({plane_of(b) for b in block_ids})
        stripes = len(planes)
        if max_stripes is not None:
            # Small regions cannot afford one open block per plane per
            # level; folding planes into fewer stripes trades a little
            # parallelism for bounded active-block overhead.
            stripes = max(1, min(stripes, max_stripes))
        self._plane_index = {plane: i % stripes for i, plane in enumerate(planes)}
        self.stripes = stripes
        self._free: list[list[tuple[int, int]]] = [[] for _ in range(stripes)]
        for block_id in block_ids:
            stripe = self._plane_index[plane_of(block_id)]
            self._free[stripe].append(
                (flash.block(block_id).erase_count, block_id))
        for heap in self._free:
            heapq.heapify(heap)
        self._free_count = self.total_blocks

        #: (level, stripe) -> open block.
        self.active: dict[tuple[int, int], Block] = {}
        #: level -> next stripe to allocate from (round robin).
        self._cursor: dict[int, int] = {}
        self.allocated_pages = 0

    # -- pool state -----------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Number of blocks in the free pools."""
        return self._free_count

    @property
    def free_fraction(self) -> float:
        """Free-pool share of the region (drives the GC trigger)."""
        return self._free_count / self.total_blocks

    def release(self, block_id: int) -> None:
        """Return an erased block to its plane's free pool."""
        block = self.flash.block(block_id)
        if block.state is not BlockState.FREE:
            raise AllocationError(
                f"region {self.name}: releasing non-free block {block_id} "
                f"({block.state.value})")
        stripe = self._plane_index[self.flash.geometry.plane_of(block_id)]
        heapq.heappush(self._free[stripe], (block.erase_count, block_id))
        self._free_count += 1

    def _pop_free(self, stripe: int, level: int, now: float) -> Block | None:
        """Open the least-worn free block, preferring ``stripe``'s plane."""
        order = [stripe] + [s for s in range(self.stripes) if s != stripe]
        for s in order:
            heap = self._free[s]
            while heap:
                _, block_id = heapq.heappop(heap)
                block = self.flash.block(block_id)
                if block.state is BlockState.FREE:
                    block.open_as(level, now)
                    self._free_count -= 1
                    return block
                # Stale entry: the block was reopened through another path.
        return None

    # -- page allocation ---------------------------------------------------

    def alloc_page(self, level: int, now: float,
                   for_gc: bool = False) -> tuple[Block, int] | None:
        """Next free page of the active block for ``level``.

        Rotates over the planes; opens a fresh block when the stripe's
        active one is full or stale.  Returns ``None`` when every pool is
        exhausted (caller must collect garbage or fall back to the other
        region).  Host allocations (``for_gc=False``) may not open one of
        the last :data:`GC_RESERVE_BLOCKS` free blocks — relocation always
        needs landing room.
        """
        stripe = self._cursor.get(level, 0)
        self._cursor[level] = (stripe + 1) % self.stripes

        block = self.active.get((level, stripe))
        # The active reference can go stale: a FULL active may be chosen
        # as a GC victim, erased, released — or even reopened under
        # another level.  Only an OPEN, non-full block labelled for this
        # level is programmable here.
        if (block is None or block.state is not BlockState.OPEN
                or block.is_full or block.level != level):
            if not for_gc and self._free_count <= GC_RESERVE_BLOCKS:
                return None
            block = self._pop_free(stripe, level, now)
            if block is None:
                return None
            self.active[(level, stripe)] = block
        self.allocated_pages += 1
        return block, block.next_page

    def peek_active(self, level: int, stripe: int = 0) -> Block | None:
        """Current active block of ``(level, stripe)`` (may be stale)."""
        return self.active.get((level, stripe))

    # -- GC support ----------------------------------------------------------

    def victim_candidates(self) -> list[Block]:
        """Blocks eligible for collection: fully-programmed, not free."""
        out = []
        for block_id in self.block_ids:
            block = self.flash.block(block_id)
            if block.state is BlockState.FULL:
                out.append(block)
        return out

    def occupancy(self) -> dict[str, int]:
        """Snapshot used by tests and reports."""
        states = {s: 0 for s in BlockState}
        for block_id in self.block_ids:
            states[self.flash.block(block_id).state] += 1
        return {s.value: n for s, n in states.items()}
