"""Block allocation for one region (SLC-mode cache or high-density).

Two jobs:

* **wear-aware free pools** — one min-heap of free blocks per plane,
  keyed by erase count, so fresh writes land on the least-worn block of
  their plane (dynamic wear levelling);
* **striped active blocks** — one open block per (level, plane), with
  allocations rotating round-robin over the planes, so consecutive writes
  spread across channels and chips (the multilevel parallelism SSDsim is
  built around; a single global active block would serialise the whole
  device onto one chip).

Page allocation is always an active block's next sequential page, as NAND
requires.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import AllocationError
from ..nand.block import Block, BlockState
from ..nand.flash import FlashArray
from ..units import Ms

#: Free blocks host allocations may not dip into — garbage collection
#: always needs landing room, or a nearly-full region deadlocks.
GC_RESERVE_BLOCKS = 2


class VictimIndex:
    """Incremental GC-candidate index for one region.

    Membership is the set of FULL blocks, maintained by the
    :class:`~repro.nand.block.Block` watcher callbacks (``note_enter`` on
    OPEN→FULL, ``note_leave`` on victim selection or erase) instead of an
    O(region) state scan per GC trigger.  Score ingredients live in
    ascending-``block_id`` NumPy arrays that are rebuilt only when
    membership changes (``version`` bump) and patched in place for the
    *dirty* blocks whose content changed since the arrays were filled —
    so a victim selection costs O(dirty) updates plus one vectorised
    ``argmax`` over integers, in place of a full region rescan.

    The ascending-id order matters: it matches the order of the naive
    :meth:`RegionAllocator.victim_candidates` scan, so first-maximum
    selection (``np.argmax``) resolves score ties to the lowest
    ``block_id`` exactly like the documented policy tie-break.
    """

    __slots__ = ("flash", "block_ids", "members", "dirty", "version",
                 "_built_version", "blocks_list", "ids", "n_valid_arr",
                 "n_invalid_arr", "pages_free_arr", "total_sp_arr", "_slot")

    def __init__(self, flash: FlashArray, block_ids: list[int]):
        self.flash = flash
        self.block_ids = list(block_ids)
        #: block_id -> Block for every FULL block (the candidate set).
        self.members: dict[int, Block] = {}
        #: Members whose content changed since their array slot was filled.
        self.dirty: set[int] = set()
        #: Bumped on every membership change; triggers an array rebuild.
        self.version = 0
        self._built_version = -1
        self.blocks_list: list[Block] = []
        self.ids = np.empty(0, dtype=np.int64)
        self.n_valid_arr = np.empty(0, dtype=np.int64)
        self.n_invalid_arr = np.empty(0, dtype=np.int64)
        self.pages_free_arr = np.empty(0, dtype=np.int64)
        self.total_sp_arr = np.empty(0, dtype=np.int64)
        self._slot: dict[int, int] = {}
        for block_id in block_ids:
            block = flash.block(block_id)
            block.index = self
            if block.state is BlockState.FULL:
                self.members[block_id] = block

    # -- watcher callbacks (hot path: keep trivial) --------------------

    def note_enter(self, block: Block) -> None:
        """A block became FULL: it joins the candidate set."""
        self.members[block.block_id] = block
        self.version += 1

    def note_leave(self, block_id: int) -> None:
        """A member left (chosen as victim, or erased)."""
        if self.members.pop(block_id, None) is not None:
            self.version += 1
            self.dirty.discard(block_id)

    def note_change(self, block_id: int) -> None:
        """A member's content changed: its array slot is stale."""
        if block_id in self.members:
            self.dirty.add(block_id)

    # -- selection support ---------------------------------------------

    def _fill(self, i: int, block: Block) -> None:
        self.n_valid_arr[i] = block.n_valid
        self.n_invalid_arr[i] = block.n_invalid
        self.pages_free_arr[i] = block.pages - block.pages_with_valid
        self.total_sp_arr[i] = block.total_subpages

    def refresh(self) -> list[Block]:
        """Bring the score arrays current; returns the candidate blocks
        in ascending ``block_id`` order (aligned with the arrays)."""
        if self._built_version != self.version:
            order = sorted(self.members)
            self.blocks_list = [self.members[i] for i in order]
            self.ids = np.array(order, dtype=np.int64)
            self._slot = {bid: i for i, bid in enumerate(order)}
            n = len(order)
            self.n_valid_arr = np.empty(n, dtype=np.int64)
            self.n_invalid_arr = np.empty(n, dtype=np.int64)
            self.pages_free_arr = np.empty(n, dtype=np.int64)
            self.total_sp_arr = np.empty(n, dtype=np.int64)
            for i, block in enumerate(self.blocks_list):
                self._fill(i, block)
            self.dirty.clear()
            self._built_version = self.version
        elif self.dirty:
            slot = self._slot
            members = self.members
            # Slots are disjoint, so any order gives the same arrays; sorted
            # keeps the patch order itself deterministic (lint rule D003).
            for bid in sorted(self.dirty):
                self._fill(slot[bid], members[bid])
            self.dirty.clear()
        return self.blocks_list

    def candidates(self) -> list[Block]:
        """Current FULL blocks, ascending ``block_id`` (naive-scan order)."""
        return self.refresh()

    def verify(self) -> None:
        """Consistency-hook support: assert membership and scores agree
        with a naive rescan of the region."""
        rescan = {
            block.block_id
            for block in (self.flash.block(i) for i in self.block_ids)
            if block.state is BlockState.FULL
        }
        if rescan != set(self.members):
            raise AllocationError(
                f"victim index drifted: members {sorted(self.members)} "
                f"!= rescan {sorted(rescan)}")
        self.refresh()
        for i, block in enumerate(self.blocks_list):
            kept = (int(self.n_valid_arr[i]), int(self.n_invalid_arr[i]),
                    int(self.pages_free_arr[i]), int(self.total_sp_arr[i]))
            naive = (block.n_valid, block.n_invalid,
                     block.pages - block.pages_with_valid, block.total_subpages)
            pages_with_valid = int(block.valid.any(axis=1).sum())
            if kept != naive or block.pages_with_valid != pages_with_valid:
                raise AllocationError(
                    f"victim index scores drifted for block {block.block_id}: "
                    f"kept {kept}, naive {naive}, "
                    f"pages_with_valid {block.pages_with_valid} "
                    f"vs rescan {pages_with_valid}")


class RegionAllocator:
    """Free-pool and active-block management for one region."""

    def __init__(self, flash: FlashArray, block_ids: list[int], name: str,
                 max_stripes: int | None = None):
        if not block_ids:
            raise AllocationError(f"region {name!r} has no blocks")
        self.flash = flash
        self.name = name
        self.block_ids = list(block_ids)
        self.total_blocks = len(block_ids)

        geometry = flash.geometry
        plane_of = geometry.plane_of
        planes = sorted({plane_of(b) for b in block_ids})
        stripes = len(planes)
        if max_stripes is not None:
            # Small regions cannot afford one open block per plane per
            # level; folding planes into fewer stripes trades a little
            # parallelism for bounded active-block overhead.
            stripes = max(1, min(stripes, max_stripes))
        self._plane_index = {plane: i % stripes for i, plane in enumerate(planes)}
        self.stripes = stripes
        self._free: list[list[tuple[int, int]]] = [[] for _ in range(stripes)]
        for block_id in block_ids:
            stripe = self._plane_index[plane_of(block_id)]
            self._free[stripe].append(
                (flash.block(block_id).erase_count, block_id))
        for heap in self._free:
            heapq.heapify(heap)
        self._free_count = self.total_blocks

        #: (level, stripe) -> open block.
        self.active: dict[tuple[int, int], Block] = {}
        #: level -> next stripe to allocate from (round robin).
        self._cursor: dict[int, int] = {}
        self.allocated_pages = 0

        #: Incrementally-maintained GC candidate set + score arrays.
        self.victim_index = VictimIndex(flash, self.block_ids)

    # -- pool state -----------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Number of blocks in the free pools."""
        return self._free_count

    @property
    def free_fraction(self) -> float:
        """Free-pool share of the region (drives the GC trigger)."""
        return self._free_count / self.total_blocks

    @property
    def retired_blocks(self) -> int:
        """Grown bad blocks permanently lost to the region (capacity
        degradation under fault injection; 0 without a fault plan)."""
        flash = self.flash
        return sum(1 for bid in self.block_ids
                   if flash.block(bid).state is BlockState.RETIRED)

    def release(self, block_id: int) -> None:
        """Return an erased block to its plane's free pool."""
        block = self.flash.block(block_id)
        if block.state is not BlockState.FREE:
            raise AllocationError(
                f"region {self.name}: releasing non-free block {block_id} "
                f"({block.state.value})")
        stripe = self._plane_index[self.flash.geometry.plane_of(block_id)]
        heapq.heappush(self._free[stripe], (block.erase_count, block_id))
        self._free_count += 1

    def _pop_free(self, stripe: int, level: int, now: Ms) -> Block | None:
        """Open the least-worn free block, preferring ``stripe``'s plane."""
        order = [stripe] + [s for s in range(self.stripes) if s != stripe]
        for s in order:
            heap = self._free[s]
            while heap:
                _, block_id = heapq.heappop(heap)
                block = self.flash.block(block_id)
                if block.state is BlockState.FREE:
                    block.open_as(level, now)
                    self._free_count -= 1
                    return block
                # Stale entry: the block was reopened through another path.
        return None

    # -- page allocation ---------------------------------------------------

    def alloc_page(self, level: int, now: Ms,
                   for_gc: bool = False) -> tuple[Block, int] | None:
        """Next free page of the active block for ``level``.

        Rotates over the planes; opens a fresh block when the stripe's
        active one is full or stale.  Returns ``None`` when every pool is
        exhausted (caller must collect garbage or fall back to the other
        region).  Host allocations (``for_gc=False``) may not open one of
        the last :data:`GC_RESERVE_BLOCKS` free blocks — relocation always
        needs landing room.
        """
        stripe = self._cursor.get(level, 0)
        self._cursor[level] = (stripe + 1) % self.stripes

        block = self.active.get((level, stripe))
        # The active reference can go stale: a FULL active may be chosen
        # as a GC victim, erased, released — or even reopened under
        # another level.  Only an OPEN, non-full block labelled for this
        # level is programmable here.
        if (block is None or block.state is not BlockState.OPEN
                or block.is_full or block.level != level):
            if not for_gc and self._free_count <= GC_RESERVE_BLOCKS:
                return None
            block = self._pop_free(stripe, level, now)
            if block is None:
                return None
            self.active[(level, stripe)] = block
        self.allocated_pages += 1
        return block, block.next_page

    def peek_active(self, level: int, stripe: int = 0) -> Block | None:
        """Current active block of ``(level, stripe)`` (may be stale)."""
        return self.active.get((level, stripe))

    # -- GC support ----------------------------------------------------------

    def victim_candidates(self) -> list[Block]:
        """Blocks eligible for collection: fully-programmed, not free.

        Served from the incremental :class:`VictimIndex` (ascending
        ``block_id``, identical to the historical full-region scan).
        """
        return self.victim_index.candidates()

    def occupancy(self) -> dict[str, int]:
        """Snapshot used by tests and reports."""
        states = {s: 0 for s in BlockState}
        for block_id in self.block_ids:
            states[self.flash.block(block_id).state] += 1
        return {s.value: n for s, n in states.items()}
