"""GC victim-selection policies.

* :class:`GreedyVictimPolicy` — the conventional policy (Baseline, MGA,
  and both schemes' high-density region): pick the block that frees the
  most space.
* :class:`GreedyPageVictimPolicy` — greedy on reclaimable *whole pages*,
  for schemes whose GC moves pages one-to-one without compaction.
* :class:`IsrVictimPolicy` — IPU's policy: pick the block with the largest
  invalid-subpage ratio including the coldness weight of Equation 2, so
  blocks full of cold valid data are preferred and their data gets sifted
  down the level hierarchy.

Every policy offers two equivalent selection paths:

* ``select(candidates, now)`` — the naive reference scan over an explicit
  candidate list.  Kept deliberately simple; the property tests
  (``tests/test_victim_properties.py``) use it as the ground truth.
* ``select_indexed(index, now)`` — the fast path over a
  :class:`~repro.ftl.allocator.VictimIndex`, whose incrementally-maintained
  score arrays turn a selection into O(dirty) patches plus one vectorised
  ``argmax``.  Both paths return the same block for the same device state.

**Tie-breaking rule (all policies):** among candidates with the same best
score, the lowest ``block_id`` wins, regardless of candidate iteration
order.  The indexed path gets this for free — ``np.argmax`` returns the
*first* maximum of the ascending-``block_id`` score array — and the naive
scan implements it explicitly.

**Scan-cost accounting** is split into two channels so the host-side
optimisation cannot distort the paper's Figure 12:

* ``scan_seconds`` — measured host wall time (:func:`time.perf_counter`),
  a nondeterministic diagnostic;
* ``scanned_blocks`` / ``modelled_scan_ms`` — the *modelled* cost of the
  scan the device firmware would perform: every candidate block examined
  is charged a per-block constant (ISR pays more per block, it reads the
  stored 4-byte IS' record of Section 4.4.1 on top of the invalid
  counter).  This count is deterministic and independent of how fast the
  simulator happens to evaluate the scan.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol

import numpy as np

from ..nand.block import Block
from .hotcold import block_age_sum, block_coldness
from ..units import Ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (allocator imports us)
    from .allocator import VictimIndex

#: Modelled firmware cost of examining one candidate in a greedy scan
#: (read one on-chip counter, one compare).
MODELLED_SCAN_NS_PER_BLOCK_GREEDY = 100.0
#: ISR additionally reads the stored 4-byte IS' record per block
#: (Section 4.4.1), modelled at 2.5x the greedy per-block cost.
MODELLED_SCAN_NS_PER_BLOCK_ISR = 250.0


class VictimPolicy(Protocol):
    """Selects one victim from fully-programmed candidate blocks."""

    #: Accumulated selection wall time (seconds) and scan count.
    scan_seconds: float
    scans: int
    #: Deterministic count of candidate blocks examined over all scans.
    scanned_blocks: int

    def select(self, candidates: list[Block], now: Ms) -> Block | None:
        """Return the victim, or None when no candidate is worth collecting."""
        ...  # pragma: no cover

    def select_indexed(self, index: "VictimIndex", now: Ms) -> Block | None:
        """Same selection served from the incremental victim index."""
        ...  # pragma: no cover


class _ScanAccounting:
    """Shared wall-time + modelled-cost bookkeeping."""

    #: Per-block modelled scan cost; subclasses override.
    modelled_ns_per_block = MODELLED_SCAN_NS_PER_BLOCK_GREEDY

    def __init__(self):
        self.scan_seconds = 0.0
        self.scans = 0
        self.scanned_blocks = 0

    @property
    def modelled_scan_ms(self) -> float:
        """Deterministic modelled scan cost over all selections (Figure 12)."""
        return self.scanned_blocks * self.modelled_ns_per_block * 1e-6


class GreedyVictimPolicy(_ScanAccounting):
    """Pick the block with the most reclaimable subpages.

    Ties on the score are broken to the **lowest** ``block_id``, whatever
    order the candidates arrive in, so selection is a pure function of
    device state.
    """

    def select(self, candidates: list[Block], now: Ms) -> Block | None:
        start = time.perf_counter()
        best: Block | None = None
        best_score = 0
        for block in candidates:
            score = block.reclaimable_subpages
            if score > best_score or (score == best_score and best is not None
                                      and score > 0 and block.block_id < best.block_id):
                best = block
                best_score = score
        self.scans += 1
        self.scanned_blocks += len(candidates)
        self.scan_seconds += time.perf_counter() - start
        return best if best_score > 0 else None

    def select_indexed(self, index: "VictimIndex", now: Ms) -> Block | None:
        start = time.perf_counter()
        blocks = index.refresh()
        best: Block | None = None
        if blocks:
            scores = index.total_sp_arr - index.n_valid_arr
            i = int(np.argmax(scores))  # first max == lowest block_id
            if scores[i] > 0:
                best = blocks[i]
        self.scans += 1
        self.scanned_blocks += len(blocks)
        self.scan_seconds += time.perf_counter() - start
        return best


class GreedyPageVictimPolicy(_ScanAccounting):
    """Pick the block that frees the most whole pages.

    The right greedy metric for schemes whose GC moves pages one-to-one
    without compaction (Baseline's positional layout, IPU's extent-grouped
    pages): a page with any valid slot costs a full destination page, so
    only fully-invalid (or never-programmed) pages actually free space.

    Ties are broken to the lowest ``block_id`` regardless of candidate
    iteration order.
    """

    def select(self, candidates: list[Block], now: Ms) -> Block | None:
        start = time.perf_counter()
        best: Block | None = None
        best_score = 0
        for block in candidates:
            score = block.pages - block.pages_with_valid
            if score > best_score or (score == best_score and best is not None
                                      and score > 0 and block.block_id < best.block_id):
                best = block
                best_score = score
        self.scans += 1
        self.scanned_blocks += len(candidates)
        self.scan_seconds += time.perf_counter() - start
        return best if best_score > 0 else None

    def select_indexed(self, index: "VictimIndex", now: Ms) -> Block | None:
        start = time.perf_counter()
        blocks = index.refresh()
        best: Block | None = None
        if blocks:
            scores = index.pages_free_arr
            i = int(np.argmax(scores))  # first max == lowest block_id
            if scores[i] > 0:
                best = blocks[i]
        self.scans += 1
        self.scanned_blocks += len(blocks)
        self.scan_seconds += time.perf_counter() - start
        return best


class IsrVictimPolicy(_ScanAccounting):
    """Pick the block with the largest ISR (Equations 1 and 2).

    ``T`` is the region-wide mean age of valid subpages (see
    :mod:`repro.ftl.hotcold`).  Mirrors the paper's stored-IS' design
    (Section 4.4.1 keeps a 4-byte IS' record per SLC page): per-block age
    sums and coldness terms are cached and only recomputed when the
    block's content changed or the cached value is older than
    ``refresh_ms``, so a GC scan is one comparison per block instead of
    one Equation-2 evaluation per subpage.  (Equation 2 itself is
    evaluated as one vectorised ``np.exp`` over the block's subpages when
    a cache entry does need recomputing; batching *across* blocks would
    change summation grouping and is deliberately avoided to keep results
    byte-identical to the scalar reference.)

    Ties on the ISR score are broken to the lowest ``block_id`` regardless
    of candidate iteration order.
    """

    modelled_ns_per_block = MODELLED_SCAN_NS_PER_BLOCK_ISR

    def __init__(self, refresh_ms: float = 100.0):
        super().__init__()
        self.refresh_ms = refresh_ms
        #: block_id -> (content_epoch, computed_at, age_sum, n_valid)
        self._age_cache: dict[int, tuple[int, float, float, int]] = {}
        #: block_id -> (content_epoch, computed_at, t_mean, coldness)
        self._cold_cache: dict[int, tuple[int, float, float, float]] = {}

    def _age_sum(self, block: Block, now: Ms) -> tuple[float, int]:
        cached = self._age_cache.get(block.block_id)
        if (cached is not None and cached[0] == block.content_epoch
                and now - cached[1] <= self.refresh_ms):
            epoch, at, age_sum, count = cached
            # Ages grow linearly with the clock: shift the cached sum.
            return age_sum + count * (now - at), count
        age_sum, count = block_age_sum(block, now)
        self._age_cache[block.block_id] = (block.content_epoch, now, age_sum, count)
        return age_sum, count

    def _coldness(self, block: Block, now: Ms, t_mean: float) -> float:
        cached = self._cold_cache.get(block.block_id)
        if (cached is not None and cached[0] == block.content_epoch
                and now - cached[1] <= self.refresh_ms
                and abs(t_mean - cached[2]) <= 0.25 * max(cached[2], 1e-9)):
            return cached[3]
        value = block_coldness(block, now, t_mean)
        self._cold_cache[block.block_id] = (block.content_epoch, now, t_mean, value)
        return value

    def select(self, candidates: list[Block], now: Ms) -> Block | None:
        start = time.perf_counter()
        total_age = 0.0
        total_count = 0
        for block in candidates:
            age_sum, count = self._age_sum(block, now)
            total_age += age_sum
            total_count += count
        t_mean = total_age / total_count if total_count else 0.0

        best: Block | None = None
        best_score = 0.0
        for block in candidates:
            score = (block.n_invalid
                     + self._coldness(block, now, t_mean)) / block.total_subpages
            if score > best_score or (score == best_score and best is not None
                                      and score > 0.0
                                      and block.block_id < best.block_id):
                best = block
                best_score = score
        self.scans += 1
        self.scanned_blocks += len(candidates)
        self.scan_seconds += time.perf_counter() - start
        return best if best_score > 0.0 else None

    def select_indexed(self, index: "VictimIndex", now: Ms) -> Block | None:
        # The index supplies the candidate set without an O(region) state
        # scan; the ISR accumulation itself must stay the sequential
        # scalar loop (identical float-summation order) and already runs
        # in O(candidates) dictionary hits thanks to the stored-IS' cache.
        return self.select(index.candidates(), now)
