"""GC victim-selection policies.

* :class:`GreedyVictimPolicy` — the conventional policy (Baseline, MGA,
  and both schemes' high-density region): scan every candidate and pick
  the block that frees the most space.
* :class:`IsrVictimPolicy` — IPU's policy: pick the block with the largest
  invalid-subpage ratio including the coldness weight of Equation 2, so
  blocks full of cold valid data are preferred and their data gets sifted
  down the level hierarchy.

Both policies time their scans with :func:`time.perf_counter`; the
accumulated wall time feeds the computation-overhead experiment
(Figure 12).
"""

from __future__ import annotations

import time
from typing import Protocol

from ..nand.block import Block
from .hotcold import block_age_sum, block_coldness


class VictimPolicy(Protocol):
    """Selects one victim from fully-programmed candidate blocks."""

    #: Accumulated selection wall time (seconds) and scan count.
    scan_seconds: float
    scans: int

    def select(self, candidates: list[Block], now: float) -> Block | None:
        """Return the victim, or None when no candidate is worth collecting."""
        ...  # pragma: no cover


class GreedyVictimPolicy:
    """Pick the block with the most reclaimable subpages."""

    def __init__(self):
        self.scan_seconds = 0.0
        self.scans = 0

    def select(self, candidates: list[Block], now: float) -> Block | None:
        start = time.perf_counter()
        best: Block | None = None
        best_score = 0
        for block in candidates:
            score = block.reclaimable_subpages
            if score > best_score or (score == best_score and best is not None
                                      and score > 0 and block.block_id < best.block_id):
                best = block
                best_score = score
        self.scan_seconds += time.perf_counter() - start
        self.scans += 1
        return best if best_score > 0 else None


class GreedyPageVictimPolicy:
    """Pick the block that frees the most whole pages.

    The right greedy metric for schemes whose GC moves pages one-to-one
    without compaction (Baseline's positional layout, IPU's extent-grouped
    pages): a page with any valid slot costs a full destination page, so
    only fully-invalid (or never-programmed) pages actually free space.
    """

    def __init__(self):
        self.scan_seconds = 0.0
        self.scans = 0

    def select(self, candidates: list[Block], now: float) -> Block | None:
        start = time.perf_counter()
        best: Block | None = None
        best_score = 0
        for block in candidates:
            pages_with_valid = int(block.valid.any(axis=1).sum())
            score = block.pages - pages_with_valid
            if score > best_score:
                best = block
                best_score = score
        self.scan_seconds += time.perf_counter() - start
        self.scans += 1
        return best if best_score > 0 else None


class IsrVictimPolicy:
    """Pick the block with the largest ISR (Equations 1 and 2).

    ``T`` is the region-wide mean age of valid subpages (see
    :mod:`repro.ftl.hotcold`).  Mirrors the paper's stored-IS' design
    (Section 4.4.1 keeps a 4-byte IS' record per SLC page): per-block age
    sums and coldness terms are cached and only recomputed when the
    block's content changed or the cached value is older than
    ``refresh_ms``, so a GC scan is one comparison per block instead of
    one Equation-2 evaluation per subpage.
    """

    def __init__(self, refresh_ms: float = 100.0):
        self.scan_seconds = 0.0
        self.scans = 0
        self.refresh_ms = refresh_ms
        #: block_id -> (content_epoch, computed_at, age_sum, n_valid)
        self._age_cache: dict[int, tuple[int, float, float, int]] = {}
        #: block_id -> (content_epoch, computed_at, t_mean, coldness)
        self._cold_cache: dict[int, tuple[int, float, float, float]] = {}

    def _age_sum(self, block: Block, now: float) -> tuple[float, int]:
        cached = self._age_cache.get(block.block_id)
        if (cached is not None and cached[0] == block.content_epoch
                and now - cached[1] <= self.refresh_ms):
            epoch, at, age_sum, count = cached
            # Ages grow linearly with the clock: shift the cached sum.
            return age_sum + count * (now - at), count
        age_sum, count = block_age_sum(block, now)
        self._age_cache[block.block_id] = (block.content_epoch, now, age_sum, count)
        return age_sum, count

    def _coldness(self, block: Block, now: float, t_mean: float) -> float:
        cached = self._cold_cache.get(block.block_id)
        if (cached is not None and cached[0] == block.content_epoch
                and now - cached[1] <= self.refresh_ms
                and abs(t_mean - cached[2]) <= 0.25 * max(cached[2], 1e-9)):
            return cached[3]
        value = block_coldness(block, now, t_mean)
        self._cold_cache[block.block_id] = (block.content_epoch, now, t_mean, value)
        return value

    def select(self, candidates: list[Block], now: float) -> Block | None:
        start = time.perf_counter()
        total_age = 0.0
        total_count = 0
        for block in candidates:
            age_sum, count = self._age_sum(block, now)
            total_age += age_sum
            total_count += count
        t_mean = total_age / total_count if total_count else 0.0

        best: Block | None = None
        best_score = 0.0
        for block in candidates:
            score = (block.n_invalid
                     + self._coldness(block, now, t_mean)) / block.total_subpages
            if score > best_score:
                best = block
                best_score = score
        self.scan_seconds += time.perf_counter() - start
        self.scans += 1
        return best if best_score > 0.0 else None
