"""Garbage-collection controller for one region.

Policy-free mechanics shared by every scheme: trigger on the free-block
threshold (Table 2: 5%), ask the victim policy for a block, drain its valid
subpages through the scheme's relocation callback, erase, release, and run
the static wear-levelling check.  The relocation callback decides *where*
data goes (same level, lower level, eviction to the high-density region) —
that is where Baseline/MGA/IPU differ.

Draining is **incremental** (partial GC): each trigger relocates at most
``gc_pages_per_trigger`` pages of the current victim, so a collection
blocks a chip for a few page moves at a time and host traffic interleaves
with the drain, as on real devices.  A started victim is always drained to
completion (over subsequent triggers) before a new victim is selected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import CacheConfig
from ..error import EccModel
from ..nand.block import Block, BlockState
from ..nand.flash import FlashArray
from ..nand.wear import WearTracker
from ..sim.ops import Cause, OpKind, OpRecord
from .allocator import RegionAllocator
from ..units import Ms
from .victim import VictimPolicy

#: Relocation callback: (victim, page, slots, lsns, now, cause) -> ops.
RelocateFn = Callable[[Block, int, list[int], list[int], float, Cause], list[OpRecord]]
#: Optional pre-erase hook: flush any relocation buffering before the victim dies.
FinishFn = Callable[[float, Cause], list[OpRecord]]


@dataclass
class GcStats:
    """Per-region GC accounting (drives Figures 9, 10 and 12)."""

    collections: int = 0
    moved_subpages: int = 0
    stalled_passes: int = 0
    #: Sum over victims of programmed/total subpages (Figure 9 numerator).
    utilization_sum: float = 0.0
    #: Victims collected (Figure 9 denominator).
    utilization_blocks: int = 0
    #: Victims per block-level label (diagnostics).
    victims_by_level: dict[int, int] = field(default_factory=dict)

    @property
    def page_utilization(self) -> float:
        """Mean used-subpage ratio of collected blocks (Figure 9)."""
        if self.utilization_blocks == 0:
            return 0.0
        return self.utilization_sum / self.utilization_blocks


class GarbageCollector:
    """Threshold-triggered incremental GC for one region."""

    def __init__(
        self,
        flash: FlashArray,
        allocator: RegionAllocator,
        policy: VictimPolicy,
        relocate: RelocateFn,
        ecc: EccModel,
        cache: CacheConfig,
        wear: WearTracker | None = None,
        finish: FinishFn | None = None,
    ):
        self.flash = flash
        self.allocator = allocator
        self.policy = policy
        self.relocate = relocate
        self.ecc = ecc
        self.cache = cache
        self.wear = wear
        self.finish = finish
        self.stats = GcStats()
        self._collecting = False
        #: Victim currently being drained, and the next page to examine.
        self._victim: Block | None = None
        self._drain_page = 0
        # Both thresholds depend only on the (fixed) region size and
        # config percentages — precompute once, the trigger check runs on
        # every host op.
        from .allocator import GC_RESERVE_BLOCKS
        total = allocator.total_blocks
        self._threshold = max(GC_RESERVE_BLOCKS + 2,
                              math.ceil(total * cache.gc_threshold))
        self._restore = max(self._threshold + 1,
                            math.ceil(total * cache.gc_restore))

    # -- triggers -----------------------------------------------------------

    def _threshold_blocks(self) -> int:
        # The floor must sit above the allocator's host reserve, or the
        # pool parks exactly at the reserve with the trigger never firing.
        return self._threshold

    def _restore_blocks(self) -> int:
        return self._restore

    def needs_collection(self) -> bool:
        """Whether the free pool dropped below the GC threshold.

        A floor of two blocks keeps small simulated regions from running
        completely dry before the percentage threshold can trip (GC itself
        needs at least one free block to relocate into).
        """
        return self.allocator.free_blocks < self._threshold

    @property
    def draining(self) -> bool:
        """True while a victim is partially drained."""
        return self._victim is not None

    def maybe_collect(self, now: Ms) -> list[OpRecord]:
        """One incremental GC step: continue or start a drain if needed."""
        # Checked on every host request for both regions — the usual
        # answer is "nothing to do", so take it without going through the
        # ``draining``/``needs_collection`` call frames.
        if (self._victim is None
                and self.allocator.free_blocks >= self._threshold):
            return []
        if self._collecting:
            return []
        self._collecting = True
        try:
            ops: list[OpRecord] = []
            started = 0
            budget = self.cache.gc_pages_per_trigger
            while budget > 0:
                if self._victim is None:
                    if (self.allocator.free_blocks >= self._restore
                            or started >= self.cache.gc_max_blocks_per_trigger):
                        break
                    victim = self._select(now)
                    if victim is None:
                        break
                    self._begin(victim)
                    started += 1
                budget -= self._drain_step(now, budget, ops)
            if self.wear is not None and not self.draining and self.wear.should_level():
                ops.extend(self._level_wear(now))
            return ops
        finally:
            self._collecting = False

    # -- mechanics ----------------------------------------------------------------

    def _select(self, now: Ms) -> Block | None:
        """Victim selection through the allocator's incremental index when
        both sides support it; naive candidate scan otherwise."""
        index = getattr(self.allocator, "victim_index", None)
        select_indexed = getattr(self.policy, "select_indexed", None)
        if index is not None and select_indexed is not None:
            return select_indexed(index, now)
        return self.policy.select(self.allocator.victim_candidates(), now)

    def _begin(self, victim: Block) -> None:
        level = victim.level if victim.level is not None else 0
        self.stats.utilization_sum += victim.n_programmed / victim.total_subpages
        self.stats.utilization_blocks += 1
        self.stats.victims_by_level[level] = (
            self.stats.victims_by_level.get(level, 0) + 1)
        victim.mark_victim()
        self._victim = victim
        self._drain_page = 0

    def _drain_step(self, now: Ms, budget: int, ops: list[OpRecord]) -> int:
        """Relocate up to ``budget`` pages of the current victim.

        Returns the number of pages that actually cost a move; empty pages
        are skipped for free.  Finishes (erases, releases) the victim when
        the last page is done.
        """
        victim = self._victim
        assert victim is not None
        # Two-phase drain: gather this trigger's pages, price every read in
        # one batched kernel, then replay the READ/relocate sequence in the
        # original page order.  Byte-identical to the sequential loop: GC
        # reads draw no fault samples, relocations program *other* blocks
        # and only invalidate already-read victim pages, and the span
        # kernel prices page ``k`` at ``read_count + k`` exactly as the
        # one-read-per-page sequence would.
        spans: list[tuple[int, list[int], list[int]]] = []
        moved = 0
        while self._drain_page < victim.next_page and moved < budget:
            page = self._drain_page
            self._drain_page += 1
            slots = victim.valid_slots_of_page(page)
            if not slots:
                continue
            spans.append((page, slots, victim.slot_lsns(page, slots)))
            moved += 1
        if spans:
            if len(spans) == 1:
                page, slots, _ = spans[0]
                values = self.flash.read_list(victim.block_id, page, slots, now)
                span_ecc = [self.ecc.decode_ms_list(values)]
            else:
                rbers, offsets = self.flash.read_span(
                    victim.block_id, [(p, s) for p, s, _ in spans], now)
                # Per-span max then the vectorised decode: both are exact
                # (reduceat max picks an element; decode_ms_many is
                # elementwise float64), so each latency equals the scalar
                # decode_ms_for_subpages of that span's reads.
                maxes = np.maximum.reduceat(rbers, offsets)
                span_ecc = self.ecc.decode_ms_many(maxes).tolist()
            for (page, slots, lsns), ecc_ms in zip(spans, span_ecc):
                ops.append(OpRecord(
                    OpKind.READ, victim.block_id, page, len(slots),
                    victim.is_slc, Cause.GC, 0, ecc_ms,
                ))
                ops.extend(self.relocate(victim, page, slots, lsns, now, Cause.GC))
                self.stats.moved_subpages += len(slots)

        if self._drain_page >= victim.next_page:
            if self.finish is not None:
                ops.extend(self.finish(now, Cause.GC))
            self.flash.erase(victim.block_id)
            ops.append(OpRecord(
                kind=OpKind.ERASE,
                block_id=victim.block_id,
                page=0,
                n_slots=0,
                is_slc=victim.is_slc,
                cause=Cause.GC,
            ))
            # A fault plan may retire the block on erase (grown bad block);
            # RETIRED blocks never rejoin the free pool.
            if victim.state is BlockState.FREE:
                self.allocator.release(victim.block_id)
            if self.wear is not None:
                self.wear.note_erase()
            self.stats.collections += 1
            self._victim = None
            self._drain_page = 0
        return max(moved, 1)

    def collect(self, victim: Block, now: Ms) -> list[OpRecord]:
        """Drain and erase one victim block in full (tests, wear paths)."""
        ops: list[OpRecord] = []
        self._begin(victim)
        while self._victim is not None:
            self._drain_step(now, victim.pages + 1, ops)
        return ops

    def collect_emergency(self, now: Ms) -> list[OpRecord]:
        """Force a full collection because an allocation is about to fail.

        Finishes any partially-drained victim, then collects one more full
        block if a victim exists.  Returns the (possibly empty) op list;
        the caller retries its allocation afterwards.
        """
        if self._collecting:
            return []
        self._collecting = True
        try:
            ops: list[OpRecord] = []
            if self._victim is not None:
                victim = self._victim
                while self._victim is not None:
                    self._drain_step(now, victim.pages + 1, ops)
                return ops
            victim = self._select(now)
            if victim is None:
                return ops
            self._begin(victim)
            while self._victim is not None:
                self._drain_step(now, victim.pages + 1, ops)
            return ops
        finally:
            self._collecting = False

    def _level_wear(self, now: Ms) -> list[OpRecord]:
        """Static wear levelling: recycle the least-worn resident block.

        Relocating the cold data (through the scheme's normal movement
        rules) returns the healthy block to the free pool, where the
        wear-aware allocator immediately favours it for fresh writes.
        """
        assert self.wear is not None
        source = self.wear.coldest_block()
        if source is None or source.state is not BlockState.FULL:
            return []
        ops: list[OpRecord] = []
        source.mark_victim()
        for page in range(source.next_page):
            slots = source.valid_slots_of_page(page)
            if not slots:
                continue
            lsns = source.slot_lsns(page, slots)
            values = self.flash.read_list(source.block_id, page, slots, now)
            ops.append(OpRecord(
                kind=OpKind.READ, block_id=source.block_id, page=page,
                n_slots=len(slots), is_slc=source.is_slc,
                cause=Cause.WEAR,
                ecc_ms=self.ecc.decode_ms_list(values),
            ))
            ops.extend(self.relocate(source, page, slots, lsns, now, Cause.WEAR))
        if self.finish is not None:
            ops.extend(self.finish(now, Cause.WEAR))
        self.flash.erase(source.block_id)
        ops.append(OpRecord(
            kind=OpKind.ERASE, block_id=source.block_id, page=0, n_slots=0,
            is_slc=source.is_slc, cause=Cause.WEAR,
        ))
        # Same retirement rule as _drain_step: a block the fault plan
        # retired on erase stays out of the free pool for good.
        if source.state is BlockState.FREE:
            self.allocator.release(source.block_id)
        self.wear.note_erase()
        self.wear.leveling_moves += 1
        return ops
