"""*Delta* — opportunistic in-place delta compression (Zhang et al.,
FAST'16), the paper's closest intellectual predecessor (Section 2.1).

An update is compressed as a delta against the original and appended into
the *same page's* free space with partial programming; the original stays
valid (reads need original + deltas), so — unlike IPU — every append
disturbs **live** in-page data.  This is precisely the error behaviour the
ICPP paper measures in Figure 2 and designs IPU to avoid, which makes the
scheme a valuable fourth comparator: it shares IPU's page-per-request
layout and in-page appends but not its invalidate-first rule.

Model notes (we have no data contents to compress):

* a delta costs ``ceil(update_bytes * delta_ratio)`` bytes, packed into
  the page's free slots byte-wise; a new slot is partial-programmed with
  the :data:`DELTA_LSN` sentinel when the packed area grows into it (the
  sentinel slot is immediately invalidated — delta bytes are metadata of
  the original mapping, not independently-mapped data, and they die when
  the original is consolidated or superseded);
* each append is one partial-program pass, so the manufacturer limit
  bounds the chain depth exactly as it bounds IPU's in-page updates;
* reads of delta'd data fetch the original slots plus the delta slots
  (same page, longer transfer, worse ECC because of the absorbed
  disturb); writes that do not fit fall back to a fresh page and the
  stale page (original + deltas) becomes garbage.
"""

from __future__ import annotations

import math

from ..config import SSDConfig
from ..nand.block import Block
from ..nand.flash import FlashArray
from ..nand.geometry import PPA
from ..sim.ops import Cause, OpKind, OpRecord
from .base import BaseFTL
from .levels import BlockLevel
from ..units import Lsn, Ms
from .mapping import SubpageMap

#: Sentinel stored in slots holding packed delta bytes.
DELTA_LSN: int = -2


class DeltaFTL(BaseFTL):
    """In-place delta compression in SLC-mode pages."""

    scheme_name = "delta"
    uses_partial_programming = True

    def __init__(self, config: SSDConfig, flash: FlashArray | None = None,
                 delta_ratio: float = 0.35):
        if not 0.0 < delta_ratio <= 1.0:
            raise ValueError(f"delta_ratio must lie in (0, 1], got {delta_ratio}")
        super().__init__(config, flash)
        self.subpage_map = SubpageMap()
        self.delta_ratio = delta_ratio
        #: (block_id, page) -> (delta_bytes_used, delta_slots, chain_len)
        self._delta_state: dict[tuple[int, int], tuple[int, int, int]] = {}

    # -- mapping -----------------------------------------------------------

    def lookup(self, lsn: Lsn) -> PPA | None:
        return self.subpage_map.lookup(lsn)

    def iter_bindings(self):
        yield from self.subpage_map.items()

    def chain_length(self, lsn: Lsn) -> int:
        """Deltas stacked on ``lsn``'s page (0 = original only)."""
        ppa = self.subpage_map.lookup(lsn)
        if ppa is None:
            return 0
        return self._delta_state.get((ppa.block, ppa.page), (0, 0, 0))[2]

    # -- write path -------------------------------------------------------------

    def write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        ops: list[OpRecord] = []
        for chunk in self.chunks_by_lpn(lsns):
            mappings = [self.subpage_map.lookup(lsn) for lsn in chunk]
            appended = self._try_delta_append(chunk, mappings, now, ops)
            if appended:
                continue
            ops.extend(self._fresh_write(chunk, mappings, now))
        return ops

    def _try_delta_append(self, chunk, mappings, now, ops) -> bool:
        """Append a compressed delta into the page holding the originals."""
        if any(m is None for m in mappings):
            return False
        first = mappings[0]
        if any((m.block, m.page) != (first.block, first.page) for m in mappings[1:]):
            return False
        block = self.flash.block(first.block)
        if not block.mode.is_slc:
            return False
        from ..nand.block import BlockState
        if block.state not in (BlockState.OPEN, BlockState.FULL):
            return False
        page = first.page
        if block.pass_counts[page] >= self.config.reliability.max_page_programs:
            return False

        subpage = self.geometry.subpage_size
        delta_bytes = math.ceil(len(chunk) * subpage * self.delta_ratio)
        used, delta_slots, chain = self._delta_state.get(
            (first.block, page), (0, 0, 0))
        free_slots = block.free_slots_of_page(page)
        capacity = delta_slots * subpage - used + len(free_slots) * subpage
        if delta_bytes > capacity:
            return False

        # Grow the packed delta area into free slots as needed.
        need_new_slots = max(
            0, math.ceil((used + delta_bytes) / subpage) - delta_slots)
        new_slots = free_slots[:need_new_slots]
        if new_slots:
            self.flash.program(first.block, page, new_slots,
                               [DELTA_LSN] * len(new_slots), now)
            for slot in new_slots:
                # Delta bytes are metadata of the original mapping, not
                # independently-mapped data.
                self.flash.invalidate(first.block, page, slot)
        else:
            # The pass reprograms bytes inside the packed area (the page
            # and its neighbours absorb disturb like any partial pass).
            self.flash.reprogram(first.block, page)

        self._delta_state[(first.block, page)] = (
            used + delta_bytes, delta_slots + len(new_slots), chain + 1)
        ops.append(OpRecord(
            kind=OpKind.PROGRAM, block_id=first.block, page=page,
            n_slots=max(1, len(new_slots)), is_slc=True, cause=Cause.HOST,
            transfer_slots=max(1, math.ceil(delta_bytes / subpage)),
        ))
        if block.mode.is_slc:
            self.stats.host_programs_slc += 1
            self.stats.host_subpages_slc += max(1, len(new_slots))
        self.stats.intra_page_updates += 1  # in-page service, delta-style
        self.stats.update_writes += 1
        level = block.level if block.level is not None else 0
        self.stats.note_level_write(level)
        return True

    def _fresh_write(self, chunk, mappings, now) -> list[OpRecord]:
        """Out-of-place write (new data, or a delta that did not fit)."""
        ops: list[OpRecord] = []
        if any(m is not None for m in mappings):
            self.stats.update_writes += 1
        else:
            self.stats.new_data_writes += 1
        for lsn, m in zip(chunk, mappings):
            if m is not None:
                self.flash.invalidate(m.block, m.page, m.slot)
                self.subpage_map.unbind(lsn)
                self._delta_state.pop((m.block, m.page), None)

        res = self.alloc_slc_page(BlockLevel.WORK, now, ops)
        if res is None:
            res = self.alloc_mlc_page(now, ops)
            self.stats.slc_overflow_chunks += 1
        block, page = res
        slots = list(range(len(chunk)))
        ops.append(self.program_subpages(block, page, slots, chunk, now,
                                         Cause.HOST))
        for lsn, slot in zip(chunk, slots):
            self.subpage_map.bind(lsn, PPA(block.block_id, page, slot))
        level = block.level if block.level is not None else 0
        self.stats.note_level_write(level)
        return ops

    # -- read path (originals + deltas) ----------------------------------------

    def handle_read(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        ops = super().handle_read(lsns, now)
        # Charge the extra transfer of delta slots sharing the read pages.
        extra: dict[tuple[int, int], int] = {}
        for lsn in lsns:
            ppa = self.subpage_map.lookup(lsn)
            if ppa is None:
                continue
            key = (ppa.block, ppa.page)
            state = self._delta_state.get(key)
            if state and state[1] > 0:
                extra[key] = state[1]
        patched: list[OpRecord] = []
        for op in ops:
            key = (op.block_id, op.page)
            if (op.kind is OpKind.READ and op.cause is Cause.HOST
                    and key in extra):
                op = op._replace(
                    transfer_slots=op.channel_slots + extra.pop(key))
            patched.append(op)
        return patched

    # -- GC movement: consolidation -----------------------------------------------

    def _relocate_page(self, victim: Block, page: int, slots: list[int],
                       lsns: list[Lsn], now: Ms, cause: Cause,
                       to_mlc: bool) -> list[OpRecord]:
        """Move consolidated data (deltas applied) to a fresh page."""
        ops: list[OpRecord] = []
        real = [(s, l) for s, l in zip(slots, lsns) if l != DELTA_LSN]
        for s in slots:
            self.flash.invalidate(victim.block_id, page, s)
        self._delta_state.pop((victim.block_id, page), None)
        if not real:
            return ops
        if to_mlc:
            block, npage = self.alloc_mlc_page(now, ops, for_gc=True)
        else:
            res = self.slc_alloc.alloc_page(int(BlockLevel.WORK), now,
                                            for_gc=True)
            if res is None:
                self.stats.evicted_subpages_to_mlc += len(real)
                block, npage = self.alloc_mlc_page(now, ops, for_gc=True)
            else:
                block, npage = res
        new_slots = list(range(len(real)))
        ops.append(self.program_subpages(
            block, npage, new_slots, [l for _, l in real], now, cause))
        for (old_slot, lsn), slot in zip(real, new_slots):
            self.subpage_map.bind(lsn, PPA(block.block_id, npage, slot))
        return ops

    def _relocate_slc_page(self, victim, page, slots, lsns, now, cause):
        self.stats.evicted_subpages_to_mlc += sum(
            1 for l in lsns if l != DELTA_LSN)
        return self._relocate_page(victim, page, slots, lsns, now, cause,
                                   to_mlc=True)

    def _relocate_mlc_page(self, victim, page, slots, lsns, now, cause):
        return self._relocate_page(victim, page, slots, lsns, now, cause,
                                   to_mlc=True)
