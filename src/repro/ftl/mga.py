"""*MGA* — Mapping Granularity Adaptive FTL (Feng et al., DATE'17).

The most-related comparison scheme: subpage-granularity mapping plus
partial programming used for *space packing*.  Small writes — no matter
which request they belong to — are appended to the current pack page of
the SLC cache; every append is another program pass over an
already-programmed page, so the resident valid subpages and the
neighbouring pages absorb program disturb (the effect IPU eliminates).

Packing drives page utilisation to ~100% (Figure 9) at the cost of the
largest mapping table (two-level, Figure 11) and the highest read error
rate (Figure 8).
"""

from __future__ import annotations

from ..config import SSDConfig
from ..nand.block import Block, BlockState
from ..nand.flash import FlashArray
from ..nand.geometry import PPA
from ..sim.ops import Cause, OpRecord
from .base import BaseFTL
from .gc import GarbageCollector
from .levels import BlockLevel
from ..units import Lsn, Ms
from .mapping import SubpageMap
from .victim import GreedyVictimPolicy, VictimPolicy


class MGAFTL(BaseFTL):
    """Subpage-packing FTL with partial programming."""

    scheme_name = "mga"
    uses_partial_programming = True

    def __init__(self, config: SSDConfig, flash: FlashArray | None = None):
        super().__init__(config, flash)
        self.subpage_map = SubpageMap()
        #: Current pack target: (block_id, page) accepting more subpages.
        self._pack: tuple[int, int] | None = None
        #: Subpages awaiting eviction packing during GC (list keeps
        #: order, set gives O(1) membership for the write-path check).
        self._evict_buffer: list[int] = []
        self._evict_pending: set[int] = set()
        # Re-wire the collectors with the pre-erase flush hook.
        self.slc_gc = GarbageCollector(
            self.flash, self.slc_alloc, self._make_slc_policy(),
            self._relocate_slc_page, self.ecc, config.cache,
            wear=self.slc_wear, finish=self._flush_evictions,
        )
        self.mlc_gc = GarbageCollector(
            self.flash, self.mlc_alloc, self._make_mlc_policy(),
            self._relocate_mlc_page, self.ecc, config.cache,
            wear=self.mlc_wear, finish=self._flush_evictions,
        )

    def _make_mlc_policy(self) -> VictimPolicy:
        # MGA repacks evictions compactly, so freed space really is the
        # subpage count: plain greedy is the right metric.
        return GreedyVictimPolicy()

    # -- mapping ---------------------------------------------------------

    def translation_keys(self, lsns: list[Lsn]) -> list[int]:
        """MGA pages in second-level subpage entries on top of the
        first-level page map (the translation cost of its packing)."""
        from .base import SECOND_LEVEL_KEY_BASE
        keys = super().translation_keys(lsns)
        keys.extend(SECOND_LEVEL_KEY_BASE + lsn for lsn in lsns)
        return keys

    def lookup(self, lsn: Lsn) -> PPA | None:
        return self.subpage_map.lookup(lsn)

    def iter_bindings(self):
        yield from self.subpage_map.items()

    def _invalidate_lsn(self, lsn: Lsn) -> None:
        ppa = self.subpage_map.lookup(lsn)
        if ppa is None:
            return
        if lsn in self._evict_pending:
            # The subpage sits in the eviction buffer of a partially
            # drained victim; the incoming write obsoletes it, so it must
            # not be flushed (that would resurrect stale data).
            self._evict_pending.discard(lsn)
            self._evict_buffer.remove(lsn)
            self.subpage_map.unbind(lsn)
            return
        self.flash.invalidate(ppa.block, ppa.page, ppa.slot)
        self.subpage_map.unbind(lsn)

    # -- pack cursor -------------------------------------------------------

    def _pack_capacity(self) -> tuple[Block, int, list[int]] | None:
        """Free slots of the current pack page, if it can take another pass."""
        if self._pack is None:
            return None
        block_id, page = self._pack
        block = self.flash.block(block_id)
        if block.state not in (BlockState.OPEN, BlockState.FULL):
            return None
        if page >= block.next_page:
            return None  # block was erased and reused
        if block.pass_counts[page] >= self.config.reliability.max_page_programs:
            return None
        free = block.free_slots_of_page(page)
        if not free:
            return None
        return block, page, free

    # -- write path -----------------------------------------------------------

    def write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        ops: list[OpRecord] = []
        lookup = self.subpage_map.lookup
        if any(lookup(lsn) is not None for lsn in lsns):
            self.stats.update_writes += 1
        else:
            self.stats.new_data_writes += 1
        for lsn in lsns:
            self._invalidate_lsn(lsn)

        remaining = list(lsns)
        while remaining:
            cap = self._pack_capacity()
            if cap is None:
                res = self.alloc_slc_page(BlockLevel.WORK, now, ops)
                if res is None:
                    # Cache exhausted even after GC: spill to high-density.
                    ops.extend(self._write_mlc_chunk(remaining, now))
                    self.stats.slc_overflow_chunks += 1
                    return ops
                block, page = res
                self._pack = (block.block_id, page)
                free = list(range(self.geometry.subpages_per_page))
            else:
                block, page, free = cap

            take = min(len(free), len(remaining))
            chunk, remaining = remaining[:take], remaining[take:]
            slots = free[:take]
            op = self.program_subpages(block, page, slots, chunk,
                                       now, Cause.HOST)
            ops.append(op)
            if op.block_id != block.block_id or op.page != page:
                # Program failure remapped the pulse (same slot indices);
                # pack state below re-derives from the actual target.
                block = self.flash.block(op.block_id)
                page = op.page
            for lsn, slot in zip(chunk, slots):
                self.subpage_map.bind(lsn, PPA(block.block_id, page, slot))
            level = block.level if block.level is not None else 0
            self.stats.note_level_write(level)
            if not block.is_slc:
                # Remap spilled to the high-density region: packing (a
                # partial-programming feature) cannot continue there.
                self._pack = None
            elif block.page_programmed[page] == block.spp or (
                    block.pass_counts[page]
                    >= self.config.reliability.max_page_programs):
                self._pack = None
            else:
                self._pack = (block.block_id, page)
        return ops

    def _write_mlc_chunk(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        """Spill a host chunk straight to the high-density region."""
        ops: list[OpRecord] = []
        spp = self.geometry.subpages_per_page
        for i in range(0, len(lsns), spp):
            group = lsns[i:i + spp]
            block, page = self.alloc_mlc_page(now, ops)
            slots = list(range(len(group)))
            op = self.program_subpages(block, page, slots, group,
                                       now, Cause.HOST)
            ops.append(op)
            if op.block_id != block.block_id or op.page != page:
                block = self.flash.block(op.block_id)
                page = op.page
            for lsn, slot in zip(group, slots):
                self.subpage_map.bind(lsn, PPA(block.block_id, page, slot))
            self.stats.note_level_write(int(BlockLevel.HIGH_DENSITY))
        return ops

    # -- GC movement -------------------------------------------------------------

    def _relocate_any(self, victim: Block, page: int, slots: list[int],
                      lsns: list[Lsn], now: Ms, cause: Cause) -> list[OpRecord]:
        """Queue valid subpages for packed eviction to the MLC region."""
        self.flash.invalidate_many(victim.block_id, page, slots)
        self._evict_buffer.extend(lsns)
        self._evict_pending.update(lsns)
        return []

    def _relocate_slc_page(self, victim, page, slots, lsns, now, cause):
        self.stats.evicted_subpages_to_mlc += len(slots)
        return self._relocate_any(victim, page, slots, lsns, now, cause)

    def _relocate_mlc_page(self, victim, page, slots, lsns, now, cause):
        return self._relocate_any(victim, page, slots, lsns, now, cause)

    def _flush_evictions(self, now: Ms, cause: Cause) -> list[OpRecord]:
        """Program buffered evictions into fully-packed MLC pages."""
        ops: list[OpRecord] = []
        spp = self.geometry.subpages_per_page
        while self._evict_buffer:
            group = self._evict_buffer[:spp]
            del self._evict_buffer[:spp]
            block, page = self.alloc_mlc_page(now, ops, for_gc=True)
            slots = list(range(len(group)))
            op = self.program_subpages(block, page, slots, group, now, cause)
            ops.append(op)
            if op.block_id != block.block_id or op.page != page:
                block = self.flash.block(op.block_id)
                page = op.page
            for lsn, slot in zip(group, slots):
                self._evict_pending.discard(lsn)
                self.subpage_map.bind(lsn, PPA(block.block_id, page, slot))
        return ops
