"""Shared FTL plumbing.

:class:`BaseFTL` owns the flash array, the per-region allocators and
garbage collectors, the ECC model, and implements everything the three
schemes have in common: request dispatch, the read path (including *pseudo
reads* of never-written data, assumed pre-existing in the high-density
region), allocation helpers with GC fallback, and statistics.

Subclasses implement::

    lookup(lsn)                  logical subpage -> PPA or None
    write(lsns, now)             the scheme's write path
    _relocate_slc_page(...)      where SLC GC moves a page's valid data
    _relocate_mlc_page(...)      where MLC GC moves a page's valid data
    _make_slc_policy()           the SLC victim-selection policy
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import SSDConfig
from ..error import EccModel
from ..errors import OutOfSpaceError
from ..nand.block import Block
from ..nand.flash import FlashArray
from ..nand.geometry import PPA
from ..nand.wear import WearTracker
from ..sim.ops import Cause, OpKind, OpRecord
from ..units import Lsn, Ms
from .allocator import RegionAllocator
from .gc import GarbageCollector
from .levels import BlockLevel
from .translation import CachedMappingTable
from .victim import GreedyPageVictimPolicy, GreedyVictimPolicy, VictimPolicy

if TYPE_CHECKING:
    from ..faults.plan import FaultPlan

#: Key-space offset separating second-level translation entries from the
#: first-level (page map) entries in the cached mapping table.
SECOND_LEVEL_KEY_BASE = 1 << 40


@dataclass
class FtlStats:
    """Scheme-agnostic counters (drive Figures 5, 6, 7 and diagnostics)."""

    host_write_requests: int = 0
    host_read_requests: int = 0
    host_written_subpages: int = 0
    host_read_subpages: int = 0
    host_programs_slc: int = 0
    host_programs_mlc: int = 0
    gc_programs_slc: int = 0
    gc_programs_mlc: int = 0
    host_subpages_slc: int = 0
    host_subpages_mlc: int = 0
    gc_subpages_slc: int = 0
    gc_subpages_mlc: int = 0
    #: Host write chunks landing at each block level (Figure 7).
    level_writes: dict[int, int] = field(default_factory=dict)
    intra_page_updates: int = 0
    upgrade_moves: int = 0
    new_data_writes: int = 0
    update_writes: int = 0
    rmw_read_ops: int = 0
    pseudo_read_ops: int = 0
    #: Host writes that had to land in the high-density region.
    slc_overflow_chunks: int = 0
    #: Subpages the SLC cache ejected into the high-density region
    #: (Figure 6's "completed writes in MLC blocks" attributable to the
    #: cache scheme, excluding MLC-internal GC churn).
    evicted_subpages_to_mlc: int = 0

    def note_level_write(self, level: int) -> None:
        """Count one host write chunk completed at ``level``."""
        self.level_writes[level] = self.level_writes.get(level, 0) + 1


class BaseFTL(abc.ABC):
    """Common machinery for the Baseline, MGA and IPU schemes."""

    scheme_name: str = "base"
    uses_partial_programming: bool = False

    def __init__(self, config: SSDConfig, flash: FlashArray | None = None):
        config.validate()
        self.config = config
        self.flash = flash if flash is not None else FlashArray(config)
        self.geometry = self.flash.geometry
        self.ecc = EccModel(config.timing, config.reliability)
        self.rber = self.flash.rber
        self.stats = FtlStats()

        # The SLC region is small; cap its write striping so the open
        # blocks per (level, stripe) don't consume the whole cache.
        slc_stripes = max(1, min(4, len(self.flash.slc_block_ids) // 8))
        self.slc_alloc = RegionAllocator(
            self.flash, self.flash.slc_block_ids, "slc", max_stripes=slc_stripes)
        self.mlc_alloc = RegionAllocator(self.flash, self.flash.mlc_block_ids, "mlc")
        self.slc_wear = WearTracker(self.flash.region_blocks(True), config.cache)
        self.mlc_wear = WearTracker(self.flash.region_blocks(False), config.cache)
        self.slc_gc = GarbageCollector(
            self.flash, self.slc_alloc, self._make_slc_policy(),
            self._relocate_slc_page, self.ecc, config.cache, wear=self.slc_wear,
        )
        self.mlc_gc = GarbageCollector(
            self.flash, self.mlc_alloc, self._make_mlc_policy(),
            self._relocate_mlc_page, self.ecc, config.cache, wear=self.mlc_wear,
        )

        self._subpage_bits = self.geometry.subpage_size * 8
        self._max_page_programs = config.reliability.max_page_programs
        mlc_base = self.rber.base(config.reliability.initial_pe_cycles, slc=False)
        self._pseudo_ecc_ms = self.ecc.decode_ms(mlc_base)
        self._pseudo_rber = mlc_base
        #: Optional DFTL-style cached mapping table (extension).
        self.cmt = (CachedMappingTable(config.translation)
                    if config.translation.enabled else None)
        #: Optional :class:`repro.faults.FaultPlan` set by
        #: :func:`repro.faults.attach_faults`.  ``None`` (the default)
        #: keeps every path below bit-identical to a device without
        #: fault injection.
        self.faults: "FaultPlan | None" = None

    # -- scheme hooks -----------------------------------------------------

    @abc.abstractmethod
    def lookup(self, lsn: Lsn) -> PPA | None:
        """Current physical location of ``lsn`` (None if never written)."""

    @abc.abstractmethod
    def write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        """Service a host write of the given logical subpages."""

    @abc.abstractmethod
    def _relocate_slc_page(self, victim: Block, page: int, slots: list[int],
                           lsns: list[Lsn], now: Ms, cause: Cause) -> list[OpRecord]:
        """Move one SLC victim page's valid data (GC / wear levelling)."""

    @abc.abstractmethod
    def _relocate_mlc_page(self, victim: Block, page: int, slots: list[int],
                           lsns: list[Lsn], now: Ms, cause: Cause) -> list[OpRecord]:
        """Move one MLC victim page's valid data (GC / wear levelling)."""

    def _make_slc_policy(self) -> VictimPolicy:
        """SLC GC victim policy; Baseline/MGA use greedy."""
        return GreedyVictimPolicy()

    def _make_mlc_policy(self) -> VictimPolicy:
        """High-density GC victim policy.

        Schemes whose GC moves pages one-to-one (no compaction across
        pages) must count whole reclaimable pages, not subpages.
        """
        return GreedyPageVictimPolicy()

    # -- request dispatch -----------------------------------------------------

    def handle_write(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        """Write path, preceded by the (bounded) foreground GC check.

        GC work runs ahead of the write on the same chips, so a request
        that trips the threshold pays the blocking cost — and when bounded
        GC cannot keep up, the write path spills to the high-density
        region instead (the Figure 6 dynamic).
        """
        self.stats.host_write_requests += 1
        self.stats.host_written_subpages += len(lsns)
        ops = self._translate(lsns, write=True) if self.cmt is not None else []
        # Inline duplicate of ``maybe_collect``'s do-nothing fast path:
        # the trigger check runs twice per host request, and the usual
        # answer is "no work" — skip the call frames entirely then.
        gc = self.slc_gc
        if gc._victim is not None or gc.allocator._free_count < gc._threshold:
            ops.extend(gc.maybe_collect(now))
        gc = self.mlc_gc
        if gc._victim is not None or gc.allocator._free_count < gc._threshold:
            ops.extend(gc.maybe_collect(now))
        ops.extend(self.write(lsns, now))
        faults = self.faults
        if faults is not None and faults.pending:
            ops.extend(faults.drain_ops())
        return ops

    def handle_read(self, lsns: list[Lsn], now: Ms) -> list[OpRecord]:
        """Read path: mapped subpages from flash, the rest as pseudo reads.

        GC also advances on read arrivals — a device collects in the
        background regardless of request direction, and read-dominated
        traces would otherwise starve the collector between rare writes.
        """
        self.stats.host_read_requests += 1
        self.stats.host_read_subpages += len(lsns)
        gc_ops = (self._translate(lsns, write=False)
                  if self.cmt is not None else [])
        # Same inline trigger fast path as handle_write.
        gc = self.slc_gc
        if gc._victim is not None or gc.allocator._free_count < gc._threshold:
            gc_ops.extend(gc.maybe_collect(now))
        gc = self.mlc_gc
        if gc._victim is not None or gc.allocator._free_count < gc._threshold:
            gc_ops.extend(gc.maybe_collect(now))
        groups: dict[tuple[int, int], list[int]] = {}
        pseudo: list[int] = []
        for lsn in lsns:
            ppa = self.lookup(lsn)
            if ppa is None:
                pseudo.append(lsn)
            else:
                groups.setdefault((ppa.block, ppa.page), []).append(ppa.slot)

        ops: list[OpRecord] = []
        faults = self.faults
        reclaims: list[tuple[int, int]] = []
        flash = self.flash
        for (block_id, page), slots in groups.items():
            slots.sort()
            # Scalar pricing path: python floats end-to-end.  A group
            # covers at most ``spp`` subpages, and for those sizes
            # ``sum``/``max`` over python floats are bit-identical to the
            # float64 array reductions the ndarray path used.
            values = flash.read_list(block_id, page, slots, now)
            block = flash.blocks[block_id]
            # Positional construction: keyword binding on the record
            # costs ~40% of the constructor on this path.
            ops.append(OpRecord(
                OpKind.READ, block_id, page, len(slots), block.is_slc,
                Cause.HOST, 0, self.ecc.decode_ms_list(values),
                sum(values) * self._subpage_bits,
            ))
            if faults is not None:
                p_fail = self.ecc.uncorrectable_probability_for_subpages(values)
                retries, reclaim = faults.read_outcome(p_fail)
                for _ in range(retries):
                    # Each ladder rung re-senses the page; the host
                    # request waits for it (that is the latency
                    # degradation campaigns measure).
                    retry_values = flash.read_list(block_id, page, slots, now)
                    ops.append(OpRecord(
                        kind=OpKind.READ, block_id=block_id, page=page,
                        n_slots=len(slots), is_slc=block.is_slc,
                        cause=Cause.HOST,
                        ecc_ms=self.ecc.decode_ms_list(retry_values),
                        raw_errors=sum(retry_values) * self._subpage_bits,
                    ))
                if reclaim:
                    reclaims.append((block_id, page))
        # Reclaims run after every group has been read: relocation can
        # trigger GC, which must not erase a block a later group still
        # needs to sense.
        for block_id, page in reclaims:
            ops.extend(self._fault_reclaim_page(
                self.flash.block(block_id), page, now))
        ops.extend(self._pseudo_reads(pseudo))
        ops.extend(gc_ops)
        if faults is not None and faults.pending:
            ops.extend(faults.drain_ops())
        return ops

    def translation_keys(self, lsns: list[Lsn]) -> list[int]:
        """Cached-mapping-table keys a request touches.

        Page-mapped schemes (Baseline, IPU) consult one first-level entry
        per logical page; MGA additionally pages in its second-level
        subpage entries (override).
        """
        spp = self.geometry.subpages_per_page
        return sorted({lsn // spp for lsn in lsns})

    def _translate(self, lsns: list[Lsn], write: bool) -> list[OpRecord]:
        """Charge cached-mapping-table misses as foreground flash ops."""
        if self.cmt is None:
            return []
        ops: list[OpRecord] = []
        spp = self.geometry.subpages_per_page
        n_mlc = len(self.flash.mlc_block_ids)
        for key in self.translation_keys(lsns):
            miss, writeback = self.cmt.access(key, dirty=write)
            if not miss and not writeback:
                continue
            block_id = self.flash.mlc_block_ids[
                self.cmt.page_of(key) % n_mlc]
            if writeback:
                ops.append(OpRecord(
                    kind=OpKind.PROGRAM, block_id=block_id, page=0,
                    n_slots=spp, is_slc=False, cause=Cause.TRANSLATION))
            if miss:
                ops.append(OpRecord(
                    kind=OpKind.READ, block_id=block_id, page=0,
                    n_slots=spp, is_slc=False, cause=Cause.TRANSLATION,
                    ecc_ms=self._pseudo_ecc_ms))
        return ops

    def _pseudo_reads(self, lsns: list[Lsn]) -> list[OpRecord]:
        """Reads of never-written data: priced as base-RBER MLC page reads.

        The data is assumed to pre-exist in the high-density region; a
        deterministic hash spreads the traffic over the MLC chips.
        """
        if not lsns:
            return []
        ops: list[OpRecord] = []
        spp = self.geometry.subpages_per_page
        by_lpn: dict[int, int] = {}
        for lsn in lsns:
            lpn = lsn // spp
            by_lpn[lpn] = by_lpn.get(lpn, 0) + 1
        for lpn, count in by_lpn.items():
            block_id = self.flash.mlc_block_ids[lpn % len(self.flash.mlc_block_ids)]
            ops.append(OpRecord(
                kind=OpKind.READ, block_id=block_id, page=0,
                n_slots=count, is_slc=False, cause=Cause.HOST,
                ecc_ms=self._pseudo_ecc_ms,
                raw_errors=self._pseudo_rber * count * self._subpage_bits,
            ))
            self.stats.pseudo_read_ops += 1
        return ops

    def idle_collect(self, now: Ms) -> list[OpRecord]:
        """Drain pending GC work during host idle time.

        Real devices collect in the background whenever the bus is quiet;
        the simulator calls this when it detects an arrival gap, letting
        the collectors run to their restore watermarks without a host
        request footing the trigger.
        """
        ops: list[OpRecord] = []
        for gc in (self.slc_gc, self.mlc_gc):
            for _ in range(gc.allocator.total_blocks):
                step = gc.maybe_collect(now)
                if not step:
                    break
                ops.extend(step)
        faults = self.faults
        if faults is not None and faults.pending:
            ops.extend(faults.drain_ops())
        return ops

    # -- allocation helpers -----------------------------------------------------

    def alloc_slc_page(self, level: BlockLevel, now: Ms,
                       ops: list[OpRecord] | None = None) -> tuple[Block, int] | None:
        """SLC page at ``level``, or None when the cache has no room.

        Deliberately does *not* collect garbage inline: foreground GC is
        bounded and runs per request, so a dry pool means the cache is
        under pressure and the write belongs in the high-density region.
        The ``ops`` parameter is kept for signature stability.
        """
        return self.slc_alloc.alloc_page(int(level), now)

    def alloc_mlc_page(self, now: Ms, ops: list[OpRecord] | None = None,
                       required: bool = True,
                       for_gc: bool = False) -> tuple[Block, int] | None:
        """MLC page; escalates through emergency GC before giving up.

        Host allocations respect the GC reserve; when even that fails the
        region is force-collected in full (the host pays the blocking
        cost, as on a real device running near-full).
        """
        level = int(BlockLevel.HIGH_DENSITY)
        res = self.mlc_alloc.alloc_page(level, now, for_gc=for_gc)
        if res is None:
            emergency = self.mlc_gc.collect_emergency(now)
            if ops is not None:
                ops.extend(emergency)
            res = self.mlc_alloc.alloc_page(level, now, for_gc=for_gc)
        if res is None and not for_gc:
            # Free blocks exist but sit in the GC reserve: drain one more
            # victim so the host write can proceed.
            emergency = self.mlc_gc.collect_emergency(now)
            if ops is not None:
                ops.extend(emergency)
            res = self.mlc_alloc.alloc_page(level, now, for_gc=for_gc)
            if res is None:
                res = self.mlc_alloc.alloc_page(level, now, for_gc=True)
        if res is None and required:
            raise OutOfSpaceError(
                f"{self.scheme_name}: high-density region exhausted")
        return res

    # -- programming helper ----------------------------------------------------

    def program_subpages(self, block: Block, page: int, slots: list[int],
                         lsns: list[Lsn], now: Ms, cause: Cause) -> OpRecord:
        """Program and account one flash program operation.

        Mirrors ``FlashArray.program`` inline (same bookkeeping, same
        order) — this helper runs once per host/GC program, and the extra
        call frame is measurable on the simulation hot path.

        With a fault plan attached the pulse may fail: the data is then
        remapped to a fresh page (same slot indices) and the returned
        record carries the *actual* destination — callers re-bind their
        mapping from ``op.block_id``/``op.page`` when they differ from
        the requested target.
        """
        faults = self.faults
        if faults is not None and faults.program_fails():
            block, page = self._fault_remap_program(
                block, page, slots, lsns, now, cause)
        flash = self.flash
        partial, disturbed = block.program_disturb(
            page, slots, lsns, now, self._max_page_programs)
        slc = block.is_slc
        if partial:
            flash.partial_programs += 1
            flash.disturbed_valid_subpages += disturbed
        if slc:
            flash.programs_slc += 1
        else:
            flash.programs_mlc += 1
        if cause is Cause.HOST:
            if slc:
                self.stats.host_programs_slc += 1
                self.stats.host_subpages_slc += len(slots)
            else:
                self.stats.host_programs_mlc += 1
                self.stats.host_subpages_mlc += len(slots)
        else:
            if slc:
                self.stats.gc_programs_slc += 1
                self.stats.gc_subpages_slc += len(slots)
            else:
                self.stats.gc_programs_mlc += 1
                self.stats.gc_subpages_mlc += len(slots)
        # Without partial programming the whole page buffer is driven per
        # program pass; partial programming masks untouched bit lines and
        # transfers only the written subpages (Figure 1).
        transfer = (len(slots) if self.uses_partial_programming
                    else self.geometry.subpages_per_page)
        return OpRecord(OpKind.PROGRAM, block.block_id, page,
                        len(slots), slc, cause, transfer)

    # -- fault handling ----------------------------------------------------

    def _fault_remap_program(self, block: Block, page: int, slots: list[int],
                             lsns: list[Lsn], now: Ms,
                             cause: Cause) -> tuple[Block, int]:
        """Service a sampled program failure; returns the fresh target.

        A real program failure leaves the page in an undefined state that
        can never be trusted again, so the wasted pulse physically
        programs its target and the slots are invalidated on the spot —
        the garbage attracts GC, which erases the (now condemned) block
        and retires it.  The pulse is charged to the triggering cause
        through the plan's pending-op list, a fresh page is allocated
        (same slot indices, so the caller's LSN↔slot pairing holds), and
        further failures on the new target retry up to the config's
        ``program_retry_limit``.
        """
        faults = self.faults
        assert faults is not None
        flash = self.flash
        spp = self.geometry.subpages_per_page
        attempts = 0
        while True:
            attempts += 1
            flash.program(block.block_id, page, slots, lsns, now)
            for slot in slots:
                flash.invalidate(block.block_id, page, slot)
            faults.note_program_failure(block.block_id)
            faults.pending.append(OpRecord(
                kind=OpKind.PROGRAM, block_id=block.block_id, page=page,
                n_slots=len(slots), is_slc=block.is_slc, cause=cause,
                transfer_slots=(len(slots) if self.uses_partial_programming
                                else spp),
            ))
            block, page = self._fault_program_realloc(block, now)
            if attempts >= faults.config.program_retry_limit:
                return block, page
            if not faults.program_fails():
                return block, page

    def _fault_program_realloc(self, failed: Block,
                               now: Ms) -> tuple[Block, int]:
        """Fresh landing page after a program failure.

        Prefers the failed block's own region and level; a dry SLC pool
        is emergency-collected first and only then spills to the
        high-density region.  Allocation ignores the host GC reserve
        (``for_gc=True``): the data already exists and must land
        somewhere, exactly like a relocation.
        """
        faults = self.faults
        assert faults is not None
        if failed.is_slc:
            level = failed.level if failed.level is not None else 0
            res = self.slc_alloc.alloc_page(level, now, for_gc=True)
            if res is None:
                faults.pending.extend(self.slc_gc.collect_emergency(now))
                res = self.slc_alloc.alloc_page(level, now, for_gc=True)
            if res is not None:
                return res
        res = self.alloc_mlc_page(now, faults.pending, for_gc=True)
        assert res is not None
        return res

    def _fault_reclaim_page(self, block: Block, page: int, now: Ms,
                            slots: list[int] | None = None) -> list[OpRecord]:
        """Relocate a page's (still-)valid data after a fault.

        Serves read reclaim (a retry ladder barely saved or lost the
        page) and torn-page repair after power loss.  ``slots`` narrows
        the move to specific subpages; either way only currently-valid
        slots are moved, so a repair racing an interleaved GC of the same
        block degrades to a no-op instead of double-relocating.
        """
        valid = block.valid_slots_of_page(page)
        if slots is not None:
            wanted = set(slots)
            valid = [s for s in valid if s in wanted]
        if not valid:
            return []
        lsns = block.slot_lsns(page, valid)
        relocate = (self._relocate_slc_page if block.is_slc
                    else self._relocate_mlc_page)
        ops = list(relocate(block, page, valid, lsns, now, Cause.FAULT))
        # MGA buffers SLC relocations until a GC finish hook would flush
        # them; a fault reclaim must complete immediately.
        gc = self.slc_gc if block.is_slc else self.mlc_gc
        if gc.finish is not None:
            ops.extend(gc.finish(now, Cause.FAULT))
        faults = self.faults
        if faults is not None:
            faults.stats.fault_relocations += 1
        return ops

    # -- shared chunking -----------------------------------------------------------

    def chunks_by_lpn(self, lsns: list[Lsn]) -> list[list[Lsn]]:
        """Split a request's subpages into per-logical-page chunks.

        Chunking is stable across rewrites of the same extent, which is
        what lets IPU find all of a chunk's old data in a single physical
        page.
        """
        if not lsns:
            return []
        spp = self.geometry.subpages_per_page
        if len(lsns) == 1:
            return [list(lsns)]
        first = lsns[0]
        chunks: list[list[int]] = []
        current: list[int] = [first]
        cur_lpn = first // spp
        for lsn in lsns[1:]:
            lpn = lsn // spp
            if lpn != cur_lpn:
                chunks.append(current)
                current = []
                cur_lpn = lpn
            current.append(lsn)
        chunks.append(current)
        return chunks

    # -- invariants (test support) ----------------------------------------------------

    def check_consistency(self) -> None:
        """Assert map <-> flash agreement for every binding, and that the
        incremental bookkeeping (region counters, victim indices) agrees
        with a naive rescan of the device (test hook)."""
        for lsn, ppa in self.iter_bindings():
            block = self.flash.block(ppa.block)
            if not block.valid[ppa.page, ppa.slot]:
                raise AssertionError(
                    f"{self.scheme_name}: LSN {lsn} maps to invalid "
                    f"subpage {ppa}")
            stored = int(block.slot_lsn[ppa.page, ppa.slot])
            if stored != lsn:
                raise AssertionError(
                    f"{self.scheme_name}: LSN {lsn} maps to {ppa} which "
                    f"stores LSN {stored}")
        self.flash.verify_region_counters()
        self.slc_alloc.victim_index.verify()
        self.mlc_alloc.victim_index.verify()

    @abc.abstractmethod
    def iter_bindings(self):
        """Yield ``(lsn, PPA)`` for every live logical subpage."""
