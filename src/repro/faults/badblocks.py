"""Grown-bad-block bookkeeping.

The table records which blocks are condemned (a program pulse failed on
them; they retire at their next erase), which have retired, and enforces
the per-region retirement budget: a region may lose at most
``max_retire_fraction`` of its blocks before further failures stop
retiring (a real drive would transition to read-only — the simulator
keeps the block in service instead of deadlocking its GC, and the
failure counters still record the event).
"""

from __future__ import annotations

from ..nand.flash import FlashArray


class BadBlockTable:
    """Condemned and retired blocks, with per-region retirement caps."""

    def __init__(self, flash: FlashArray, max_retire_fraction: float):
        n_slc = len(flash.slc_block_ids)
        n_mlc = len(flash.mlc_block_ids)
        # A nonzero budget always admits at least one block per region,
        # so small simulated devices still exercise retirement.
        self._cap = {
            True: (max(1, int(n_slc * max_retire_fraction))
                   if max_retire_fraction > 0 else 0),
            False: (max(1, int(n_mlc * max_retire_fraction))
                    if max_retire_fraction > 0 else 0),
        }
        self._retired_in = {True: 0, False: 0}
        self._condemned: set[int] = set()
        #: Retired block ids in retirement order (diagnostics, tests).
        self.retired: list[int] = []

    def condemn(self, block_id: int) -> None:
        """Mark a block for retirement at its next erase."""
        self._condemned.add(block_id)

    def is_condemned(self, block_id: int) -> bool:
        """Whether a program failure already condemned this block."""
        return block_id in self._condemned

    def pardon(self, block_id: int) -> None:
        """Drop a condemnation (retirement budget exhausted)."""
        self._condemned.discard(block_id)

    def can_retire(self, slc: bool) -> bool:
        """Whether the region's retirement budget admits one more block."""
        return self._retired_in[slc] < self._cap[slc]

    def note_retired(self, block_id: int, slc: bool) -> None:
        """Record a retirement and clear any condemnation."""
        self._retired_in[slc] += 1
        self._condemned.discard(block_id)
        self.retired.append(block_id)

    @property
    def retired_count(self) -> int:
        """Total grown bad blocks across both regions."""
        return len(self.retired)

    def retired_in_region(self, slc: bool) -> int:
        """Grown bad blocks of one region."""
        return self._retired_in[slc]
