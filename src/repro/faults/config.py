"""Fault-injection configuration.

A :class:`FaultConfig` fixes *how often* each fault mechanism fires and
how the device responds (retry ladder depth, torn-page window, bad-block
budget).  It is deliberately dependency-free — the experiment cache keys
on its serialized form, and the CLI builds one from a single sweep rate —
so it imports nothing from the simulator layers.

All rates default to zero: a default-constructed config is *disabled* and
a simulation carrying it is bit-identical to one without the subsystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from ..errors import ConfigError
from ..units import Ms


@dataclass(frozen=True)
class FaultConfig:
    """Rates and response parameters for the three fault mechanisms."""

    #: Multiplier applied to the ECC model's uncorrectable-read
    #: probability before sampling a transient read failure.  The raw BCH
    #: failure probability of a healthy device is astronomically small;
    #: the scale maps it into a regime where campaigns see events.
    read_fault_scale: float = 0.0
    #: Per-program probability that the pulse fails and the block is
    #: condemned (retired at its next erase).
    program_fault_rate: float = 0.0
    #: Per-erase probability that the erase fails and the block retires.
    erase_fault_rate: float = 0.0
    #: Power-loss events per simulated millisecond (exponential gaps).
    power_loss_per_ms: float = 0.0

    #: Read-retry ladder depth before the read is declared uncorrectable.
    read_retries_max: int = 5
    #: Each retry multiplies the failure probability by this factor
    #: (voltage-shifted re-reads recover progressively more margin).
    retry_success_scale: float = 0.5
    #: Reads that needed at least this many retries relocate the page.
    relocate_after_retries: int = 2
    #: Subpages programmed within this window before a power loss are torn.
    torn_window_ms: Ms = 1.0
    #: Cap on the fraction of a region's blocks that may retire; past it
    #: failures are still counted but blocks return to service (a real
    #: drive would go read-only — the simulator keeps serving instead of
    #: deadlocking its GC).
    max_retire_fraction: float = 0.1
    #: Maximum consecutive remap attempts for one failing program.
    program_retry_limit: int = 4

    @property
    def enabled(self) -> bool:
        """True when any mechanism can fire.

        A disabled config consumes no random draws, so attaching it (or
        none at all) yields bit-identical simulations.
        """
        return (self.read_fault_scale > 0.0
                or self.program_fault_rate > 0.0
                or self.erase_fault_rate > 0.0
                or self.power_loss_per_ms > 0.0)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on invalid values."""
        if self.read_fault_scale < 0:
            raise ConfigError(f"negative read_fault_scale {self.read_fault_scale}")
        if not 0.0 <= self.program_fault_rate <= 1.0:
            raise ConfigError(
                f"program_fault_rate {self.program_fault_rate} not in [0, 1]")
        if not 0.0 <= self.erase_fault_rate <= 1.0:
            raise ConfigError(
                f"erase_fault_rate {self.erase_fault_rate} not in [0, 1]")
        if self.power_loss_per_ms < 0:
            raise ConfigError(f"negative power_loss_per_ms {self.power_loss_per_ms}")
        if self.read_retries_max < 1:
            raise ConfigError(f"read_retries_max {self.read_retries_max} < 1")
        if not 0.0 < self.retry_success_scale <= 1.0:
            raise ConfigError(
                f"retry_success_scale {self.retry_success_scale} not in (0, 1]")
        if self.relocate_after_retries < 1:
            raise ConfigError(
                f"relocate_after_retries {self.relocate_after_retries} < 1")
        if self.torn_window_ms < 0:
            raise ConfigError(f"negative torn_window_ms {self.torn_window_ms}")
        if not 0.0 <= self.max_retire_fraction <= 1.0:
            raise ConfigError(
                f"max_retire_fraction {self.max_retire_fraction} not in [0, 1]")
        if self.program_retry_limit < 1:
            raise ConfigError(
                f"program_retry_limit {self.program_retry_limit} < 1")

    @classmethod
    def from_rate(cls, rate: float) -> "FaultConfig":
        """One-knob campaign config: map a sweep rate to all mechanisms.

        The per-mechanism factors are chosen so a smoke-scale campaign at
        ``rate=1.0`` exercises every mechanism (retries, retirements and
        power losses all appear) while ``rate=0.0`` is exactly disabled.
        """
        if rate < 0:
            raise ConfigError(f"negative fault rate {rate}")
        if rate == 0:
            return cls()
        return cls(
            read_fault_scale=200.0 * rate,
            program_fault_rate=min(1.0, 0.02 * rate),
            erase_fault_rate=min(1.0, 0.2 * rate),
            power_loss_per_ms=0.001 * rate,
        )

    # -- serialisation (cache keys, CLI output) -----------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown FaultConfig fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — stable across processes, so it
        is safe inside cache keys."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
