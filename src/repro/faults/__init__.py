"""Deterministic fault injection and reliability campaigns.

The paper's argument is a reliability trade-off — partial programming
raises RBER and IPU's job is to keep that survivable — so this package
makes the failure modes first-class: transient read failures with a
retry ladder and read reclaim, program/erase failures growing a
bad-block table, and power losses tearing in-flight partial programs
with a mount-time recovery scan.

Everything is seeded through dedicated :func:`repro.rng.faults_rng`
streams; with every rate at zero (or no plan attached) simulations are
bit-identical to a device without the subsystem.  See ``docs/FAULTS.md``.

The campaign runner (:mod:`repro.faults.campaign`) is imported lazily by
the CLI — it pulls in the experiments layer, which plain plan consumers
do not need.
"""

from .badblocks import BadBlockTable
from .config import FaultConfig
from .plan import FaultPlan, FaultStats, attach_faults

__all__ = [
    "BadBlockTable",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "attach_faults",
]
