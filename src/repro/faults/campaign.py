"""Reliability campaigns: sweep fault rates across the three schemes.

A campaign replays the evaluation matrix once per fault rate, with every
mechanism's intensity derived from the single sweep rate through
:meth:`FaultConfig.from_rate`, and collects degradation curves — retries,
relocations, retired blocks, recovery time, and the latency they cost —
per scheme.  Rate ``0`` runs with no plan attached at all, so its results
are bit-identical to (and share cache entries with) ordinary runs: the
leftmost point of every curve *is* the paper's fault-free evaluation.

Campaign output is built exclusively from deterministic result fields
and serialised with sorted keys, so the same seed always produces
byte-identical JSON, sequentially or under ``--jobs`` fan-out.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Sequence

from ..experiments.runner import (
    SCHEME_ORDER,
    RunContext,
    register_context_pool,
)
from ..traces.profiles import TRACE_NAMES
from .config import FaultConfig

if TYPE_CHECKING:
    from ..experiments.cache import ResultCache

#: Campaign payload layout version (independent of the result cache's).
CAMPAIGN_SCHEMA = 1

#: Default sweep: rate 0 proves bit-identity, the rest bend the curves.
DEFAULT_RATES = (0.0, 0.5, 1.0)

#: Result fields a degradation curve accumulates per (scheme, rate).
CURVE_FIELDS = (
    "read_faults", "read_retries", "uncorrectable_reads",
    "fault_relocations", "program_failures", "erase_failures",
    "retired_blocks", "power_loss_events", "torn_subpages",
    "recovered_subpages", "recovery_ms",
)

#: Campaign contexts, registered so the CLI execution-summary line counts
#: their cells too.  Keyed by creation order: each :func:`run_campaign`
#: call gets fresh contexts, so back-to-back campaigns are independent
#: end-to-end determinism checks rather than memo replays.
_campaign_contexts: dict[int, RunContext] = register_context_pool({})


def run_campaign(rates: Sequence[float] = DEFAULT_RATES,
                 scale: str = "smoke", seed: int = 1,
                 traces: Sequence[str] | None = None,
                 schemes: Sequence[str] = SCHEME_ORDER,
                 jobs: int | None = None,
                 cache: "ResultCache | None" = None) -> dict:
    """Run the sweep; returns the JSON-ready campaign payload.

    One fresh :class:`~repro.experiments.runner.RunContext` per rate
    (fault configs are part of a context's identity, like seed or
    scale), each replaying the full ``traces`` x ``schemes`` matrix.
    """
    names = tuple(traces) if traces is not None else TRACE_NAMES
    rates = tuple(float(r) for r in rates)
    curves: dict[str, list[dict]] = {scheme: [] for scheme in schemes}
    for rate in rates:
        faults = FaultConfig.from_rate(rate)
        ctx = RunContext(scale=scale, seed=seed, jobs=jobs, cache=cache,
                         faults=faults if faults.enabled else None)
        _campaign_contexts[len(_campaign_contexts)] = ctx
        results = ctx.run_matrix(names, schemes)
        for scheme in schemes:
            point: dict = {"rate": rate}
            total_requests = 0
            latency_sum = 0.0
            for f_name in CURVE_FIELDS:
                point[f_name] = 0 if f_name != "recovery_ms" else 0.0
            by_trace: dict[str, dict] = {}
            for trace in names:
                result = results[(trace, scheme)]
                total_requests += result.n_requests
                latency_sum += result.avg_latency_ms * result.n_requests
                detail = {"avg_latency_ms": result.avg_latency_ms}
                for f_name in CURVE_FIELDS:
                    value = getattr(result, f_name)
                    point[f_name] += value
                    detail[f_name] = value
                by_trace[trace] = detail
            point["avg_latency_ms"] = (
                latency_sum / total_requests if total_requests else 0.0)
            point["n_requests"] = total_requests
            point["by_trace"] = by_trace
            curves[scheme].append(point)
    return {
        "schema": CAMPAIGN_SCHEMA,
        "scale": scale,
        "seed": seed,
        "rates": list(rates),
        "traces": list(names),
        "schemes": list(schemes),
        "curves": curves,
    }


def campaign_json(payload: dict) -> str:
    """Canonical serialisation: sorted keys, stable indentation —
    byte-identical for identical payloads."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
