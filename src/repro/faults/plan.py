"""The seeded fault plan: every stochastic fault decision lives here.

A :class:`FaultPlan` owns one dedicated :func:`repro.rng.faults_rng`
stream per mechanism (``read``, ``program``, ``erase``, ``power``), so

* fault sampling never perturbs the trace or error-model streams derived
  from the same root seed, and
* the mechanisms stay mutually independent: raising the program-failure
  rate does not shift which reads fail.

Each injector consumes **exactly one uniform draw per opportunity** (the
read ladder draws once per retry rung).  Two consequences the property
tests rely on: with a mechanism's rate at zero its stream is never
touched, so a disabled plan is bit-identical to no plan at all; and for
the single-draw mechanisms the same seed compares the same uniform
sequence against different thresholds, so fault counts are monotone in
the rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..nand.block import Block
from ..rng import faults_rng
from ..sim.ops import OpRecord
from .badblocks import BadBlockTable
from .config import FaultConfig
from ..units import Ms

if TYPE_CHECKING:
    from ..ftl.base import BaseFTL
    from ..nand.flash import FlashArray
    from ..sim.timing import TimingModel


@dataclass
class FaultStats:
    """Degradation counters (become ``SimulationResult`` fields)."""

    read_faults: int = 0           #: initial reads that failed to decode
    read_retries: int = 0          #: retry-ladder rungs climbed
    uncorrectable_reads: int = 0   #: reads the full ladder could not save
    fault_relocations: int = 0     #: pages relocated by fault handling
    program_failures: int = 0      #: failed program pulses
    erase_failures: int = 0        #: failed erase pulses
    retired_blocks: int = 0        #: blocks grown bad (capacity loss)
    power_loss_events: int = 0     #: power losses injected
    torn_subpages: int = 0         #: subpages torn by power loss
    recovered_subpages: int = 0    #: torn subpages the mount scan repaired
    recovery_ms: Ms = 0.0          #: total mount-time recovery cost


class FaultPlan:
    """Deterministic fault sampling plus the device's response state."""

    def __init__(self, config: FaultConfig, seed: int | None = None):
        config.validate()
        self.config = config
        self.seed = seed
        self.stats = FaultStats()
        #: Extra ops produced inside fault handling (wasted program
        #: pulses, emergency-GC traffic during remapping); the FTL drains
        #: them into its request's op list.
        self.pending: list[OpRecord] = []
        #: Bound to the device by :meth:`bind` / :func:`attach_faults`.
        self.badblocks: BadBlockTable | None = None
        self._read_rng = faults_rng(seed, "read")
        self._program_rng = faults_rng(seed, "program")
        self._erase_rng = faults_rng(seed, "erase")
        self._power_rng = faults_rng(seed, "power")

    def bind(self, flash: FlashArray) -> None:
        """Attach the plan to a device (sizes the bad-block budget)."""
        self.badblocks = BadBlockTable(flash, self.config.max_retire_fraction)

    # -- read failures ------------------------------------------------------

    def read_outcome(self, p_uncorrectable: float) -> tuple[int, bool]:
        """Sample one host read: ``(retries, reclaim)``.

        ``retries`` is how many ladder rungs the read needed (0 = clean
        first read); ``reclaim`` asks the FTL to relocate the page —
        either the ladder barely saved it (``relocate_after_retries``) or
        exhausted itself (the read is uncorrectable, data re-created from
        the still-valid flash copy the simulator models losslessly).
        """
        cfg = self.config
        scale = cfg.read_fault_scale
        if scale <= 0.0:
            return 0, False
        p = p_uncorrectable * scale
        if p > 1.0:
            p = 1.0
        if p <= 0.0 or self._read_rng.random() >= p:
            return 0, False
        stats = self.stats
        stats.read_faults += 1
        retries = 0
        while retries < cfg.read_retries_max:
            retries += 1
            stats.read_retries += 1
            p *= cfg.retry_success_scale
            if self._read_rng.random() >= p:
                return retries, retries >= cfg.relocate_after_retries
        stats.uncorrectable_reads += 1
        return retries, True

    # -- program failures ---------------------------------------------------

    def program_fails(self) -> bool:
        """Sample one program pulse (one uniform draw when enabled)."""
        rate = self.config.program_fault_rate
        if rate <= 0.0:
            return False
        return bool(self._program_rng.random() < rate)

    def note_program_failure(self, block_id: int) -> None:
        """Count a failed pulse and condemn its block."""
        self.stats.program_failures += 1
        badblocks = self.badblocks
        assert badblocks is not None
        badblocks.condemn(block_id)

    # -- erase failures / retirement ---------------------------------------

    def should_retire_after_erase(self, block: Block) -> bool:
        """Decide, post-erase, whether the block retires.

        Retirement triggers: a sampled erase failure, or a program
        failure that condemned the block earlier.  Either way the
        per-region budget gates the actual retirement — over budget the
        block is pardoned back into service (counters still record the
        failure).
        """
        badblocks = self.badblocks
        assert badblocks is not None
        block_id = block.block_id
        failed = False
        rate = self.config.erase_fault_rate
        if rate > 0.0:
            failed = bool(self._erase_rng.random() < rate)
            if failed:
                self.stats.erase_failures += 1
        if not failed and not badblocks.is_condemned(block_id):
            return False
        if not badblocks.can_retire(block.is_slc):
            badblocks.pardon(block_id)
            return False
        badblocks.note_retired(block_id, block.is_slc)
        self.stats.retired_blocks += 1
        return True

    # -- power loss ---------------------------------------------------------

    def next_power_loss(self, now: Ms) -> Ms:
        """Simulated time of the next power-loss event (inf if disabled)."""
        rate = self.config.power_loss_per_ms
        if rate <= 0.0:
            return math.inf
        return now + float(self._power_rng.exponential(1.0 / rate))

    def power_loss(self, ftl: BaseFTL, now: Ms, timing: TimingModel) -> Ms:
        """Inject one power loss; returns the mount-recovery time (ms)."""
        from .recovery import run_power_loss
        return run_power_loss(ftl, self, now, timing)

    # -- plumbing -----------------------------------------------------------

    def drain_ops(self) -> list[OpRecord]:
        """Take (and clear) the ops fault handling accumulated."""
        if not self.pending:
            return []
        ops = self.pending
        self.pending = []
        return ops


def attach_faults(ftl: BaseFTL, config: FaultConfig | None,
                  seed: int | None = None) -> FaultPlan | None:
    """Wire a fault plan into an FTL and its flash array.

    Returns the plan, or ``None`` when ``config`` is missing or disabled
    — in that case nothing is attached and the simulation stays
    bit-identical to one without the subsystem.
    """
    if config is None:
        return None
    config.validate()
    if not config.enabled:
        return None
    plan = FaultPlan(config, seed)
    plan.bind(ftl.flash)
    ftl.faults = plan
    ftl.flash.faults = plan
    return plan
