"""Power-loss injection and mount-time recovery.

A power loss interrupts whatever the device was doing at time ``t``.
Subpages programmed within the config's ``torn_window_ms`` before ``t``
are *torn*: their program pulse may not have completed, so their charge
state cannot be trusted.  Only the SLC cache is exposed — partial
programming re-opens pages there, which is exactly the vulnerability the
paper's reliability discussion is about; the high-density region programs
full pages once and a torn full-page program loses data that still exists
in the cache (the simulator's mapping update is atomic, so the previous
copy remains the bound one).

The mount scan then

1. reads every programmed SLC page to find torn subpages (priced as one
   full-page SLC read per programmed page),
2. repairs each torn subpage by relocating its (still modelled-valid)
   data through the owning scheme's normal relocation path.

Recovery work is priced with the :class:`~repro.sim.timing.TimingModel`
into ``FaultStats.recovery_ms`` but is **not** reserved on the chip and
channel resources: the device is off while it runs, so it delays the
mount, not in-flight host requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..nand.block import BlockState
from ..sim.ops import Cause, OpKind, OpRecord
from ..units import Ms

if TYPE_CHECKING:
    from ..ftl.base import BaseFTL
    from ..sim.timing import TimingModel
    from .plan import FaultPlan


def run_power_loss(ftl: BaseFTL, plan: FaultPlan, now: Ms,
                   timing: TimingModel) -> Ms:
    """Inject one power-loss event at ``now``; returns the recovery ms."""
    stats = plan.stats
    stats.power_loss_events += 1
    window_start = now - plan.config.torn_window_ms
    flash = ftl.flash
    spp = ftl.geometry.subpages_per_page

    # Pass 1: scan (ascending block id — deterministic), collecting torn
    # subpages without mutating anything.  Repairs relocate data and can
    # trigger GC, which must not invalidate the scan mid-flight.
    scanned_pages = 0
    torn: list[tuple[int, int, list[int]]] = []
    for block in flash.region_blocks(True):
        state = block.state
        if state is BlockState.FREE or state is BlockState.RETIRED:
            continue
        for page in range(block.next_page):
            if block.page_programmed[page] == 0:
                continue
            scanned_pages += 1
            valid_row = block.valid[page]
            times_row = block.slot_program_time[page]
            slots = [s for s in range(spp)
                     if valid_row[s] and times_row[s] > window_start]
            if slots:
                torn.append((block.block_id, page, slots))
                stats.torn_subpages += len(slots)

    # Pass 2: repair through the scheme's relocation path.  The reclaim
    # re-checks validity, so data a previous repair (or its GC) already
    # moved is skipped rather than double-relocated.
    recovery_ops: list[OpRecord] = []
    for block_id, page, slots in torn:
        block = flash.block(block_id)
        if block.state is BlockState.RETIRED:
            continue
        valid_row = block.valid[page]
        live = [s for s in slots if valid_row[s]]
        if not live:
            continue
        recovery_ops.extend(
            ftl._fault_reclaim_page(block, page, now, slots=live))
        stats.recovered_subpages += len(live)
    recovery_ops.extend(plan.drain_ops())

    scan_op = OpRecord(kind=OpKind.READ, block_id=0, page=0, n_slots=spp,
                       is_slc=True, cause=Cause.FAULT)
    recovery_ms = scanned_pages * timing.duration_ms(scan_op)
    for op in recovery_ops:
        recovery_ms += timing.duration_ms(op)
    stats.recovery_ms += recovery_ms
    return recovery_ms
