"""Time-series sampling of a running simulation.

A :class:`TimelineRecorder` attaches to :class:`~repro.sim.simulator.Simulator`
and snapshots the device every ``sample_every`` requests: free-pool
headroom, per-level cache composition, cumulative erases and the paper's
mechanism counters.  The samples expose the cache dynamics the figures
only show in aggregate — when GC starts, how the Work/Monitor/Hot split
builds up, how eviction pressure breathes with the workload's locality
windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ftl.levels import SLC_LEVELS
from .charts import line_chart


@dataclass
class TimelineSample:
    """One snapshot."""

    request_index: int
    now_ms: float
    slc_free_fraction: float
    erases_slc: int
    erases_mlc: int
    intra_page_updates: int
    evicted_subpages: int
    valid_by_level: dict[int, int] = field(default_factory=dict)


class TimelineRecorder:
    """Samples an FTL's state as the simulator replays a trace."""

    def __init__(self, ftl, sample_every: int = 500):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.ftl = ftl
        self.sample_every = sample_every
        self.samples: list[TimelineSample] = []

    def __call__(self, request_index: int, now_ms: float) -> None:
        """Simulator callback; samples on the configured stride."""
        if request_index % self.sample_every:
            return
        ftl = self.ftl
        valid_by_level: dict[int, int] = {int(l): 0 for l in SLC_LEVELS}
        for block in ftl.flash.region_blocks(True):
            if block.level is not None and block.level in valid_by_level:
                valid_by_level[block.level] += block.n_valid
        self.samples.append(TimelineSample(
            request_index=request_index,
            now_ms=now_ms,
            slc_free_fraction=ftl.slc_alloc.free_fraction,
            erases_slc=ftl.flash.erases_slc,
            erases_mlc=ftl.flash.erases_mlc,
            intra_page_updates=ftl.stats.intra_page_updates,
            evicted_subpages=ftl.stats.evicted_subpages_to_mlc,
            valid_by_level=valid_by_level,
        ))

    # -- series extraction ------------------------------------------------

    def series(self, name: str) -> list[float]:
        """A named series over the samples.

        Names: ``free_fraction``, ``erases_slc``, ``erases_mlc``,
        ``intra_page_updates``, ``evicted_subpages``, or ``level:<n>``.
        """
        if name.startswith("level:"):
            level = int(name.split(":", 1)[1])
            return [float(s.valid_by_level.get(level, 0)) for s in self.samples]
        attrs = {
            "free_fraction": "slc_free_fraction",
            "erases_slc": "erases_slc",
            "erases_mlc": "erases_mlc",
            "intra_page_updates": "intra_page_updates",
            "evicted_subpages": "evicted_subpages",
        }
        if name not in attrs:
            raise KeyError(f"unknown series {name!r}; options: "
                           f"{sorted(attrs) + ['level:<n>']}")
        return [float(getattr(s, attrs[name])) for s in self.samples]

    def render(self, height: int = 8, width: int = 64) -> str:
        """Two stacked charts: cache headroom and level composition."""
        if not self.samples:
            return "(no samples)"
        x = [s.request_index for s in self.samples]
        headroom = line_chart(
            {"free": self.series("free_fraction")},
            x_labels=[x[0], x[-1]], height=height, width=width,
            title="SLC free-pool fraction over the trace")
        levels = line_chart(
            {"Work": self.series("level:1"),
             "Monitor": self.series("level:2"),
             "Hot": self.series("level:3")},
            x_labels=[x[0], x[-1]], height=height, width=width,
            title="Valid subpages resident per level")
        return headroom + "\n\n" + levels
