"""Plain-text table rendering for experiment output.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:,.4g}" if abs(value) >= 1000 else f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (first row fixes columns)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    values: Mapping[str, float],
    reference: str,
    label: str = "value",
) -> str:
    """Render scheme -> value with percentage deltas versus ``reference``."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} missing from {list(values)}")
    ref = values[reference]
    rows = []
    for name, value in values.items():
        delta = "" if name == reference or ref == 0 else (
            f"{(value - ref) / ref:+.1%} vs {reference}")
        rows.append({"scheme": name, label: value, "delta": delta})
    return format_table(rows)
