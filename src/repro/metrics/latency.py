"""Latency-distribution helpers (Figure 5 reports distributions)."""

from __future__ import annotations

import numpy as np
from ..units import Ms


def percentile_summary(latencies_ms: np.ndarray) -> dict[str, float]:
    """Mean and standard percentiles of a latency sample."""
    arr = np.asarray(latencies_ms, dtype=np.float64)
    if arr.size == 0:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def latency_distribution(
    latencies_ms: np.ndarray,
    edges_ms: "list[Ms] | None" = None,
) -> dict[str, float]:
    """Share of requests in each latency band.

    Default bands resemble the paper's Figure 5 stacked distribution:
    sub-0.1 ms, 0.1-0.5 ms, 0.5-1 ms, 1-5 ms, 5+ ms.
    """
    arr = np.asarray(latencies_ms, dtype=np.float64)
    if edges_ms is None:
        edges_ms = [0.1, 0.5, 1.0, 5.0]
    if sorted(edges_ms) != list(edges_ms):
        raise ValueError("band edges must be ascending")
    if arr.size == 0:
        labels = _band_labels(edges_ms)
        return {label: 0.0 for label in labels}
    counts, _ = np.histogram(arr, bins=[0.0, *edges_ms, np.inf])
    shares = counts / arr.size
    return dict(zip(_band_labels(edges_ms), shares.tolist()))


def _band_labels(edges_ms: list[Ms]) -> list[str]:
    labels = [f"<{edges_ms[0]}ms"]
    labels += [f"{lo}-{hi}ms" for lo, hi in zip(edges_ms[:-1], edges_ms[1:])]
    labels.append(f">={edges_ms[-1]}ms")
    return labels
