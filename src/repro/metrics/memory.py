"""Mapping-table memory model (Section 4.4.1, Figure 11).

The model follows the paper's own arithmetic:

* **Baseline** — a dynamic page-level table: one 4-byte physical-page
  entry per logical page of the device.
* **MGA** — the page-level table plus a second-level table recording the
  subpage composition of every SLC-mode page: one (LSN -> slot) entry of
  8 bytes per SLC subpage (4B logical key + 4B location/valid word).
* **IPU** — the page-level table plus one byte per SLC page recording
  which in-page offset holds the live version (the paper's "which part of
  subpage corresponds to the latest version"), plus the 2-bit block-level
  labels (the paper's 820 B at full scale).

Separately-reported metadata (not part of Figure 11's mapping size, but
quoted in Section 4.4.1): the 4-byte IS' bookkeeping per SLC page the ISR
policy needs (819.2 KB at full scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SSDConfig
from ..errors import ExperimentError

#: Bytes per first-level (page-map) entry.
PAGE_ENTRY_BYTES = 4
#: Bytes per MGA second-level subpage entry.
SUBPAGE_ENTRY_BYTES = 8
#: Bytes per IPU per-page live-offset record.
IPU_OFFSET_BYTES = 1
#: Bits per IPU block-level label.
LEVEL_LABEL_BITS = 2
#: Bytes per IS' access-time record per SLC page.
ISR_RECORD_BYTES = 4


@dataclass(frozen=True)
class MappingBreakdown:
    """Byte-level decomposition of one scheme's mapping structures."""

    scheme: str
    page_table_bytes: int
    second_level_bytes: int
    label_bytes: int
    metadata_bytes: int

    @property
    def mapping_bytes(self) -> int:
        """Total mapping-table size (the Figure 11 quantity)."""
        return self.page_table_bytes + self.second_level_bytes + self.label_bytes

    def normalized_to(self, baseline: "MappingBreakdown") -> float:
        """Mapping size relative to the Baseline scheme."""
        return self.mapping_bytes / baseline.mapping_bytes


def _logical_pages(config: SSDConfig) -> int:
    return config.capacity_bytes // config.geometry.page_size


def _slc_pages(config: SSDConfig) -> int:
    return config.slc_blocks * config.geometry.slc_pages_per_block


def mapping_breakdown(scheme: str, config: SSDConfig) -> MappingBreakdown:
    """Mapping memory of ``scheme`` under ``config``.

    Scheme variants (ablations) may suffix the base name with ``-tag``;
    they share the base scheme's mapping structures.
    """
    config.validate()
    scheme = scheme.split("-", 1)[0]
    pages = _logical_pages(config)
    slc_pages = _slc_pages(config)
    slc_subpages = slc_pages * config.geometry.subpages_per_page
    page_table = pages * PAGE_ENTRY_BYTES

    if scheme == "baseline":
        return MappingBreakdown("baseline", page_table, 0, 0, 0)
    if scheme == "mga":
        return MappingBreakdown(
            "mga", page_table, slc_subpages * SUBPAGE_ENTRY_BYTES, 0, 0)
    if scheme == "delta":
        # Page map plus a per-SLC-page delta record (chain length and
        # packed-bytes cursor; Zhang et al. keep comparable state).
        return MappingBreakdown(
            "delta", page_table, slc_pages * 2 * IPU_OFFSET_BYTES, 0, 0)
    if scheme == "ipu":
        label_bytes = -(-config.slc_blocks * LEVEL_LABEL_BITS // 8)
        return MappingBreakdown(
            "ipu", page_table, slc_pages * IPU_OFFSET_BYTES, label_bytes,
            metadata_bytes=slc_pages * ISR_RECORD_BYTES)
    raise ExperimentError(f"unknown scheme {scheme!r}")
