"""Terminal (ASCII) chart rendering.

The execution environment has no display and no plotting stack, so the
figure harnesses render their series as Unicode bar and line charts —
enough to eyeball the shapes the paper's figures show (who wins, by
roughly what factor, where the trend bends).

Charts are pure functions from data to a string, with no dependencies
beyond the standard library.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Fractional horizontal bar glyphs (1/8 .. 8/8).
_BAR_GLYPHS = " ▏▎▍▌▋▊▉█"
#: Default drawing width for bar values, in character cells.
DEFAULT_WIDTH = 40


def _bar(value: float, vmax: float, width: int) -> str:
    """Render one horizontal bar scaled to ``vmax`` over ``width`` cells."""
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = int(round((cells - full) * 8))
    if frac == 8:
        full, frac = full + 1, 0
    return "█" * full + (_BAR_GLYPHS[frac] if frac else "")


def _fmt_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) < 1e-2 or abs(value) >= 1e5:
        return f"{value:.2e}"
    return f"{value:,.3g}"


def bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """A labelled horizontal bar chart.

    >>> print(bar_chart({"baseline": 4.0, "ipu": 3.0}))  # doctest: +SKIP
    """
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    vmax = max(values.values())
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        lines.append(
            f"{str(key).ljust(label_w)} |{_bar(value, vmax, width).ljust(width)}"
            f"| {_fmt_value(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Bars grouped by an outer key (e.g. trace -> scheme -> value).

    All bars share one scale so cross-group comparison is honest.
    """
    if not groups:
        return f"{title}\n(no data)" if title else "(no data)"
    vmax = max((v for g in groups.values() for v in g.values()), default=0.0)
    inner_w = max((len(str(k)) for g in groups.values() for k in g), default=1)
    lines = [title] if title else []
    for group, values in groups.items():
        lines.append(f"{group}")
        for key, value in values.items():
            lines.append(
                f"  {str(key).ljust(inner_w)} |"
                f"{_bar(value, vmax, width).ljust(width)}| {_fmt_value(value)}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object] | None = None,
    title: str | None = None,
    height: int = 10,
    width: int = 60,
    log_y: bool = False,
) -> str:
    """A multi-series line chart on a character grid.

    Each series gets a marker (its name's first letter); overlapping
    points show ``*``.  With ``log_y`` the vertical axis is logarithmic —
    useful for the RBER curves, which span decades.
    """
    if not series:
        return f"{title}\n(no data)" if title else "(no data)"
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    npoints = lengths.pop()
    if npoints == 0:
        return f"{title}\n(no data)" if title else "(no data)"

    def transform(value: float) -> float:
        if not log_y:
            return value
        return math.log10(max(value, 1e-300))

    all_values = [transform(v) for vs in series.values() for v in vs]
    vmin, vmax = min(all_values), max(all_values)
    if vmax == vmin:
        vmax = vmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for name in series:
        marker = str(name)[0]
        while marker in markers.values():
            marker = chr(ord(marker) + 1)
        markers[name] = marker

    for name, values in series.items():
        for i, value in enumerate(values):
            x = int(i / max(1, npoints - 1) * (width - 1))
            yfrac = (transform(value) - vmin) / (vmax - vmin)
            y = height - 1 - int(round(yfrac * (height - 1)))
            cell = grid[y][x]
            grid[y][x] = markers[name] if cell == " " else "*"

    top = _fmt_value(10 ** vmax if log_y else vmax)
    bottom = _fmt_value(10 ** vmin if log_y else vmin)
    gutter = max(len(top), len(bottom))
    lines = [title] if title else []
    for row_idx, row in enumerate(grid):
        label = top if row_idx == 0 else (bottom if row_idx == height - 1 else "")
        lines.append(f"{label.rjust(gutter)} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    if x_labels is not None and len(x_labels) >= 2:
        axis = f"{x_labels[0]}".ljust(width - len(str(x_labels[-1]))) + f"{x_labels[-1]}"
        lines.append(" " * gutter + "  " + axis[:width])
    legend = "   ".join(f"{m}={n}" for n, m in markers.items())
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def distribution_chart(
    bands: Mapping[str, Mapping[str, float]],
    title: str | None = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Stacked-share rendering of latency-band distributions (Figure 5's
    visual form): one row per scheme, cells proportional to band share."""
    if not bands:
        return f"{title}\n(no data)" if title else "(no data)"
    fills = "░▒▓█▚"
    band_names: list[str] = []
    for shares in bands.values():
        for band in shares:
            if band not in band_names:
                band_names.append(band)
    label_w = max(len(str(k)) for k in bands)
    lines = [title] if title else []
    for key, shares in bands.items():
        row = ""
        for i, band in enumerate(band_names):
            cells = int(round(shares.get(band, 0.0) * width))
            row += fills[i % len(fills)] * cells
        lines.append(f"{str(key).ljust(label_w)} |{row[:width].ljust(width)}|")
    legend = "   ".join(
        f"{fills[i % len(fills)]}={band}" for i, band in enumerate(band_names))
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
