"""Metric models and reporting helpers.

Most runtime counters live with the components that produce them (the
flash array, the FTL stats, the GC stats); this package adds the analytic
models the paper reports on top — mapping-table memory (Figure 11) — plus
latency-distribution helpers and plain-text table rendering used by the
experiment harnesses and the CLI.
"""

from .memory import MappingBreakdown, mapping_breakdown
from .latency import latency_distribution, percentile_summary
from .report import format_table, format_comparison
from .charts import (
    bar_chart,
    distribution_chart,
    grouped_bar_chart,
    line_chart,
)
from .timeline import TimelineRecorder, TimelineSample

__all__ = [
    "MappingBreakdown",
    "mapping_breakdown",
    "latency_distribution",
    "percentile_summary",
    "format_table",
    "format_comparison",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "distribution_chart",
    "TimelineRecorder",
    "TimelineSample",
]
