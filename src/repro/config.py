"""Simulator configuration (Table 2 of the paper) and scaling presets.

The paper's experimental settings (Table 2)::

    Block number    65536        SLC read time   0.025 ms
    SLC mode ratio  5%           MLC read time   0.05  ms
    SLC/MLC Page    64/128       ECC min time    0.0005 ms
    Page size       16KB         ECC max time    0.0968 ms
    GC threshold    5%           SLC write time  0.3 ms
    Wear-leveling   static       MLC write time  0.9 ms
    FTL scheme      Page         Erase time      10 ms

A full-scale pure-Python replay of multi-million-request traces is slow, so
experiments run at a :class:`ScaleSpec`-selected scale; ``paper`` scale keeps
the original 65536 blocks.  All reported metrics are ratios or averages that
are stable under proportional scaling of the device and the working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import KIB

__all__ = [
    "GeometryConfig",
    "TimingConfig",
    "ReliabilityConfig",
    "CacheConfig",
    "TranslationConfig",
    "SSDConfig",
    "ScaleSpec",
    "SCALES",
    "paper_config",
    "scaled_config",
]


@dataclass(frozen=True)
class GeometryConfig:
    """Physical organisation of the flash array.

    The hierarchy is ``channel -> chip -> plane -> block -> page ->
    subpage``.  ``total_blocks`` is distributed evenly over the planes;
    remaining fields follow Table 2.
    """

    channels: int = 8
    chips_per_channel: int = 2
    planes_per_chip: int = 2
    total_blocks: int = 65536
    slc_pages_per_block: int = 64
    mlc_pages_per_block: int = 128
    page_size: int = 16 * KIB
    subpage_size: int = 4 * KIB

    @property
    def chips(self) -> int:
        """Total chip count."""
        return self.channels * self.chips_per_channel

    @property
    def planes(self) -> int:
        """Total plane count."""
        return self.chips * self.planes_per_chip

    @property
    def blocks_per_plane(self) -> int:
        """Blocks hosted by each plane."""
        return self.total_blocks // self.planes

    @property
    def subpages_per_page(self) -> int:
        """Number of 4 KiB subpages in one physical page."""
        return self.page_size // self.subpage_size

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent geometry."""
        if min(self.channels, self.chips_per_channel, self.planes_per_chip) < 1:
            raise ConfigError("channel/chip/plane counts must be >= 1")
        if self.total_blocks < self.planes:
            raise ConfigError(
                f"total_blocks={self.total_blocks} smaller than plane count {self.planes}"
            )
        if self.total_blocks % self.planes != 0:
            raise ConfigError(
                f"total_blocks={self.total_blocks} not divisible by planes={self.planes}"
            )
        if self.page_size % self.subpage_size != 0:
            raise ConfigError("page_size must be a multiple of subpage_size")
        if self.subpages_per_page < 1:
            raise ConfigError("page must contain at least one subpage")
        if self.slc_pages_per_block < 1 or self.mlc_pages_per_block < 1:
            raise ConfigError("pages per block must be >= 1")
        if self.mlc_pages_per_block < self.slc_pages_per_block:
            raise ConfigError("MLC blocks must hold at least as many pages as SLC-mode")


@dataclass(frozen=True)
class TimingConfig:
    """Operation latencies in milliseconds (Table 2)."""

    slc_read_ms: float = 0.025
    mlc_read_ms: float = 0.05
    slc_write_ms: float = 0.3
    mlc_write_ms: float = 0.9
    erase_ms: float = 10.0
    ecc_min_ms: float = 0.0005
    ecc_max_ms: float = 0.0968
    #: Channel transfer time for one 4 KiB subpage (~100 MB/s ONFI bus,
    #: consistent with the large-page device generation Table 2 models).
    transfer_ms_per_subpage: float = 0.04
    #: Pipelined bus model: media time occupies only the chip and transfer
    #: time only the channel (reads sense first, programs transfer first),
    #: instead of the default conservative both-busy model.
    pipelined_bus: bool = False

    def read_ms(self, slc: bool) -> float:
        """Media read time for one page in the given cell mode."""
        return self.slc_read_ms if slc else self.mlc_read_ms

    def write_ms(self, slc: bool) -> float:
        """Media program time for one page in the given cell mode."""
        return self.slc_write_ms if slc else self.mlc_write_ms

    def validate(self) -> None:
        """Raise :class:`ConfigError` on non-physical latencies."""
        values = {
            "slc_read_ms": self.slc_read_ms,
            "mlc_read_ms": self.mlc_read_ms,
            "slc_write_ms": self.slc_write_ms,
            "mlc_write_ms": self.mlc_write_ms,
            "erase_ms": self.erase_ms,
            "transfer_ms_per_subpage": self.transfer_ms_per_subpage,
        }
        for name, value in values.items():
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.ecc_min_ms < 0 or self.ecc_max_ms < self.ecc_min_ms:
            raise ConfigError("require 0 <= ecc_min_ms <= ecc_max_ms")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Raw-bit-error-rate and ECC model parameters.

    The RBER curves are calibrated to the two measured points quoted in
    Section 2.2 / Figure 2 of the paper (Zhang et al., FAST'16): at 4000
    P/E cycles a conventionally-programmed SLC-mode page shows RBER
    2.8e-4 while a partially-programmed one shows 3.8e-4.
    """

    #: Device wear age assumed at simulation start (Table 2 default).
    initial_pe_cycles: int = 4000
    #: P/E count the calibration points below refer to.
    reference_pe_cycles: int = 4000
    #: RBER of a fresh conventionally-programmed SLC page.
    rber_fresh: float = 1e-5
    #: Conventional-programming RBER at the reference P/E count.
    rber_conventional_ref: float = 2.8e-4
    #: Partial-programming RBER at the reference P/E count (typical page
    #: that received the full budget of partial-program passes).
    rber_partial_ref: float = 3.8e-4
    #: Power-law exponent of RBER growth with P/E cycles.
    pe_exponent: float = 2.0
    #: MLC base RBER multiplier relative to SLC-mode.  The paper's error
    #: data (Zhang et al.) is measured on MLC hardware and applied to the
    #: SLC-mode pages unchanged, so both regions share the base curve.
    mlc_rber_factor: float = 1.0
    #: Stored-IS' refresh interval (ms): the paper keeps 4B of IS' state
    #: per SLC page (Section 4.4.1) instead of recomputing Equation 2 on
    #: every GC scan; cached values older than this are recomputed.
    isr_refresh_ms: float = 100.0
    #: Neighbour-page disturb delta as a fraction of in-page disturb delta.
    neighbor_disturb_ratio: float = 0.2
    #: Read-disturb: RBER added to every subpage of a block per read of
    #: that block, as a fraction of the in-page disturb unit.  An optional
    #: extension (0 disables it); reads stress unselected word lines, and
    #: an erase heals the block.
    read_disturb_unit_ratio: float = 0.0
    #: Retention loss: RBER added per millisecond of data age, as a
    #: fraction of the in-page disturb unit (optional extension, 0
    #: disables; the axis of Kim et al.'s DAC'17 subpage-aware retention
    #: model the paper cites as related work).  SLC-mode only — it needs
    #: per-subpage program times, which MLC blocks do not track.
    retention_unit_per_ms: float = 0.0
    #: BCH codeword payload in bytes (ISSCC'06-style 512B sectors).
    bch_codeword_bytes: int = 512
    #: BCH correction capability per codeword, in bits.
    bch_t: int = 5
    #: Manufacturer limit on program operations applied to one SLC page.
    max_page_programs: int = 4

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent reliability settings."""
        if self.initial_pe_cycles < 0:
            raise ConfigError("initial_pe_cycles must be >= 0")
        if self.reference_pe_cycles <= 0:
            raise ConfigError("reference_pe_cycles must be positive")
        if not (0.0 <= self.rber_fresh <= self.rber_conventional_ref):
            raise ConfigError("require 0 <= rber_fresh <= rber_conventional_ref")
        if self.rber_partial_ref < self.rber_conventional_ref:
            raise ConfigError("partial-programming RBER must be >= conventional RBER")
        if self.pe_exponent <= 0:
            raise ConfigError("pe_exponent must be positive")
        if self.mlc_rber_factor < 1.0:
            raise ConfigError("mlc_rber_factor must be >= 1")
        if self.isr_refresh_ms < 0:
            raise ConfigError("isr_refresh_ms must be >= 0")
        if not (0.0 <= self.neighbor_disturb_ratio <= 1.0):
            raise ConfigError("neighbor_disturb_ratio must lie in [0, 1]")
        if self.read_disturb_unit_ratio < 0:
            raise ConfigError("read_disturb_unit_ratio must be >= 0")
        if self.retention_unit_per_ms < 0:
            raise ConfigError("retention_unit_per_ms must be >= 0")
        if self.bch_codeword_bytes <= 0 or self.bch_t <= 0:
            raise ConfigError("BCH parameters must be positive")
        if self.max_page_programs < 1:
            raise ConfigError("max_page_programs must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """SLC-mode cache sizing and garbage-collection policy knobs."""

    #: Fraction of blocks operated in SLC mode (Table 2: 5%).
    slc_ratio: float = 0.05
    #: GC triggers when the free-block fraction of a region drops below this.
    gc_threshold: float = 0.05
    #: Free-block fraction a GC pass tries to restore.
    gc_restore: float = 0.10
    #: Victim blocks whose collection may *start* per trigger.  Bounding
    #: the foreground GC work per request is what lets cache pressure show
    #: up as host writes spilling into the high-density region (Figure 6)
    #: instead of as unbounded queueing.
    gc_max_blocks_per_trigger: int = 1
    #: Pages relocated per trigger: victims drain incrementally across
    #: requests, so one collection blocks a chip for a few page moves at a
    #: time instead of a whole-block blob (standard partial-GC technique).
    gc_pages_per_trigger: int = 8
    #: Enable static wear-levelling (Table 2).
    static_wear_leveling: bool = True
    #: Static WL triggers when (max - min) erase count exceeds this gap.
    wear_leveling_gap: int = 32
    #: Check the static WL condition every this many erases.
    wear_leveling_period: int = 64

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid cache policy settings."""
        if not (0.0 < self.slc_ratio < 1.0):
            raise ConfigError("slc_ratio must lie strictly between 0 and 1")
        if not (0.0 < self.gc_threshold < 1.0):
            raise ConfigError("gc_threshold must lie strictly between 0 and 1")
        if not (self.gc_threshold <= self.gc_restore < 1.0):
            raise ConfigError("require gc_threshold <= gc_restore < 1")
        if self.wear_leveling_gap < 1 or self.wear_leveling_period < 1:
            raise ConfigError("wear-leveling parameters must be >= 1")
        if self.gc_max_blocks_per_trigger < 1:
            raise ConfigError("gc_max_blocks_per_trigger must be >= 1")
        if self.gc_pages_per_trigger < 1:
            raise ConfigError("gc_pages_per_trigger must be >= 1")


@dataclass(frozen=True)
class TranslationConfig:
    """Demand-paged address translation (DFTL-style CMT; an extension the
    paper motivates but does not evaluate — disabled by default).

    When enabled, mapping lookups outside the cached translation pages
    cost a foreground flash read (plus a program for dirty evictions);
    see :mod:`repro.ftl.translation`.
    """

    enabled: bool = False
    #: Mapping entries per translation page (4-byte entries, 16 KiB page).
    entries_per_page: int = 4096
    #: Translation pages the controller SRAM can hold.
    cache_pages: int = 64

    def validate(self) -> "TranslationConfig":
        """Raise :class:`ConfigError` on invalid CMT parameters."""
        if self.entries_per_page < 1:
            raise ConfigError("entries_per_page must be >= 1")
        if self.cache_pages < 1:
            raise ConfigError("cache_pages must be >= 1")
        return self


@dataclass(frozen=True)
class SSDConfig:
    """Complete simulator configuration."""

    geometry: GeometryConfig = field(default_factory=GeometryConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    seed: int | None = None

    @property
    def slc_blocks(self) -> int:
        """Number of blocks operated in SLC mode."""
        return max(1, round(self.geometry.total_blocks * self.cache.slc_ratio))

    @property
    def mlc_blocks(self) -> int:
        """Number of blocks left in native high-density (MLC) mode."""
        return self.geometry.total_blocks - self.slc_blocks

    @property
    def slc_capacity_bytes(self) -> int:
        """Usable bytes of the SLC-mode cache region."""
        g = self.geometry
        return self.slc_blocks * g.slc_pages_per_block * g.page_size

    @property
    def mlc_capacity_bytes(self) -> int:
        """Usable bytes of the high-density region."""
        g = self.geometry
        return self.mlc_blocks * g.mlc_pages_per_block * g.page_size

    @property
    def capacity_bytes(self) -> int:
        """Total usable bytes of the device."""
        return self.slc_capacity_bytes + self.mlc_capacity_bytes

    def validate(self) -> "SSDConfig":
        """Validate all sections; returns ``self`` for chaining."""
        self.geometry.validate()
        self.timing.validate()
        self.reliability.validate()
        self.cache.validate()
        self.translation.validate()
        if self.mlc_blocks < 1:
            raise ConfigError("configuration leaves no high-density blocks")
        return self

    def with_pe_cycles(self, pe: int) -> "SSDConfig":
        """Return a copy with a different initial device wear age."""
        return replace(self, reliability=replace(self.reliability, initial_pe_cycles=pe))

    def describe(self) -> dict[str, object]:
        """Flat summary used by the Table 2 experiment and the CLI."""
        g, t = self.geometry, self.timing
        return {
            "Block number": g.total_blocks,
            "SLC mode ratio": f"{self.cache.slc_ratio:.0%}",
            "SLC/MLC Page": f"{g.slc_pages_per_block}/{g.mlc_pages_per_block}",
            "Page size": f"{g.page_size // KIB}KB",
            "GC threshold": f"{self.cache.gc_threshold:.0%}",
            "Wear-leveling": "static" if self.cache.static_wear_leveling else "none",
            "FTL scheme": "Page",
            "SLC read time (ms)": t.slc_read_ms,
            "MLC read time (ms)": t.mlc_read_ms,
            "ECC min time (ms)": t.ecc_min_ms,
            "ECC max time (ms)": t.ecc_max_ms,
            "SLC write time (ms)": t.slc_write_ms,
            "MLC write time (ms)": t.mlc_write_ms,
            "Erase time (ms)": t.erase_ms,
            "P/E cycle": self.reliability.initial_pe_cycles,
        }


@dataclass(frozen=True)
class ScaleSpec:
    """A named simulation scale.

    ``total_blocks`` sizes generic (non-trace) configurations;
    trace-driven experiments size the device per trace instead (see
    :meth:`repro.experiments.runner.RunContext.trace_config`) and use
    ``target_requests``/``max_requests`` to shrink the trace.
    """

    name: str
    total_blocks: int
    target_requests: int
    max_requests: int
    channels: int = 8
    chips_per_channel: int = 2
    planes_per_chip: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigError` on invalid scale parameters."""
        if self.total_blocks < 1 or self.max_requests < 1:
            raise ConfigError("scale must have positive blocks and requests")
        if not 1 <= self.target_requests <= self.max_requests:
            raise ConfigError("require 1 <= target_requests <= max_requests")


#: Built-in scales.  ``paper`` mirrors Table 2 exactly; the smaller scales
#: shrink the device and let the experiment runner shrink the traces so
#: the working-set-to-cache pressure stays comparable.
SCALES: dict[str, ScaleSpec] = {
    "smoke": ScaleSpec("smoke", total_blocks=64, target_requests=4_000,
                       max_requests=6_000,
                       channels=4, chips_per_channel=2, planes_per_chip=1),
    "small": ScaleSpec("small", total_blocks=160, target_requests=45_000,
                       max_requests=80_000,
                       channels=4, chips_per_channel=2, planes_per_chip=1),
    "medium": ScaleSpec("medium", total_blocks=640, target_requests=150_000,
                        max_requests=400_000,
                        channels=8, chips_per_channel=2, planes_per_chip=1),
    "paper": ScaleSpec("paper", total_blocks=65536, target_requests=2_000_000,
                       max_requests=10_000_000),
}


def paper_config(seed: int | None = None) -> SSDConfig:
    """The exact Table 2 configuration."""
    return SSDConfig(seed=seed).validate()


def scaled_config(scale: str | ScaleSpec = "small", seed: int | None = None) -> SSDConfig:
    """A configuration shrunk according to a :class:`ScaleSpec`.

    Everything except the block count and parallelism stays at Table 2
    values, so per-operation latencies and RBER behaviour are unchanged.
    """
    spec = SCALES[scale] if isinstance(scale, str) else scale
    spec.validate()
    planes = spec.channels * spec.chips_per_channel * spec.planes_per_chip
    total = max(planes, spec.total_blocks - spec.total_blocks % planes)
    geometry = GeometryConfig(
        channels=spec.channels,
        chips_per_channel=spec.chips_per_channel,
        planes_per_chip=spec.planes_per_chip,
        total_blocks=total,
    )
    return SSDConfig(geometry=geometry, seed=seed).validate()


