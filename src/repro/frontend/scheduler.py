"""The multi-queue request scheduler.

Requests are distributed over per-chip queues (the NVMe-ish
submission-queue view of the device's chip parallelism) and dispatched
under one global in-flight bound — the *queue depth*.  Arbitration over
the non-empty queues is round-robin from a persistent pointer, so the
dispatch order is a pure function of the submission history:

* **submission** appends to the target queue (FIFO per queue);
* a **slot** frees when the earliest outstanding completion is reached;
  ties between equal completion times break by submission sequence
  number (a heap of ``(completion, seq)`` pairs — never by id or hash);
* each freed slot dispatches the next request from the round-robin scan,
  issuing it at ``max(slot time, arrival time)``.

The scheduler never prices anything itself: the owner supplies an
``issue(request, issue_ms) -> completion_ms`` callback that runs the FTL
and reserves chip/channel time through the existing
:class:`~repro.sim.timing.TimingModel` pipeline, keeping all latency
arithmetic in one place.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError
from ..units import Lsn, Ms


@dataclass(frozen=True, slots=True)
class FrontRequest:
    """One host request as the scheduler sees it."""

    index: int          #: position in the trace (latency slot)
    arrival_ms: Ms      #: host submission time
    lsns: "list[Lsn]"   #: touched subpages
    is_write: bool      #: direction


class MultiQueueScheduler:
    """Deterministic round-robin dispatcher with a global depth bound."""

    def __init__(self, n_queues: int, queue_depth: int,
                 issue: "Callable[[FrontRequest, Ms], Ms]"):
        if n_queues < 1:
            raise SimulationError(f"n_queues must be >= 1, got {n_queues}")
        if queue_depth < 1:
            raise SimulationError(
                f"queue_depth must be >= 1, got {queue_depth}")
        self.queue_depth = queue_depth
        self.issue = issue
        self._queues: "list[list[FrontRequest]]" = [[] for _ in range(n_queues)]
        #: Next-service cursor per queue (popping from the front of a
        #: plain list is O(n); an index keeps FIFO service O(1)).
        self._heads: "list[int]" = [0] * n_queues
        self._rr = 0
        self._inflight: "list[tuple[Ms, int]]" = []
        self._seq = 0
        self._queued = 0
        self.max_inflight = 0

    # -- owner API -----------------------------------------------------------

    def submit(self, request: FrontRequest, queue_id: int, now: Ms) -> None:
        """Enqueue one request at its arrival time.

        Completions due before ``now`` are retired first (each freed slot
        dispatches from the backlog at its completion time), then the new
        request joins its queue and dispatches immediately if a slot is
        free.
        """
        self.advance(now)
        self._queues[queue_id].append(request)
        self._queued += 1
        self._fill(now)

    def advance(self, to_ms: Ms) -> None:
        """Retire completions up to ``to_ms``, dispatching the backlog."""
        inflight = self._inflight
        while inflight and inflight[0][0] <= to_ms:
            done_ms, _ = heapq.heappop(inflight)
            self._fill(done_ms)

    def drain(self) -> Ms:
        """Run every queued and in-flight request to completion.

        Returns the final completion time (0 if nothing was pending).
        """
        last = 0.0
        inflight = self._inflight
        while inflight:
            done_ms, _ = heapq.heappop(inflight)
            if done_ms > last:
                last = done_ms
            self._fill(done_ms)
        return last

    # -- internals -----------------------------------------------------------

    def _fill(self, now: Ms) -> None:
        """Dispatch backlog into free slots, round-robin across queues."""
        inflight = self._inflight
        while len(inflight) < self.queue_depth and self._queued:
            request = self._next_request()
            issue_ms = now if now > request.arrival_ms else request.arrival_ms
            completion = self.issue(request, issue_ms)
            self._seq += 1
            heapq.heappush(inflight, (completion, self._seq))
            if len(inflight) > self.max_inflight:
                self.max_inflight = len(inflight)

    def _next_request(self) -> FrontRequest:
        """The next backlog entry in round-robin order (caller checked
        ``self._queued``)."""
        queues = self._queues
        heads = self._heads
        n = len(queues)
        rr = self._rr
        for off in range(n):
            qid = (rr + off) % n
            queue = queues[qid]
            head = heads[qid]
            if head < len(queue):
                request = queue[head]
                heads[qid] = head + 1
                if heads[qid] == len(queue):
                    queue.clear()
                    heads[qid] = 0
                self._rr = (qid + 1) % n
                self._queued -= 1
                return request
        raise SimulationError("scheduler backlog accounting desynced")
