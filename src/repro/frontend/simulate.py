"""Replay through the device front-end: buffer + scheduler + FTL.

:class:`FrontendSimulator` is the front-end counterpart of
:class:`~repro.sim.simulator.Simulator`: same trace, same FTL, same
:class:`~repro.sim.timing.TimingModel` pricing on the same
:class:`~repro.sim.resources.ResourceSet` — but host requests pass
through the :class:`~repro.frontend.cache.WriteBuffer` and the
:class:`~repro.frontend.scheduler.MultiQueueScheduler` first:

* a **write** is absorbed into the buffer at dispatch time and
  acknowledged after the DRAM ack cost — unless the insert overflowed
  the buffer, in which case the request additionally waits for the
  pressure-flush spans it forced out (write backpressure is what makes
  queue depth matter);
* a **read** splits into buffer hits (DRAM cost) and misses (the FTL
  read path, chip/channel time reserved as usual);
* the periodic writeback sweep and the end-of-run drain destage in the
  background: their flash ops occupy the chips and delay later
  requests, but complete no host request;
* a power loss drops the dirty buffer contents (DRAM does not survive)
  *before* the mount scan runs — destaged-but-torn subpages follow the
  ordinary torn-page recovery, so a buffered write is either replayed
  from flash or dropped with the buffer, never duplicated.

Determinism: the FTL mutates in scheduler dispatch order, which is a
pure function of the submission history (see ``scheduler.py``); the
buffer is insertion-ordered.  Two replays of the same cell — including
across the parallel fan-out — are bit-identical.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..config import SSDConfig
from ..sim.ops import Cause, OpKind
from ..sim.resources import ResourceSet
from ..sim.simulator import SimulationResult, _source_chunks, collect_result
from ..sim.timing import TimingModel
from ..traces.model import Trace
from ..units import Lsn, Ms
from .cache import WriteBuffer
from .config import FrontendConfig
from .scheduler import FrontRequest, MultiQueueScheduler

#: Op causes that complete a host request (same set the direct path uses).
_HOSTLIKE = (Cause.HOST, Cause.TRANSLATION)


class FrontendSimulator:
    """Replays traces through the write buffer and multi-queue scheduler."""

    def __init__(self, ftl, frontend: FrontendConfig,
                 config: SSDConfig | None = None):
        frontend.validate()
        self.ftl = ftl
        self.config = config if config is not None else ftl.config
        self.frontend = frontend
        self.geometry = ftl.geometry
        self.timing = TimingModel(self.config, ecc=ftl.ecc, rber=ftl.rber)
        self.resources = ResourceSet(self.geometry)
        self.buffer = WriteBuffer(frontend)
        #: The scheduler lives for the simulator's whole life (not per
        #: run) so a checkpoint pickled between chunks carries the
        #: in-flight heap and queue cursors with it.
        self.scheduler = MultiQueueScheduler(
            self.geometry.chips, frontend.queue_depth, self._issue)
        self._subpage_bits = self.geometry.subpage_size * 8
        #: Per-request response times, indexed by global request index.
        #: A growing python list (not a preallocated array): a request
        #: submitted in one chunk may complete during a later chunk's
        #: scheduler advance, so the storage must already cover every
        #: submitted index while growing chunk by chunk.
        self._latencies: list[float] = []
        self._is_write: list[bool] = []
        self._read_raw_errors = 0.0
        self._read_bits = 0
        #: Loop-carry state across feed() calls.
        self.n = 0
        self.now = 0.0
        faults_plan = getattr(ftl, "faults", None)
        self.next_power_loss = (faults_plan.next_power_loss(0.0)
                                if faults_plan is not None else math.inf)
        self._finished = False

    # -- op pricing ----------------------------------------------------------

    def _reserve(self, op, when: Ms) -> Ms:
        """Reserve chip/channel time for one op; returns its end time."""
        if self.config.timing.pipelined_bus:
            chip_ms, chan_ms, chip_first = self.timing.segments_ms(op)
            _, end = self.resources.acquire_pipelined(
                op.block_id, when, chip_ms, chan_ms, chip_first)
        else:
            _, end = self.resources.acquire_for_block(
                op.block_id, when, self.timing.duration_ms(op))
        return end

    def _flush_span(self, span: "list[Lsn]", now: Ms) -> Ms:
        """Destage one buffer span through the FTL; returns the last end
        time among its ops (GC riding along included — a pressure-flushed
        writer waits for the whole eviction it forced)."""
        end = now
        for op in self.ftl.handle_write(span, now):
            op_end = self._reserve(op, now)
            if op_end > end:
                end = op_end
        return end

    # -- scheduler issue callback --------------------------------------------

    def _issue(self, request: FrontRequest, issue_ms: Ms) -> Ms:
        """Run one dispatched request; returns its completion time."""
        fe = self.frontend
        if request.is_write:
            spans = self.buffer.write(request.lsns, issue_ms)
            complete = issue_ms + fe.write_ack_ms
            for span in spans:
                end = self._flush_span(span, issue_ms)
                if end > complete:
                    complete = end
        else:
            hits, misses = self.buffer.split_read(request.lsns)
            complete = issue_ms + fe.read_hit_ms if hits else issue_ms
            if misses:
                ops = self.ftl.handle_read(misses, issue_ms)
                for op in ops:
                    if op.cause not in _HOSTLIKE:
                        continue
                    end = self._reserve(op, issue_ms)
                    if end > complete:
                        complete = end
                    if op.kind is OpKind.READ and op.cause is Cause.HOST:
                        self._read_raw_errors += op.raw_errors
                        self._read_bits += op.n_slots * self._subpage_bits
                for op in ops:
                    if op.cause not in _HOSTLIKE:
                        self._reserve(op, issue_ms)
        self._latencies[request.index] = complete - request.arrival_ms
        return complete

    # -- replay --------------------------------------------------------------

    def feed(self, trace: Trace) -> None:
        """Submit one chunk of requests through the front-end.

        Chunk boundaries are invisible to the simulation: requests
        in-flight at a boundary simply complete during a later chunk's
        scheduler advance (their latency slots already exist), so any
        chunking of a trace replays byte-identically to one whole-trace
        feed.  Call :meth:`finish` after the last chunk.
        """
        n = len(trace)
        base_index = self.n
        self._latencies.extend([0.0] * n)
        self._is_write.extend(bool(w) for w in trace.is_write)

        ftl = self.ftl
        buffer = self.buffer
        geometry = self.geometry
        byte_range_to_lsns = geometry.byte_range_to_lsns
        subpages_per_page = geometry.subpages_per_page
        n_chips = geometry.chips
        scheduler = self.scheduler
        timing = self.timing
        faults_plan = getattr(ftl, "faults", None)
        next_power_loss = self.next_power_loss

        times = trace.times_ms.tolist()
        offsets = trace.offsets.tolist()
        sizes = trace.sizes.tolist()
        writes = trace.is_write.tolist()
        now = self.now
        for i in range(n):
            now = times[i]
            while now >= next_power_loss:
                # DRAM dies first: dirty buffer contents are gone before
                # the mount scan repairs whatever reached the flash.
                buffer.drop_all()
                faults_plan.power_loss(ftl, next_power_loss, timing)
                next_power_loss = faults_plan.next_power_loss(next_power_loss)
            # Periodic writeback: destage entries past their delay in the
            # background (they occupy chips but complete no request).
            for span in buffer.expire(now):
                self._flush_span(span, now)
            lsns = list(byte_range_to_lsns(offsets[i], sizes[i]))
            queue_id = (lsns[0] // subpages_per_page) % n_chips
            scheduler.submit(
                FrontRequest(index=base_index + i, arrival_ms=now, lsns=lsns,
                             is_write=bool(writes[i])),
                queue_id, now)
        self.n = base_index + n
        self.now = now
        self.next_power_loss = next_power_loss

    def finish(self) -> None:
        """End of trace: run the queues dry, then destage what is left in
        the buffer so the flash holds the final image.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        last_completion = self.scheduler.drain()
        drain_ms = last_completion if last_completion > self.now else self.now
        for span in self.buffer.drain():
            self._flush_span(span, drain_ms)

    def result(self, trace_name: str, wall_seconds: float = 0.0,
               ) -> SimulationResult:
        """Harvest the finished replay into a :class:`SimulationResult`."""
        latencies = np.asarray(self._latencies, dtype=np.float64)
        is_write = np.asarray(self._is_write, dtype=bool)
        n = self.n
        result = collect_result(
            self.ftl, self.config,
            trace_name=trace_name,
            n_requests=n,
            sim_time_ms=self.now,
            wall_seconds=wall_seconds,
            read_latencies=latencies[~is_write],
            write_latencies=latencies[is_write],
            read_raw_errors=self._read_raw_errors,
            read_bits=self._read_bits,
        )
        stats = self.buffer.stats
        result.cache_read_hits = stats.read_hits
        result.cache_read_misses = stats.read_misses
        result.merged_writes = stats.merged_writes
        result.coalesced_writes = stats.coalesced_writes
        result.flushes = stats.flushes
        result.flushed_subpages = stats.flushed_subpages
        result.dropped_subpages = stats.dropped_subpages
        result.frontend_queue_depth = self.frontend.queue_depth
        if n:
            result.lat_p50_ms = float(np.percentile(latencies, 50))
            result.lat_p90_ms = float(np.percentile(latencies, 90))
            result.lat_p99_ms = float(np.percentile(latencies, 99))
        return result

    def run(self, trace) -> SimulationResult:
        """Replay a :class:`Trace` or ``TraceStream`` end to end."""
        wall_start = time.perf_counter()
        name, chunks = _source_chunks(trace)
        for chunk in chunks:
            self.feed(chunk)
        self.finish()
        return self.result(name, wall_seconds=time.perf_counter() - wall_start)
