"""Device front-end configuration.

A :class:`FrontendConfig` fixes the shape of the host-side layer the
simulator can interpose between the request stream and the FTL: the
write-back DRAM buffer (capacity, flush watermark, writeback delay,
coalescing span) and the multi-queue scheduler (queue depth, DRAM
service costs).  It is deliberately dependency-free — the experiment
cache keys on its serialized form and the parallel fan-out ships it as
JSON — so it imports nothing from the simulator layers.

A default-constructed config is *disabled*: carrying it through a run
context is bit-identical to not having the front-end at all (the
runner canonicalises a disabled config to ``None`` everywhere, exactly
as :class:`repro.faults.FaultConfig` does).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace

from ..errors import ConfigError
from ..units import Ms, SubpageCount

#: Queue depth used when a sweep only says "frontend on".
DEFAULT_QUEUE_DEPTH = 8


@dataclass(frozen=True)
class FrontendConfig:
    """Write-buffer and scheduler parameters for the device front-end."""

    #: Master switch.  ``False`` means requests go straight to the FTL
    #: through the classic direct replay path — byte-identical results.
    enabled: bool = False

    # -- scheduler ---------------------------------------------------------

    #: Maximum requests in flight across all per-chip queues.
    queue_depth: int = DEFAULT_QUEUE_DEPTH

    # -- write buffer ------------------------------------------------------

    #: DRAM write-buffer capacity in 4 KiB subpages.
    buffer_subpages: SubpageCount = 256
    #: Flush-on-pressure drains the buffer down to this fraction of the
    #: capacity, so one overflow amortises over a batch of evictions.
    flush_watermark: float = 0.75
    #: Entries dirty for longer than this are destaged by the periodic
    #: writeback sweep (0 = destage only under pressure / at drain).
    writeback_delay_ms: Ms = 4.0
    #: Cap on how many adjacent dirty subpages one eviction coalesces
    #: into a single FTL write span.
    flush_span_subpages: SubpageCount = 8

    # -- DRAM service costs ------------------------------------------------

    #: Host-visible cost of absorbing a write into the buffer.
    write_ack_ms: Ms = 0.002
    #: Host-visible cost of serving a read hit from the buffer.
    read_hit_ms: Ms = 0.002

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on invalid values."""
        if self.queue_depth < 1:
            raise ConfigError(f"queue_depth {self.queue_depth} < 1")
        if self.buffer_subpages < 1:
            raise ConfigError(f"buffer_subpages {self.buffer_subpages} < 1")
        if not 0.0 < self.flush_watermark < 1.0:
            raise ConfigError(
                f"flush_watermark {self.flush_watermark} not in (0, 1)")
        if self.writeback_delay_ms < 0:
            raise ConfigError(
                f"negative writeback_delay_ms {self.writeback_delay_ms}")
        if self.flush_span_subpages < 1:
            raise ConfigError(
                f"flush_span_subpages {self.flush_span_subpages} < 1")
        if self.write_ack_ms < 0:
            raise ConfigError(f"negative write_ack_ms {self.write_ack_ms}")
        if self.read_hit_ms < 0:
            raise ConfigError(f"negative read_hit_ms {self.read_hit_ms}")

    @classmethod
    def from_qd(cls, queue_depth: int = DEFAULT_QUEUE_DEPTH,
                ) -> "FrontendConfig":
        """An enabled config at ``queue_depth``, buffer knobs at defaults
        (the CLI's ``--frontend --qd N`` and the ext-qd sweep)."""
        cfg = replace(cls(), enabled=True, queue_depth=queue_depth)
        cfg.validate()
        return cfg

    # -- serialisation (cache keys, worker specs) ---------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FrontendConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown FrontendConfig fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — stable across processes, so it
        is safe inside cache keys and worker specs."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FrontendConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
