"""The coalescing write-back DRAM buffer.

A :class:`WriteBuffer` holds dirty 4 KiB subpages (keyed by LSN) between
the host and the FTL:

* a write to an LSN already buffered **merges** in place — the flash
  never sees the overwritten version;
* eviction takes the oldest dirty entry and **coalesces** it with its
  adjacent dirty neighbours into one contiguous span (capped at
  ``flush_span_subpages``), so destages reach the FTL subpage-aligned
  and sequential;
* occupancy is bounded by ``buffer_subpages``: an insert that would
  overflow first drains the buffer down to the flush watermark
  (**flush-on-pressure**), and entries dirty for longer than
  ``writeback_delay_ms`` are destaged by the periodic sweep;
* reads are split into buffer **hits** (served from DRAM) and misses
  (forwarded to the FTL).

Determinism contract: the buffer holds one insertion-ordered ``dict``
and nothing hash-ordered ever feeds an outcome.  Re-inserting on
overwrite keeps the dict ordered by dirty-age, so "oldest first" is the
head of the dict and every eviction decision is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import FrontendConfig
from ..units import Lsn, Ms, SubpageCount


@dataclass
class BufferStats:
    """Front-end counters (become ``SimulationResult`` fields)."""

    read_hits: int = 0          #: read subpages served from the buffer
    read_misses: int = 0        #: read subpages forwarded to the FTL
    merged_writes: int = 0      #: write subpages absorbed by overwrite
    coalesced_writes: int = 0   #: extra subpages riding a flush span
    flushes: int = 0            #: destage spans issued to the FTL
    flushed_subpages: int = 0   #: subpages destaged across all spans
    dropped_subpages: int = 0   #: dirty subpages lost to power loss
    peak_occupancy: int = 0     #: high-water mark of buffered subpages


class WriteBuffer:
    """LSN-indexed write-back buffer with adjacent-LSN coalescing."""

    def __init__(self, config: FrontendConfig):
        config.validate()
        self.capacity: SubpageCount = config.buffer_subpages
        #: Occupancy the pressure drain stops at (< capacity).
        self.watermark: SubpageCount = min(
            self.capacity - 1,
            int(config.flush_watermark * self.capacity))
        self.delay_ms: Ms = config.writeback_delay_ms
        self.span_limit: SubpageCount = config.flush_span_subpages
        self.stats = BufferStats()
        #: Dirty subpages, ordered oldest-first (overwrites re-insert).
        self._entries: dict[Lsn, Ms] = {}

    @property
    def occupancy(self) -> SubpageCount:
        """Number of dirty subpages currently buffered."""
        return len(self._entries)

    # -- host side ----------------------------------------------------------

    def write(self, lsns: "list[Lsn]", now: Ms) -> "list[list[Lsn]]":
        """Absorb a host write; returns the spans pressure flushed out.

        Each LSN lands in the buffer (merging with any dirty copy).  When
        an insert would exceed the capacity, the buffer first drains down
        to the watermark; the evicted spans are returned for the caller
        to destage through the FTL at ``now``.
        """
        spans: list[list[Lsn]] = []
        entries = self._entries
        for lsn in lsns:
            if lsn in entries:
                del entries[lsn]
                self.stats.merged_writes += 1
            elif len(entries) >= self.capacity:
                spans.extend(self._drain_to_watermark())
            entries[lsn] = now
        if len(entries) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(entries)
        return spans

    def split_read(self, lsns: "list[Lsn]",
                   ) -> "tuple[list[Lsn], list[Lsn]]":
        """Partition a host read into ``(hits, misses)``, order preserved.

        Counter contract: over any run, ``read_hits + read_misses`` equals
        the total subpages read.
        """
        entries = self._entries
        hits = [lsn for lsn in lsns if lsn in entries]
        misses = [lsn for lsn in lsns if lsn not in entries]
        self.stats.read_hits += len(hits)
        self.stats.read_misses += len(misses)
        return hits, misses

    # -- destage side -------------------------------------------------------

    def expire(self, now: Ms) -> "list[list[Lsn]]":
        """Spans whose head entry has been dirty past the writeback delay.

        The dict is ordered oldest-first, so the sweep stops at the first
        entry still inside its delay window.  Coalesced neighbours may be
        younger — riding along is the point of coalescing.
        """
        spans: list[list[Lsn]] = []
        entries = self._entries
        delay = self.delay_ms
        while entries:
            since = next(iter(entries.values()))
            if now - since < delay:
                break
            spans.append(self._evict_oldest())
        return spans

    def drain(self) -> "list[list[Lsn]]":
        """Destage everything (end of trace / explicit flush barrier)."""
        spans: list[list[Lsn]] = []
        while self._entries:
            spans.append(self._evict_oldest())
        return spans

    def drop_all(self) -> SubpageCount:
        """Power loss: dirty DRAM contents are gone, not destaged.

        Returns (and counts) the number of dropped subpages.  Entries
        already handed out by a previous flush are on flash and subject
        to the ordinary torn-page recovery — they are not double-counted
        here, so a buffered write is either replayed from flash or
        dropped with the buffer, never duplicated.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.dropped_subpages += dropped
        return dropped

    # -- eviction internals --------------------------------------------------

    def _drain_to_watermark(self) -> "list[list[Lsn]]":
        spans: list[list[Lsn]] = []
        while len(self._entries) > self.watermark:
            spans.append(self._evict_oldest())
        return spans

    def _evict_oldest(self) -> "list[Lsn]":
        """Evict the oldest dirty subpage plus its adjacent dirty
        neighbours as one contiguous, subpage-aligned span."""
        entries = self._entries
        seed = next(iter(entries))
        lo = hi = seed
        limit = self.span_limit
        while hi - lo + 1 < limit and lo - 1 in entries:
            lo -= 1
        while hi - lo + 1 < limit and hi + 1 in entries:
            hi += 1
        span = list(range(lo, hi + 1))
        for lsn in span:
            del entries[lsn]
        self.stats.flushes += 1
        self.stats.flushed_subpages += len(span)
        self.stats.coalesced_writes += len(span) - 1
        return span
