"""Device front-end: coalescing write buffer + multi-queue scheduler.

The host-side layer between the request stream and the FTL (ROADMAP
open item 1).  ``config`` is dependency-free (cache keys, worker
specs); ``cache`` and ``scheduler`` are pure data structures;
``simulate`` ties them to the simulator stack.  See
``docs/FRONTEND.md``.
"""

from .cache import BufferStats, WriteBuffer
from .config import FrontendConfig
from .scheduler import FrontRequest, MultiQueueScheduler

__all__ = [
    "BufferStats",
    "FrontendConfig",
    "FrontRequest",
    "MultiQueueScheduler",
    "WriteBuffer",
]
