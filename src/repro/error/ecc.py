"""ECC decode latency model.

The BCH decoder of Table 2 takes between ``ecc_min_ms`` (clean read,
syndrome check only) and ``ecc_max_ms`` (errors close to the correction
capability, full Chien search).  We interpolate linearly in the ratio of
expected raw errors per codeword to the capability ``t`` — the standard
first-order model for iterative BCH decoding effort — and clamp at the
maximum, which also covers the retry penalty of a saturated decoder.

The *read error rate* metric the paper reports (Figures 8 and 14) is the
expected number of raw bit errors per bit read; :class:`EccModel` exposes
the per-read expectation so the metrics layer can accumulate it.
"""

from __future__ import annotations

import numpy as np

from ..config import ReliabilityConfig, TimingConfig
from ..errors import ConfigError
from ..units import KIB, Bytes, Ms
from .bch import BCHCode

#: Subpage payload a failure-probability query covers (4 KiB LSN unit).
SUBPAGE_BYTES = 4 * KIB


class EccModel:
    """Decode-latency and raw-error expectations for page reads."""

    def __init__(self, timing: TimingConfig, reliability: ReliabilityConfig):
        timing.validate()
        reliability.validate()
        self.timing = timing
        self.code = BCHCode(
            payload_bytes=reliability.bch_codeword_bytes,
            t=reliability.bch_t,
        )
        self._min = timing.ecc_min_ms
        self._span = timing.ecc_max_ms - timing.ecc_min_ms
        self._t = float(self.code.t)
        # codeword_bits re-derives its parity term (a log2) per call;
        # it is fixed for a code, so resolve it once.
        self._cw_bits = self.code.codeword_bits

    def decode_ms(self, rber: float) -> Ms:
        """Decode time for data read at uniform ``rber``."""
        if rber < 0:
            raise ConfigError(f"negative RBER {rber}")
        lam = rber * self._cw_bits
        frac = min(1.0, lam / self._t)
        return self._min + self._span * frac

    def decode_ms_for_subpages(self, rbers: "np.ndarray | list[float]") -> Ms:
        """Decode time for one page read covering several subpages.

        Codewords are decoded in a pipeline, so the slowest (highest-RBER)
        subpage dominates the page's ECC latency.
        """
        arr = np.asarray(rbers, dtype=np.float64)
        size = arr.size
        if size == 0:
            return self._min
        if size == 1:
            # max() of one element is that element; skip the reduction.
            return self.decode_ms(float(arr[0]))
        return self.decode_ms(float(arr.max()))

    def decode_ms_list(self, rbers: "list[float]") -> Ms:
        """Scalar fast path of :meth:`decode_ms_for_subpages` for python
        float lists (the no-numpy read-pricing path).

        ``max()`` over python floats returns the same IEEE double
        ``float(np.asarray(rbers).max())`` would, so the result is
        bit-identical to the array form for the same inputs.
        """
        n = len(rbers)
        if n == 0:
            return self._min
        rber = rbers[0] if n == 1 else max(rbers)
        lam = rber * self._cw_bits
        frac = min(1.0, lam / self._t)
        return self._min + self._span * frac

    def decode_ms_many(self, rbers: "np.ndarray | list[float]") -> np.ndarray:
        """Vectorised :meth:`decode_ms` over per-read RBERs.

        Elementwise float64 arithmetic, so every element equals the
        scalar :meth:`decode_ms` of the same input exactly (used by the
        batch latency-accounting paths; tests assert the equivalence).
        """
        arr = np.asarray(rbers, dtype=np.float64)
        if arr.size and float(arr.min()) < 0:
            raise ConfigError("negative RBER in batch")
        lam = arr * self._cw_bits
        frac = np.minimum(1.0, lam / self._t)
        return self._min + self._span * frac

    def expected_raw_errors(self, rber: float, nbytes: Bytes) -> float:
        """Expected raw bit errors when reading ``nbytes`` at ``rber``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        return rber * nbytes * 8

    def uncorrectable_probability(self, rber: float) -> float:
        """Probability at least one codeword of a 4 KiB subpage fails."""
        per_cw = self.code.failure_probability(rber)
        ncw = self.code.codewords_for(SUBPAGE_BYTES)
        return 1.0 - (1.0 - per_cw) ** ncw

    def uncorrectable_probability_for_subpages(
            self, rbers: "np.ndarray | list[float]") -> float:
        """Failure probability of a page read covering several subpages.

        Mirrors :meth:`decode_ms_for_subpages`: the worst (highest-RBER)
        subpage dominates, so the read fails when *its* codewords exceed
        the correction capability.  Drives the fault-injection read-retry
        ladder (:mod:`repro.faults`)."""
        arr = np.asarray(rbers, dtype=np.float64)
        if arr.size == 0:
            return 0.0
        return self.uncorrectable_probability(float(arr.max()))
