"""Raw bit error rate (RBER) model.

The model has two ingredients:

1. a **base curve** for conventionally-programmed cells that grows as a
   power law of the block's P/E count (wear-out), anchored at the fresh
   RBER and the measured reference point (2.8e-4 at 4000 P/E), and

2. **program-disturb increments** added per partial-program pass: every
   pass adds ``disturb_unit(pe)`` to the RBER of in-page cells that were
   already programmed, and ``neighbor_disturb_ratio`` times that amount to
   cells of the two adjacent pages.

``disturb_unit`` is calibrated so that a subpage that suffered the full
budget of partial passes (``max_page_programs - 1`` of them, i.e. the
MGA-style fully-packed page) lands on the measured partial-programming
curve (3.8e-4 at 4000 P/E).  The unit scales with the base curve, so the
conventional/partial gap widens with wear exactly as Figure 2 shows.
"""

from __future__ import annotations

import numpy as np

from ..config import ReliabilityConfig
from ..errors import ConfigError
from ..units import PeCycles


class RberModel:
    """RBER as a function of wear, cell mode and disturb history."""

    def __init__(self, config: ReliabilityConfig):
        config.validate()
        self.config = config
        ref = float(config.reference_pe_cycles)
        self._ref_pe = ref
        self._fresh = config.rber_fresh
        self._span = config.rber_conventional_ref - config.rber_fresh
        self._alpha = config.pe_exponent
        passes = max(1, config.max_page_programs - 1)
        self._unit_ref = (config.rber_partial_ref - config.rber_conventional_ref) / passes
        if self._unit_ref < 0:
            raise ConfigError("partial RBER reference below conventional reference")
        # Replays evaluate the curves at a handful of distinct P/E counts
        # millions of times; memoising the exact returned float is
        # byte-identical to recomputation.
        self._base_cache: dict[tuple[float, bool], float] = {}
        self._unit_cache: dict[float, float] = {}

    # -- base curves -----------------------------------------------------

    def base(self, pe: PeCycles, slc: bool = True) -> float:
        """Conventional-programming RBER at ``pe`` P/E cycles."""
        cached = self._base_cache.get((pe, slc))
        if cached is not None:
            return cached
        if pe < 0:
            raise ConfigError(f"negative P/E count {pe}")
        value = self._fresh + self._span * (pe / self._ref_pe) ** self._alpha
        if not slc:
            value *= self.config.mlc_rber_factor
        self._base_cache[(pe, slc)] = value
        return value

    def disturb_unit(self, pe: PeCycles) -> float:
        """In-page disturb RBER increment of one partial-program pass.

        Scales with the base curve so the conventional/partial gap grows
        with wear (Section 2.2: "the bit error rate difference becomes
        more pronounced as the P/E cycle is getting large").
        """
        cached = self._unit_cache.get(pe)
        if cached is not None:
            return cached
        ref_base = self.base(self._ref_pe, slc=True)
        value = self._unit_ref * (self.base(pe, slc=True) / ref_base)
        self._unit_cache[pe] = value
        return value

    def partial_typical(self, pe: PeCycles) -> float:
        """RBER of a subpage that received the full partial-program budget.

        This is the "partial programming" curve of Figure 2.
        """
        passes = max(1, self.config.max_page_programs - 1)
        return self.base(pe, slc=True) + passes * self.disturb_unit(pe)

    # -- per-subpage evaluation -------------------------------------------

    def subpage_rber(self, pe: PeCycles, slc: bool, n_in: int = 0, n_nb: int = 0) -> float:
        """RBER of one subpage given its disturb history.

        Parameters
        ----------
        pe:
            Effective P/E count of the hosting block
            (``initial_pe_cycles + erase_count``).
        slc:
            Cell mode of the hosting block.
        n_in, n_nb:
            Counts of in-page and neighbouring-page disturb events the
            subpage absorbed since it was programmed.
        """
        unit = self.disturb_unit(pe)
        extra = n_in * unit + n_nb * unit * self.config.neighbor_disturb_ratio
        return self.base(pe, slc) + extra

    def subpage_rber_array(
        self,
        pe: float,
        slc: bool,
        n_in: np.ndarray,
        n_nb: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`subpage_rber` over disturb-count arrays."""
        unit = self.disturb_unit(pe)
        ratio = self.config.neighbor_disturb_ratio
        return self.base(pe, slc) + unit * (
            n_in.astype(np.float64) + ratio * n_nb.astype(np.float64)
        )

    def rber_many(
        self,
        pe: float,
        slc: bool,
        n_in: np.ndarray,
        n_nb: np.ndarray,
        read_disturb: float = 0.0,
    ) -> np.ndarray:
        """Array RBER kernel: price many subpages of one block at once.

        The disturb-count arrays come straight off the flat
        :class:`~repro.nand.state.RegionState` counters (a GC drain span,
        a flush span), so a whole relocation prices in one call.  The
        expression is *operation-for-operation* the scalar fast path of
        ``FlashArray.subpage_rbers`` — ``base + unit * (n_in + ratio *
        n_nb)``, then ``+ read_disturb`` — over float64, so every element
        is bit-identical to the per-slot scalar evaluation (int64 disturb
        counts convert to float64 exactly).  ``read_disturb`` is the
        caller's precomputed ``read_count * ratio * unit`` term.
        """
        unit = self.disturb_unit(pe)
        ratio = self.config.neighbor_disturb_ratio
        rbers = self.base(pe, slc) + unit * (
            n_in.astype(np.float64) + ratio * n_nb.astype(np.float64)
        )
        if read_disturb:
            rbers = rbers + read_disturb
        return rbers

    # -- figure 2 helper ---------------------------------------------------

    def curve(self, pe_values: "list[float] | np.ndarray") -> dict[str, np.ndarray]:
        """Conventional and partial RBER curves over ``pe_values`` (Fig. 2)."""
        pes = np.asarray(pe_values, dtype=np.float64)
        conventional = np.array([self.base(p, slc=True) for p in pes],
                                dtype=np.float64)
        partial = np.array([self.partial_typical(p) for p in pes],
                           dtype=np.float64)
        return {"pe": pes, "conventional": conventional, "partial": partial}
