"""Reliability substrate: raw-bit-error-rate and ECC models.

Calibrated to the measurements the paper relies on (Section 2.2 / Figure 2,
quoting Zhang et al. FAST'16): conventional programming shows RBER 2.8e-4
at 4000 P/E cycles while partial programming shows 3.8e-4, with the gap
widening as wear grows.  The ECC model follows the Table 2 BCH settings
(decode latency between 0.0005 ms and 0.0968 ms depending on raw errors).
"""

from .rber import RberModel
from .bch import BCHCode
from .ecc import EccModel

__all__ = ["RberModel", "BCHCode", "EccModel"]
