"""Analytic Bose-Chaudhuri-Hocquenghem (BCH) code model.

Following the ISSCC'06 embedded-BCH design the paper cites, data is
protected per 512-byte codeword with a correction capability of ``t`` bits.
We model the code analytically: expected raw errors per codeword under a
given RBER, and the probability that a codeword exceeds ``t`` errors
(decode failure, triggering a read retry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class BCHCode:
    """A ``(n, k, t)`` binary BCH code over 512-byte payload sectors."""

    payload_bytes: int = 512
    t: int = 5

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ConfigError("payload_bytes must be positive")
        if self.t <= 0:
            raise ConfigError("correction capability t must be positive")

    @property
    def payload_bits(self) -> int:
        """Data bits per codeword."""
        return self.payload_bytes * 8

    @property
    def parity_bits(self) -> int:
        """Approximate parity bits: ``m * t`` with ``m = ceil(log2(n+1))``."""
        m = math.ceil(math.log2(self.payload_bits + 1))
        return m * self.t

    @property
    def codeword_bits(self) -> int:
        """Total transmitted bits per codeword."""
        return self.payload_bits + self.parity_bits

    def codewords_for(self, nbytes: int) -> int:
        """Codewords needed to protect ``nbytes`` of payload."""
        if nbytes < 0:
            raise ConfigError(f"negative payload size {nbytes}")
        return -(-nbytes // self.payload_bytes)

    def expected_errors(self, rber: float) -> float:
        """Expected raw bit errors in one codeword at the given RBER."""
        if rber < 0:
            raise ConfigError(f"negative RBER {rber}")
        return rber * self.codeword_bits

    def failure_probability(self, rber: float) -> float:
        """Probability that raw errors exceed ``t`` (uncorrectable codeword).

        Exact binomial tail; computed in log space to stay stable for the
        tiny probabilities typical of healthy flash.
        """
        if rber < 0:
            raise ConfigError(f"negative RBER {rber}")
        if rber == 0.0:
            return 0.0
        if rber >= 1.0:
            return 1.0
        n = self.codeword_bits
        # P[X > t] = 1 - sum_{i=0..t} C(n,i) p^i (1-p)^(n-i)
        log_p = math.log(rber)
        log_q = math.log1p(-rber)
        total = 0.0
        for i in range(self.t + 1):
            log_term = (
                math.lgamma(n + 1) - math.lgamma(i + 1) - math.lgamma(n - i + 1)
                + i * log_p + (n - i) * log_q
            )
            total += math.exp(log_term)
        return max(0.0, 1.0 - total)

    def correctable(self, raw_errors: int) -> bool:
        """Whether a codeword with ``raw_errors`` flipped bits decodes."""
        return raw_errors <= self.t
