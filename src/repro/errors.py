"""Exception hierarchy for the repro SSD simulator.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Subclasses distinguish configuration problems,
physical-constraint violations of the NAND model, FTL-level inconsistencies,
and simulation misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class FlashError(ReproError):
    """Violation of a NAND-flash physical constraint."""


class ProgramOrderError(FlashError):
    """Pages inside a block must be programmed in sequential order."""


class PartialProgramLimitError(FlashError):
    """A page exceeded the manufacturer limit of program operations."""


class SubpageStateError(FlashError):
    """A subpage operation conflicted with its current state."""


class EraseError(FlashError):
    """An erase was issued against a block in an invalid state."""


class AllocationError(ReproError):
    """The allocator could not satisfy a block or page request."""


class OutOfSpaceError(AllocationError):
    """The device ran out of free blocks even after garbage collection."""


class MappingError(ReproError):
    """Inconsistent state in a logical-to-physical mapping table."""


class TraceError(ReproError):
    """A trace file or trace specification could not be interpreted."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation engine."""


class ExperimentError(ReproError):
    """An experiment was configured or invoked incorrectly."""
