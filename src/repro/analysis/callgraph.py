"""Project-wide symbol table and call graph for interprocedural rules.

The per-file rules of PR 3 see one module at a time; the unit/dimension
checker (:mod:`repro.analysis.units_flow`) needs to follow a value from a
call site into the callee's parameters and back out of its ``return``.
This module builds the cross-module index that makes that possible, with
nothing but ``ast``:

* :class:`FunctionInfo` — one function or method: its parameters, its
  annotations, its body, and where it lives;
* :class:`ClassInfo` — methods, base-class names, and the inferred
  classes of ``self.<attr>`` instance attributes (from ``self.x = Cls()``
  assignments), so ``self.alloc.alloc_page(...)`` resolves through the
  attribute;
* :class:`ModuleInfo` — import aliases (``import numpy as np``,
  ``from ..nand.block import Block``) resolved to package-relative
  module paths;
* :class:`ProjectIndex` — the whole tree, plus :meth:`resolve_call`,
  which maps an ``ast.Call`` to the :class:`FunctionInfo` it invokes
  (or ``None`` — resolution is deliberately conservative: an ambiguous
  name resolves to nothing rather than to a guess).

Resolution handles the shapes that occur in this codebase: direct names,
``module.func``, ``self.method`` (including methods inherited from a
base class), ``self.attr.method`` / ``var.method`` through tracked
instance types, and ``Cls(...)`` constructors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .core import SourceFile


@dataclass
class FunctionInfo:
    """One function or method, as the dataflow layer sees it."""

    relpath: str                 #: module path relative to the linted root
    qualname: str                #: ``relpath::Class.method`` / ``relpath::func``
    name: str                    #: bare function name
    cls: "ClassInfo | None"      #: owning class, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Positional-or-keyword parameter names, ``self``/``cls`` stripped.
    params: list[str] = field(default_factory=list)
    #: Parameter annotation nodes aligned with :attr:`params` (None = bare).
    param_annotations: list[ast.expr | None] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition and what is known about its instances."""

    relpath: str
    name: str
    node: ast.ClassDef
    #: Base-class *names* as written (``BaseFTL``, ``abc.ABC``, …).
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr> = Cls(...)`` assignments seen anywhere in the class:
    #: attribute name -> class name as written at the construction site.
    attr_class_names: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module symbols and import aliases."""

    relpath: str
    #: ``import x.y as z`` -> {"z": "x.y"}; plain ``import x.y`` -> {"x": "x"}.
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from mod import name as alias`` -> {"alias": (resolved_module, "name")}.
    #: ``resolved_module`` is a package-relative module key (see
    #: :func:`_resolve_module`), possibly pointing outside the tree.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _module_key(relpath: str) -> str:
    """Dotted package-relative key of a module path.

    ``ftl/mapping.py`` -> ``ftl.mapping``; ``ftl/__init__.py`` -> ``ftl``;
    ``units.py`` -> ``units``.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_module(importer_relpath: str, module: str | None, level: int) -> str:
    """Package-relative key of an imported module.

    Relative imports (``from ..config import X`` inside ``ftl/base.py``)
    resolve against the importer's package; absolute imports of the
    ``repro`` package itself are normalised by stripping the leading
    ``repro.`` so fixtures and the installed tree resolve alike.  Any
    other absolute import (``numpy``) keeps its dotted name and simply
    never matches a module in the index.
    """
    mod = module or ""
    if level == 0:
        if mod == "repro":
            return ""
        if mod.startswith("repro."):
            return mod[len("repro."):]
        return mod
    pkg_parts = importer_relpath.split("/")[:-1]  # package of the importer
    up = level - 1
    base = pkg_parts[:len(pkg_parts) - up] if up else pkg_parts
    return ".".join([p for p in base if p] + ([mod] if mod else []))


def _param_lists(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 is_method: bool) -> tuple[list[str], list[ast.expr | None]]:
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    if is_method and ordered and ordered[0].arg in ("self", "cls"):
        ordered = ordered[1:]
    names = [a.arg for a in ordered]
    anns: list[ast.expr | None] = [a.annotation for a in ordered]
    for kw in args.kwonlyargs:
        names.append(kw.arg)
        anns.append(kw.annotation)
    return names, anns


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] style bases
        return _base_name(expr.value)
    return None


def annotation_class_name(node: ast.expr | None) -> str | None:
    """Class name an annotation pins a value to, if any.

    Handles the shapes used in this codebase: ``Block``, ``"Block"``
    (string annotations under ``from __future__ import annotations``),
    ``Block | None`` and ``Optional[Block]``.  Unions of two real
    classes, containers, and anything fancier yield ``None`` — the
    effect pass would rather drop a call edge than guess one.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        sides = [s for s in (node.left, node.right)
                 if not (isinstance(s, ast.Constant) and s.value is None)]
        if len(sides) == 1:
            return annotation_class_name(sides[0])
        return None
    if isinstance(node, ast.Subscript):
        if (annotation_class_name(node.value) == "Optional"
                and not isinstance(node.slice, ast.Tuple)):
            return annotation_class_name(node.slice)
        return None
    return None


class ProjectIndex:
    """Symbol table + call graph over one linted tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}          # by relpath
        self.modules_by_key: dict[str, ModuleInfo] = {}   # by dotted key
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, FunctionInfo] = {}      # by qualname

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, sources: Mapping[str, SourceFile]) -> "ProjectIndex":
        index = cls()
        for relpath in sorted(sources):
            index._index_module(sources[relpath])
        return index

    def _index_module(self, src: SourceFile) -> None:
        mod = ModuleInfo(relpath=src.relpath)
        self.modules[src.relpath] = mod
        self.modules_by_key[_module_key(src.relpath)] = mod

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.import_aliases[local] = _resolve_module(
                        src.relpath, target, 0)
            elif isinstance(node, ast.ImportFrom):
                origin = _resolve_module(src.relpath, node.module, node.level)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.from_imports[alias.asname or alias.name] = (
                        origin, alias.name)

        for stmt in src.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[stmt.name] = self._make_function(
                    src.relpath, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, src.relpath, stmt)

    def _index_class(self, mod: ModuleInfo, relpath: str,
                     node: ast.ClassDef) -> None:
        info = ClassInfo(relpath=relpath, name=node.name, node=node)
        info.base_names = [b for b in map(_base_name, node.bases)
                           if b is not None]
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._make_function(
                    relpath, stmt, info)
        # self.<attr> = Cls(...) anywhere inside the class body gives the
        # attribute a class; conditional rebinding to a different class
        # (e.g. ``x if cond else None``) simply leaves no entry.
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Assign)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)):
                continue
            for target in sub.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    info.attr_class_names[target.attr] = sub.value.func.id
        mod.classes[node.name] = info
        self.classes_by_name.setdefault(node.name, []).append(info)

    def _make_function(self, relpath: str,
                       node: ast.FunctionDef | ast.AsyncFunctionDef,
                       cls: ClassInfo | None) -> FunctionInfo:
        params, anns = _param_lists(node, cls is not None)
        qual = (f"{relpath}::{cls.name}.{node.name}" if cls is not None
                else f"{relpath}::{node.name}")
        fn = FunctionInfo(relpath=relpath, qualname=qual, name=node.name,
                          cls=cls, node=node, params=params,
                          param_annotations=anns)
        self.functions[qual] = fn
        return fn

    # -- lookup ------------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qual in sorted(self.functions):
            yield self.functions[qual]

    def resolve_class_name(self, name: str,
                           module: ModuleInfo) -> ClassInfo | None:
        """A class referred to by ``name`` inside ``module``, if unambiguous."""
        local = module.classes.get(name)
        if local is not None:
            return local
        imp = module.from_imports.get(name)
        if imp is not None:
            origin, original = imp
            target = self.modules_by_key.get(origin)
            if target is not None:
                found = target.classes.get(original)
                if found is not None:
                    return found
            # Re-exported through a package __init__: fall through to the
            # global registry under the original name.
            name = original
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def class_method(self, cls: ClassInfo, name: str,
                     _depth: int = 0) -> FunctionInfo | None:
        """``name`` on ``cls`` or (breadth-first) on its base classes."""
        if _depth > 8:
            return None
        found = cls.methods.get(name)
        if found is not None:
            return found
        module = self.modules.get(cls.relpath)
        if module is None:
            return None
        for base_name in cls.base_names:
            base = self.resolve_class_name(base_name, module)
            if base is not None and base is not cls:
                found = self.class_method(base, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def class_attr_type(self, cls: ClassInfo, attr: str,
                        _depth: int = 0) -> ClassInfo | None:
        """Class of ``self.<attr>`` instances, walking base classes."""
        if _depth > 8:
            return None
        module = self.modules.get(cls.relpath)
        cls_name = cls.attr_class_names.get(attr)
        if cls_name is not None and module is not None:
            return self.resolve_class_name(cls_name, module)
        if module is not None:
            for base_name in cls.base_names:
                base = self.resolve_class_name(base_name, module)
                if base is not None and base is not cls:
                    found = self.class_attr_type(base, attr, _depth + 1)
                    if found is not None:
                        return found
        return None

    def resolve_function_name(self, name: str,
                              module: ModuleInfo) -> FunctionInfo | None:
        """A module-level function referred to by ``name``."""
        local = module.functions.get(name)
        if local is not None:
            return local
        imp = module.from_imports.get(name)
        if imp is not None:
            origin, original = imp
            target = self.modules_by_key.get(origin)
            if target is not None:
                return target.functions.get(original)
        return None

    def imported_origin(self, name: str,
                        module: ModuleInfo) -> tuple[str, str] | None:
        """``(origin_module_key, original_name)`` for a from-import."""
        return module.from_imports.get(name)

    def resolve_call(self, call: ast.Call, module: ModuleInfo,
                     enclosing_class: ClassInfo | None,
                     local_types: Mapping[str, ClassInfo] | None = None,
                     ) -> FunctionInfo | None:
        """The :class:`FunctionInfo` an ``ast.Call`` invokes, if resolvable.

        ``local_types`` maps local variable names to instance classes
        (maintained by the caller's flow analysis).
        """
        func = call.func
        if isinstance(func, ast.Name):
            fn = self.resolve_function_name(func.id, module)
            if fn is not None:
                return fn
            # Cls(...) constructor -> __init__ (for argument checking).
            cls = self.resolve_class_name(func.id, module)
            if cls is not None:
                return self.class_method(cls, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        method = func.attr
        # self.method(...) / cls.method(...)
        if (isinstance(owner, ast.Name) and owner.id in ("self", "cls")
                and enclosing_class is not None):
            return self.class_method(enclosing_class, method)
        # self.attr.method(...)
        if (isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self" and enclosing_class is not None):
            attr_cls = self.class_attr_type(enclosing_class, owner.attr)
            if attr_cls is not None:
                return self.class_method(attr_cls, method)
            return None
        if isinstance(owner, ast.Name):
            # var.method(...) through a tracked instance type
            if local_types is not None:
                var_cls = local_types.get(owner.id)
                if var_cls is not None:
                    return self.class_method(var_cls, method)
            # module.func(...)
            alias = module.import_aliases.get(owner.id)
            if alias is not None:
                target = self.modules_by_key.get(alias)
                if target is not None:
                    fn = target.functions.get(method)
                    if fn is not None:
                        return fn
            # ClassName.method(...) (unbound / classmethod style)
            cls = self.resolve_class_name(owner.id, module)
            if cls is not None:
                return self.class_method(cls, method)
        return None

    def constructed_class(self, value: ast.expr,
                          module: ModuleInfo) -> ClassInfo | None:
        """Class of ``Cls(...)`` expressions (for instance-type tracking)."""
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)):
            return self.resolve_class_name(value.func.id, module)
        return None

    def param_types(self, fn: FunctionInfo,
                    module: ModuleInfo) -> dict[str, ClassInfo]:
        """Parameter name -> instance class, from ``p: Cls`` annotations.

        Seeds the ``local_types`` mapping of :meth:`resolve_call` so
        ``block.retire()`` resolves inside a function that takes
        ``block: Block`` — the effect/exception pass needs those edges
        to propagate raise/write facts through free functions.
        """
        out: dict[str, ClassInfo] = {}
        for name, ann in zip(fn.params, fn.param_annotations):
            cls_name = annotation_class_name(ann)
            if cls_name is None:
                continue
            cls = self.resolve_class_name(cls_name, module)
            if cls is not None:
                out[name] = cls
        return out
