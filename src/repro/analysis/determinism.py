"""Determinism rules: D001 (randomness), D002 (wall clock), D003 (set order).

The parallel fan-out and the result cache are only sound because a
simulation cell is a pure function of its inputs (see ``docs/CACHING.md``).
These rules flag the three classic ways SSDsim-style simulators lose that
property silently: an unseeded random source, host wall time leaking into
modelled quantities, and iteration order of hash-based containers feeding
simulation state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Rule, SourceFile, Violation, dotted_name

# --------------------------------------------------------------------------
# D001 — randomness outside repro/rng.py


#: Modules whose import anywhere outside ``rng.py`` is a finding.
_RANDOM_MODULES = frozenset({"random", "uuid"})
#: Attribute-chain prefixes that reach an unseeded random source.
_RANDOM_PREFIXES = ("random.", "uuid.", "np.random.", "numpy.random.")
#: Exact dotted names that are findings on their own.
_RANDOM_NAMES = frozenset({"os.urandom"})
#: ``numpy.random`` generator constructors: building one of these outside
#: ``rng.py`` creates a random stream the seed-derivation scheme cannot
#: see, even when a seed is passed at the call site.
_NUMPY_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class RandomnessRule(Rule):
    """D001: all randomness must flow through ``repro.rng``.

    ``make_rng(seed, key)`` derives independent, reproducible streams;
    ``np.random.default_rng()`` (no seed), the ``random`` module,
    ``os.urandom`` and ``uuid`` do not.  Constructing a
    ``numpy.random`` generator (``default_rng``/``Generator``/
    ``RandomState``/bit generators) outside ``rng.py`` is flagged even
    with an explicit seed: a stream built outside the derivation scheme
    can collide with a derived stream or drift from the experiment key.
    One stray source makes two replays of the same cell disagree and
    poisons every cached artifact.
    """

    id = "D001"
    title = "randomness outside repro/rng.py"

    #: Files allowed to touch the raw generators.
    ALLOWED = frozenset({"rng.py"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        if src.relpath in self.ALLOWED:
            return
        numpy_aliases, rng_ctor_names = self._numpy_bindings(src.tree)
        rng_prefixes = tuple(f"{a}.random." for a in numpy_aliases)
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in rng_ctor_names):
                yield self._v(
                    src, node,
                    f"construction of numpy.random generator "
                    f"{rng_ctor_names[node.func.id]!r}")
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _RANDOM_MODULES or alias.name == "numpy.random":
                        yield self._v(src, node, f"import of {alias.name!r}")
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                top = mod.split(".")[0]
                if top in _RANDOM_MODULES or mod == "numpy.random":
                    yield self._v(src, node, f"import from {mod!r}")
                elif mod == "os" and any(a.name == "urandom" for a in node.names):
                    yield self._v(src, node, "import of os.urandom")
                elif mod == "numpy" and any(a.name == "random" for a in node.names):
                    yield self._v(src, node, "import of numpy.random")
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                if (name in _RANDOM_NAMES or name.startswith(_RANDOM_PREFIXES)
                        or name.startswith(rng_prefixes)):
                    yield self._v(src, node, f"use of {name!r}")

    @staticmethod
    def _numpy_bindings(
            tree: ast.Module) -> "tuple[frozenset[str], dict[str, str]]":
        """Numpy-derived local bindings the fixed prefixes cannot cover.

        Returns ``(aliases, ctor_names)``: names bound to the numpy
        package (``import numpy as X``), so ``X.random.Generator(...)``
        is caught under any alias, and local names bound to a
        ``numpy.random`` generator constructor (``from numpy.random
        import default_rng as mk``) mapped back to the constructor they
        alias, so the *call* is flagged too, not just the import line.
        """
        aliases: set[str] = set()
        ctor_names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "") == "numpy.random":
                    for alias in node.names:
                        if alias.name in _NUMPY_RNG_CONSTRUCTORS:
                            ctor_names[alias.asname or alias.name] = alias.name
        return frozenset(aliases), ctor_names

    def _v(self, src: SourceFile, node: ast.AST, what: str) -> Violation:
        return Violation(
            self.id, src.relpath, node.lineno, node.col_offset,
            f"{what}: all randomness must flow through "
            f"repro.rng.make_rng/spawn so replays stay reproducible")


# --------------------------------------------------------------------------
# D002 — wall clock outside the diagnostic allowlist


#: Dotted names that read the host clock.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.date.today",
})
#: ``from time import X`` names that read the host clock.
_WALL_CLOCK_FROM_TIME = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})


class WallClockRule(Rule):
    """D002: host wall time only in declared diagnostic paths.

    Modelled latencies come from ``TimingConfig`` and the ECC model; any
    other ``time.*`` read either leaks nondeterminism into results or
    tempts someone to mix host seconds with modelled milliseconds.  The
    allowlist names the modules whose *diagnostic* wall-time bookkeeping
    is deliberate and excluded from ``deterministic_dict()``.
    """

    id = "D002"
    title = "wall clock outside the diagnostic allowlist"

    #: Modules with sanctioned wall-time diagnostics: the bench harness,
    #: the simulators' ``wall_seconds`` bookkeeping (direct and front-end
    #: replay paths), and the GC victim policies' ``scan_seconds``
    #: host-cost counter.
    ALLOWED = frozenset({"bench.py", "sim/simulator.py",
                         "frontend/simulate.py", "ftl/victim.py"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        if src.relpath in self.ALLOWED:
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "time":
                    bad = [a.name for a in node.names
                           if a.name in _WALL_CLOCK_FROM_TIME]
                    if bad:
                        yield self._v(src, node, f"import of time.{bad[0]}")
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in _WALL_CLOCK:
                    yield self._v(src, node, f"call chain {name!r}")

    def _v(self, src: SourceFile, node: ast.AST, what: str) -> Violation:
        return Violation(
            self.id, src.relpath, node.lineno, node.col_offset,
            f"{what}: host wall time is allowed only in "
            f"{sorted(self.ALLOWED)} — modelled latencies must come from "
            f"TimingConfig, diagnostics must stay out of deterministic results")


# --------------------------------------------------------------------------
# D003 — iteration order of sets feeding simulation state


def _is_set_construct(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_set_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Name) and node.id in (
        "set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet")


class SetIterationRule(Rule):
    """D003: no order-dependent consumption of sets in simulation state.

    ``set`` iteration order depends on insertion history and hash
    salting-adjacent details; two code paths that build the same set
    differently can then diverge in victim choice, page order, anything.
    Inside the simulation-state packages, ``for x in s`` and
    ``list(s)``/``tuple(s)`` over a set must go through ``sorted(...)``
    (order-independent reductions — ``min``/``max``/``sum``/``len``/
    membership — are fine and not flagged).
    """

    id = "D003"
    title = "unordered set iteration in simulation state"

    #: Packages whose state feeds results; first path component.
    TARGET_DIRS = frozenset({"ftl", "nand", "sim", "core", "frontend"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        parts = src.relpath.split("/")
        if len(parts) < 2 or parts[0] not in self.TARGET_DIRS:
            return
        set_locals, set_attrs = self._collect_set_names(src.tree)

        def is_setish(node: ast.AST) -> bool:
            if _is_set_construct(node):
                return True
            if isinstance(node, ast.Name) and node.id in set_locals:
                return True
            if isinstance(node, ast.Attribute) and node.attr in set_attrs:
                return True
            return False

        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_setish(node.iter):
                yield self._v(src, node, "for-loop over a set")
            elif isinstance(node, ast.comprehension) and is_setish(node.iter):
                # Comprehensions carry no lineno; report via the iter node.
                yield self._v(src, node.iter, "comprehension over a set")
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1 and not node.keywords
                    and is_setish(node.args[0])):
                yield self._v(src, node, f"{node.func.id}() over a set")

    @staticmethod
    def _collect_set_names(tree: ast.Module) -> tuple[set[str], set[str]]:
        """Names statically known to hold sets: locals assigned a set
        construct, and ``self.X`` attributes annotated or assigned one."""
        set_locals: set[str] = set()
        set_attrs: set[str] = set()

        def note_target(target: ast.AST) -> None:
            if isinstance(target, ast.Name):
                set_locals.add(target.id)
            elif isinstance(target, ast.Attribute):
                set_attrs.add(target.attr)

        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if _is_set_annotation(node.annotation):
                    note_target(node.target)
                elif node.value is not None and _is_set_construct(node.value):
                    note_target(node.target)
            elif isinstance(node, ast.Assign) and _is_set_construct(node.value):
                for target in node.targets:
                    note_target(target)
        return set_locals, set_attrs

    def _v(self, src: SourceFile, node: ast.AST, what: str) -> Violation:
        return Violation(
            self.id, src.relpath, node.lineno, node.col_offset,
            f"{what}: set order is not part of the simulation contract — "
            f"wrap in sorted(...) before it can feed ordered state")
