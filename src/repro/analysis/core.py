"""Engine of the ``repro-ssd lint`` static analyzer.

The simulator's headline guarantees — bit-identical parallel replay, a
sound content-addressed result cache, and modelled latencies that never
mix with host wall time — are *conventions* unless something checks
them.  This package turns the conventions into AST-level rules that run
over ``src/repro`` in CI (see :mod:`repro.analysis.determinism`,
:mod:`repro.analysis.schema`, :mod:`repro.analysis.config_literals` for
the rules themselves).

The engine here is deliberately small:

* :class:`SourceFile` — one parsed module plus its suppression comments
  (``# repro-lint: disable=RULE`` on the offending line,
  ``# repro-lint: disable-file=RULE`` anywhere in the file);
* :class:`Rule` — base class with per-file and per-project hooks;
* :func:`run_lint` — walk a package tree, run every rule, drop
  suppressed findings, and fingerprint the survivors so the baseline
  file can match them across unrelated line-number drift.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro-lint: disable=D001`` / ``disable=D001,S002`` on a line
#: suppresses those rules for violations reported *on that line*.
_SUPPRESS_LINE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)")
#: ``# repro-lint: disable-file=D003`` anywhere suppresses for the file.
_SUPPRESS_FILE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)")

#: Rule id used for files the parser rejects.
PARSE_ERROR_RULE = "E999"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message.

    ``fingerprint`` is filled in by the engine — a short hash of the
    rule, the file, and the *text* of the offending line (plus an
    occurrence index for duplicated lines), so baseline entries keep
    matching when unrelated edits shift line numbers.
    """

    rule: str
    path: str  # posix path relative to the linted package root
    line: int  # 1-based
    col: int  # 0-based, as in ``ast`` node offsets
    message: str
    fingerprint: str = ""

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class SourceFile:
    """A parsed module and everything rules need to inspect it."""

    path: Path
    relpath: str
    text: str
    lines: list[str]
    tree: ast.Module
    line_suppressions: dict[int, set[str]]
    file_suppressions: set[str]

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        """Parse ``path``; raises :class:`SyntaxError` on broken source."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        lines = text.splitlines()
        line_supp: dict[int, set[str]] = {}
        file_supp: set[str] = set()
        for lineno, line in enumerate(lines, start=1):
            if "repro-lint" not in line:
                continue
            m = _SUPPRESS_LINE.search(line)
            if m:
                ids = {part.strip() for part in m.group(1).split(",")}
                line_supp.setdefault(lineno, set()).update(ids)
            m = _SUPPRESS_FILE.search(line)
            if m:
                file_supp.update(part.strip() for part in m.group(1).split(","))
        return cls(path=path, relpath=path.relative_to(root).as_posix(),
                   text=text, lines=lines, tree=tree,
                   line_suppressions=line_supp, file_suppressions=file_supp)

    def suppressed(self, violation: Violation) -> bool:
        """Whether a suppression comment covers ``violation``."""
        if violation.rule in self.file_suppressions:
            return True
        return violation.rule in self.line_suppressions.get(violation.line, ())

    def line_text(self, lineno: int) -> str:
        """Source text of a 1-based line ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass(frozen=True, eq=False)
class ProjectContext:
    """Inputs for rules that look at the tree as a whole (S001, U-rules).

    ``eq=False`` keeps identity hashing so interprocedural rules can memoize
    one whole-tree analysis per run in a ``WeakKeyDictionary`` keyed on the
    context (the three U-rules share a single dataflow pass).
    """

    #: Directory being linted — normally ``src/repro``.
    package_root: Path
    #: Repository root holding ``results/schema_snapshot.json`` and the
    #: baseline file; ``None`` when linting a bare directory (fixtures).
    repo_root: Path | None = None
    #: Every successfully parsed module, keyed by relpath — the input to
    #: project-wide dataflow (empty for rules that never look at it).
    sources: dict[str, SourceFile] = field(default_factory=dict)

    @property
    def snapshot_path(self) -> Path | None:
        """Location of the committed schema snapshot, if resolvable."""
        if self.repo_root is None:
            return None
        return self.repo_root / "results" / "schema_snapshot.json"


class Rule:
    """Base class: subclasses override one of the two hooks."""

    id: str = ""
    title: str = ""

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        """Per-file findings (most rules)."""
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        """Whole-tree findings (schema drift)."""
        return iter(())


@dataclass
class LintResult:
    """Everything one analyzer run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    def counts_by_rule(self) -> dict[str, int]:
        """``{rule_id: violation count}`` over all findings."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    """Stable 16-hex id of one violation.

    Keyed on the offending line's *text*, not its number, so inserting
    unrelated lines above does not orphan a baseline entry; duplicate
    lines are disambiguated by their occurrence index.
    """
    blob = f"{rule}\x00{path}\x00{line_text.strip()}\x00{occurrence}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _assign_fingerprints(violations: list[Violation],
                         sources: dict[str, SourceFile]) -> list[Violation]:
    seen: dict[tuple[str, str, str], int] = {}
    out = []
    for v in violations:
        src = sources.get(v.path)
        text = src.line_text(v.line) if src is not None else ""
        key = (v.rule, v.path, text.strip())
        occ = seen.get(key, 0)
        seen[key] = occ + 1
        out.append(replace(v, fingerprint=fingerprint(v.rule, v.path, text, occ)))
    return out


def run_lint(package_root: "Path | str",
             repo_root: "Path | str | None" = None,
             rules: "Sequence[Rule] | None" = None,
             select: "Iterable[str] | None" = None,
             only: "set[str] | None" = None) -> LintResult:
    """Run the analyzer over one package tree.

    Parameters
    ----------
    package_root:
        Directory whose ``*.py`` files are checked; violation paths are
        relative to it.
    repo_root:
        Repository root (for the schema snapshot).  ``None`` disables
        project-level rules that need committed state.
    rules:
        Rule instances to run; defaults to :data:`repro.analysis.ALL_RULES`.
    select:
        Optional whitelist of rule ids (``U001``) and/or family prefixes
        (``U`` selects every ``U``-rule, ``S`` every ``S``-rule).
    only:
        Optional set of package-root-relative posix paths to *report* on
        (the ``--changed-only`` scope).  Every file is still parsed and
        fed to project-wide rules — interprocedural dataflow must see
        the whole tree — but per-file rules skip unlisted files and
        project findings on unlisted files are dropped.
    """
    from . import ALL_RULES  # late import: rules import this module

    package_root = Path(package_root)
    repo = Path(repo_root) if repo_root is not None else None
    active = list(rules) if rules is not None else list(ALL_RULES)
    if select is not None:
        known = {r.id for r in active}
        wanted: set[str] = set()
        unknown: list[str] = []
        for item in select:
            if item in known:
                wanted.add(item)
                continue
            family = {rid for rid in known if item and rid.startswith(item)}
            if family:
                wanted.update(family)
            else:
                unknown.append(item)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(set(unknown))}")
        active = [r for r in active if r.id in wanted]

    sources: dict[str, SourceFile] = {}
    violations: list[Violation] = []
    files_checked = 0
    for path in iter_python_files(package_root):
        files_checked += 1
        try:
            src = SourceFile.load(path, package_root)
        except SyntaxError as exc:
            rel = path.relative_to(package_root).as_posix()
            if only is not None and rel not in only:
                continue
            violations.append(Violation(
                PARSE_ERROR_RULE, rel, exc.lineno or 1, (exc.offset or 1) - 1,
                f"could not parse: {exc.msg}"))
            continue
        sources[src.relpath] = src
        if only is not None and src.relpath not in only:
            continue
        for rule in active:
            for v in rule.check_file(src):
                if not src.suppressed(v):
                    violations.append(v)

    ctx = ProjectContext(package_root=package_root, repo_root=repo,
                         sources=sources)
    for rule in active:
        for v in rule.check_project(ctx):
            if only is not None and v.path not in only:
                continue
            src = sources.get(v.path)
            if src is None or not src.suppressed(v):
                violations.append(v)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    violations = _assign_fingerprints(violations, sources)
    return LintResult(violations=violations, files_checked=files_checked,
                      rules_run=[r.id for r in active])
