"""Schema rules: S001 (result-schema drift) and S002 (Block counter writes).

S001 guards the cache-soundness contract of ``docs/CACHING.md``: the
on-disk result cache stores ``SimulationResult.to_dict()`` payloads keyed
by :data:`repro.experiments.cache.CACHE_SCHEMA_VERSION`.  Adding or
removing a result field without bumping the version silently mixes old
and new payload shapes in the same key space.  The rule extracts the
field set from the *source* (AST, no import needed), compares it against
the committed snapshot ``results/schema_snapshot.json``, and fails on any
mismatch — with a message that says which side to fix.

S002 guards the incremental-scoring contract of ``docs/PERFORMANCE.md``:
``Block.page_valid``/``page_programmed``/subpage arrays are maintained by
``nand/block.py`` alongside watcher callbacks (``RegionCounters``,
``VictimIndex``).  A direct write from anywhere else updates the counter
but not the watchers, desynchronizing O(1) region stats and victim
scores from the flash state they summarize.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator

from .core import ProjectContext, Rule, SourceFile, Violation

#: Repo-relative file the snapshot describes.
SIMULATOR_RELPATH = "sim/simulator.py"
#: Repo-relative file holding the cache schema version.
CACHE_RELPATH = "experiments/cache.py"
#: Snapshot location under the repository root.
SNAPSHOT_RELPATH = "results/schema_snapshot.json"


# --------------------------------------------------------------------------
# AST extraction helpers (also used by results/regenerate.py --schema)


def extract_result_schema(simulator_py: Path) -> dict | None:
    """Field/summary-key sets of ``SimulationResult``, read via AST.

    Returns ``None`` when the file or the class is absent (linting a
    fixture tree).  Dataclass fields are the class-body ``AnnAssign``
    statements; ``to_dict()`` serialises exactly ``dataclasses.fields``,
    so this set *is* the cache payload key set.  ``summary_keys`` are the
    constant keys of the dict literal ``summary()`` returns, and
    ``nondeterministic_fields`` mirrors the class attribute that
    determinism comparisons strip.
    """
    if not simulator_py.is_file():
        return None
    tree = ast.parse(simulator_py.read_text(encoding="utf-8"),
                     filename=str(simulator_py))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "SimulationResult":
            return _schema_of_class(node)
    return None


def _schema_of_class(cls: ast.ClassDef) -> dict:
    fields = [stmt.target.id for stmt in cls.body
              if isinstance(stmt, ast.AnnAssign)
              and isinstance(stmt.target, ast.Name)]
    nondet: list[str] = []
    summary_keys: list[str] = []
    for stmt in cls.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "NONDETERMINISTIC_FIELDS"):
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List)):
                nondet = [e.value for e in value.elts
                          if isinstance(e, ast.Constant) and isinstance(e.value, str)]
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "summary":
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Dict):
                    summary_keys = [k.value for k in sub.value.keys
                                    if isinstance(k, ast.Constant)
                                    and isinstance(k.value, str)]
    return {"fields": fields, "nondeterministic_fields": nondet,
            "summary_keys": summary_keys, "class_line": cls.lineno}


def extract_cache_schema_version(cache_py: Path) -> int | None:
    """``CACHE_SCHEMA_VERSION`` constant, read via AST (no import)."""
    if not cache_py.is_file():
        return None
    tree = ast.parse(cache_py.read_text(encoding="utf-8"),
                     filename=str(cache_py))
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "CACHE_SCHEMA_VERSION"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, int)):
                return value.value
    return None


def current_schema(package_root: Path) -> dict | None:
    """The live schema of a source tree, or ``None`` if not a repro tree."""
    schema = extract_result_schema(package_root / SIMULATOR_RELPATH)
    if schema is None:
        return None
    version = extract_cache_schema_version(package_root / CACHE_RELPATH)
    if version is None:
        return None
    out = {k: v for k, v in schema.items() if k != "class_line"}
    out["cache_schema_version"] = version
    return out


def write_schema_snapshot(repo_root: "Path | str",
                          package_root: "Path | str | None" = None) -> Path:
    """Regenerate ``results/schema_snapshot.json`` from the source tree.

    The hook behind ``python results/regenerate.py --schema``: run it in
    the same commit that bumps ``CACHE_SCHEMA_VERSION`` so the S001 drift
    guard re-arms on the new schema.
    """
    repo = Path(repo_root)
    pkg = Path(package_root) if package_root is not None else repo / "src" / "repro"
    schema = current_schema(pkg)
    if schema is None:
        raise FileNotFoundError(
            f"no SimulationResult/CACHE_SCHEMA_VERSION found under {pkg}")
    path = repo / SNAPSHOT_RELPATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# S001 — schema drift vs the committed snapshot


class SchemaDriftRule(Rule):
    """S001: ``SimulationResult`` may not change shape silently.

    Compares the live field set (and summary keys and the
    nondeterministic-field list) against the committed snapshot, and the
    live ``CACHE_SCHEMA_VERSION`` against the version recorded when the
    snapshot was taken.  Any mismatch fails with instructions: bump the
    version if the schema moved, regenerate the snapshot if the bump
    already happened.
    """

    id = "S001"
    title = "SimulationResult schema drift without a cache version bump"

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        schema = extract_result_schema(ctx.package_root / SIMULATOR_RELPATH)
        version = extract_cache_schema_version(ctx.package_root / CACHE_RELPATH)
        if schema is None or version is None:
            # Not a repro source tree (rule fixtures): nothing to guard.
            return
        line = schema["class_line"]
        snap_path = ctx.snapshot_path
        if snap_path is None:
            return
        if not snap_path.is_file():
            yield self._v(line, f"schema snapshot {SNAPSHOT_RELPATH} is "
                                f"missing — create it with "
                                f"'python results/regenerate.py --schema'")
            return
        try:
            snap = json.loads(snap_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            yield self._v(line, f"unreadable schema snapshot {snap_path}: {exc}")
            return

        drift = self._diff(schema, snap)
        snap_version = snap.get("cache_schema_version")
        if drift and version == snap_version:
            yield self._v(line, f"SimulationResult schema changed ({drift}) "
                                f"without a CACHE_SCHEMA_VERSION bump — bump "
                                f"it in {CACHE_RELPATH} (currently {version}) "
                                f"and regenerate the snapshot")
        elif drift:
            yield self._v(line, f"SimulationResult schema changed ({drift}) "
                                f"and CACHE_SCHEMA_VERSION moved "
                                f"{snap_version} -> {version} — regenerate "
                                f"{SNAPSHOT_RELPATH} to re-arm the drift "
                                f"guard ('python results/regenerate.py "
                                f"--schema')")
        elif version != snap_version:
            yield self._v(line, f"CACHE_SCHEMA_VERSION is {version} but the "
                                f"snapshot records {snap_version} — "
                                f"regenerate {SNAPSHOT_RELPATH}")

    @staticmethod
    def _diff(schema: dict, snap: dict) -> str:
        """Human-readable description of set differences ('' when equal)."""
        parts = []
        for key, label in (("fields", "field"),
                           ("nondeterministic_fields", "nondet field"),
                           ("summary_keys", "summary key")):
            live = set(schema.get(key) or ())
            kept = set(snap.get(key) or ())
            added, removed = sorted(live - kept), sorted(kept - live)
            if added:
                parts.append(f"{label}s added: {', '.join(added)}")
            if removed:
                parts.append(f"{label}s removed: {', '.join(removed)}")
        return "; ".join(parts)

    def _v(self, line: int, message: str) -> Violation:
        return Violation(self.id, SIMULATOR_RELPATH, line, 0, message)


# --------------------------------------------------------------------------
# S002 — Block counter / subpage-state writes outside nand/block.py


#: Watcher-maintained Block attributes (see ``Block.__slots__`` and the
#: PR-2 incremental scoring design).  Writing any of these bypasses
#: ``note_program``/``note_invalidate``/``note_change`` bookkeeping.
_WATCHED_ATTRS = frozenset({
    "page_valid", "page_programmed", "pages_with_valid",
    "n_valid", "n_invalid", "n_programmed", "content_epoch",
    "programmed", "valid", "page_updated", "disturb_in", "disturb_nb",
    # Structure-of-arrays additions: the slot→lsn binding column and the
    # per-page python-int bitmask mirrors of programmed/valid.
    "slot_lsn", "prog_mask", "valid_mask",
})
#: In-place mutator methods on lists/arrays/sets.
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "add", "discard", "update", "fill", "setdefault",
})


def _watched_attribute(node: ast.AST) -> str | None:
    """The watched attribute a write target touches, if any.

    Matches ``x.page_valid``, ``x.page_valid[i]`` and nested subscripts
    (``x.valid[p][s]``).
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _WATCHED_ATTRS:
        return node.attr
    return None


class BlockCounterWriteRule(Rule):
    """S002: Block/region occupancy state is written only by the flash
    state kernel (``nand/block.py`` mutates, ``nand/state.py`` allocates
    the backing region arrays)."""

    id = "S002"
    title = "Block counter/subpage-state write outside the nand state kernel"

    #: The modules that own the state and notify the watchers, plus the
    #: pure-python specification twin (``nand/reference.py``): it keeps
    #: the same attribute names by design so the differential suite can
    #: drive both implementations with one interpreter, and it has no
    #: watchers to desynchronize.
    ALLOWED = frozenset({"nand/block.py", "nand/state.py",
                         "nand/reference.py"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        if src.relpath in self.ALLOWED:
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for elt in self._flatten(target):
                        attr = _watched_attribute(elt)
                        if attr is not None:
                            yield self._v(src, node, attr, "assignment to")
            elif isinstance(node, ast.AugAssign):
                attr = _watched_attribute(node.target)
                if attr is not None:
                    yield self._v(src, node, attr, "augmented assignment to")
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = _watched_attribute(node.target)
                if attr is not None:
                    yield self._v(src, node, attr, "assignment to")
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                attr = _watched_attribute(node.func.value)
                if attr is not None:
                    yield self._v(src, node, attr,
                                  f".{node.func.attr}() call on")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _watched_attribute(target)
                    if attr is not None:
                        yield self._v(src, node, attr, "del of")

    @staticmethod
    def _flatten(target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from BlockCounterWriteRule._flatten(elt)
        else:
            yield target

    def _v(self, src: SourceFile, node: ast.AST, attr: str,
           how: str) -> Violation:
        return Violation(
            self.id, src.relpath, node.lineno, node.col_offset,
            f"{how} watcher-maintained Block state {attr!r} outside the "
            f"nand state kernel — RegionCounters/VictimIndex would not see "
            f"the change; go through Block.program/invalidate/erase")
