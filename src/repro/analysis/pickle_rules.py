"""Checkpoint/pickle safety dataflow (rules P001–P003).

The fleet layer's resume contract — a device replay pickled into a
checkpoint resumes *bit-identically* — leans on two fragile
conventions:

* every piece of **loop-carry state** a replay driver accumulates in
  ``feed``/``drain_window``/``finish`` must round-trip through the
  class's pickle protocol (a ``__getstate__`` that drops one attribute
  resumes from a silently reset counter);
* every class holding **numpy views into**
  :class:`~repro.nand.state.RegionState` must rebind those views in
  ``__setstate__`` the way :class:`~repro.nand.block.Block` does
  (``self._rebind_views()``) — default unpickling would materialise
  private copies and the restored object graph would stop sharing
  memory with the region arrays.

Both are enforced dynamically today (``tests/test_checkpoint.py``
resume-identity suites); this module makes them lint-time facts, plus a
third guard on the process-pool boundary:

======== ============================================================
``P001`` a replay-driver attribute assigned in ``feed``/
         ``drain_window``/``finish`` is dropped by the class's
         ``__getstate__`` and never restored in ``__setstate__``, or
         is bound to an unpicklable value (lambda, generator, open
         handle)
``P002`` a class assigns attributes that are views into RegionState
         columns but its ``__setstate__`` does not rebind them (or is
         missing entirely)
``P003`` an unpicklable payload (lambda, closure, generator
         expression, open handle) flows into
         ``ProcessPoolExecutor.submit``/``map``
======== ============================================================

Like the effect pass, unresolved structure drops facts instead of
guessing: a ``__getstate__`` whose shape the analysis cannot read
fires nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping
from weakref import WeakKeyDictionary

from .callgraph import ClassInfo, FunctionInfo, ProjectIndex
from .core import ProjectContext, Rule, SourceFile, Violation
from .effects import REGION_COLUMNS, _AliasMap, _own_statements

#: A class defining this method is a chunk-fed replay driver.
DRIVER_MARKER = "feed"

#: Methods whose ``self.<attr>`` assignments are loop-carry state.
DRIVER_METHODS = ("feed", "drain_window", "finish")

#: Pool constructors whose payloads must pickle.
_POOL_CLASSES = frozenset({"ProcessPoolExecutor"})

#: Array-reshaping calls that still denote a view of their receiver.
_VIEW_WRAPPERS = frozenset({"reshape", "view"})


def _self_assigned_attrs(fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
                         ) -> dict[str, ast.AST]:
    """``self.<attr>`` assignment targets in one method body."""
    out: dict[str, ast.AST] = {}
    for stmt in _own_statements(fn_node):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for leaf in ast.walk(target):
                if (isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                        and isinstance(leaf.ctx, ast.Store)):
                    out.setdefault(leaf.attr, leaf)
    return out


def _unpicklable_value(value: ast.expr) -> str | None:
    """Why ``value`` cannot round-trip through pickle, if it cannot."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id == "open"):
        return "an open file handle"
    return None


def _constant_str_elts(node: ast.expr) -> set[str] | None:
    """String constants of a literal tuple/list/set, else ``None``."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = set()
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            out.add(elt.value)
        return out
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset", "tuple", "list")
            and len(node.args) == 1):
        return _constant_str_elts(node.args[0])
    return None


class PickleAnalysis:
    """One whole-tree checkpoint-safety pass shared by P001/P002."""

    def __init__(self, sources: Mapping[str, SourceFile]) -> None:
        self.sources = sources
        self.index = ProjectIndex.build(sources)
        self.violations: list[Violation] = []
        self._emitted: set[tuple[str, str, int, int, str]] = set()
        self._check_p001()
        self._check_p002()

    # -- shared class helpers ----------------------------------------------

    def _iter_classes(self) -> Iterator[ClassInfo]:
        for relpath in sorted(self.index.modules):
            mod = self.index.modules[relpath]
            for name in sorted(mod.classes):
                yield mod.classes[name]

    def _aliased_methods(self, cls: ClassInfo) -> dict[str, FunctionInfo]:
        """``name = OtherClass.method`` class-body method aliases."""
        out: dict[str, FunctionInfo] = {}
        module = self.index.modules.get(cls.relpath)
        if module is None:
            return out
        for stmt in cls.node.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Attribute)
                    and isinstance(stmt.value.value, ast.Name)):
                continue
            owner = self.index.resolve_class_name(stmt.value.value.id, module)
            if owner is None:
                continue
            aliased = self.index.class_method(owner, stmt.value.attr)
            if aliased is not None:
                out[stmt.targets[0].id] = aliased
        return out

    def _method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        found = self.index.class_method(cls, name)
        if found is not None:
            return found
        return self._aliased_methods(cls).get(name)

    def _restored_attrs(self, cls: ClassInfo,
                        setstate: FunctionInfo | None) -> set[str]:
        """Attrs ``__setstate__`` assigns, directly or one call deep."""
        if setstate is None:
            return set()
        restored = set(_self_assigned_attrs(setstate.node))
        for node in ast.walk(setstate.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"):
                continue
            helper = self._method(cls, node.func.attr)
            if helper is not None:
                restored.update(_self_assigned_attrs(helper.node))
        return restored

    # -- P001: loop-carry state vs the pickle protocol ----------------------

    def _class_level_str_sets(self, cls: ClassInfo) -> dict[str, set[str]]:
        """Class-body ``NAME = ("a", "b")`` string-tuple constants."""
        out: dict[str, set[str]] = {}
        src = self.sources.get(cls.relpath)
        module_body = list(src.tree.body) if src is not None else []
        for stmt in list(cls.node.body) + module_body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            elts = _constant_str_elts(stmt.value)
            if elts is not None:
                out[stmt.targets[0].id] = elts
        return out

    def _getstate_drops(self, cls: ClassInfo,
                        getstate: FunctionInfo) -> "tuple[set[str] | None, set[str]]":
        """``(included, excluded)`` attr sets of one ``__getstate__``.

        ``included is None`` means "everything except ``excluded``"
        (the dict-comprehension-over-``__slots__`` shape); both empty
        with ``included`` a set means an unreadable body, which fires
        nothing.
        """
        consts = self._class_level_str_sets(cls)
        for stmt in _own_statements(getstate.node):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            value = stmt.value
            if isinstance(value, ast.Dict):
                included = {k.value for k in value.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str)}
                return included, set()
            if isinstance(value, ast.DictComp) and value.generators:
                excluded: set[str] = set()
                gen = value.generators[0]
                for cond in gen.ifs:
                    if not (isinstance(cond, ast.Compare)
                            and len(cond.ops) == 1
                            and isinstance(cond.ops[0], ast.NotIn)):
                        continue
                    skip = cond.comparators[0]
                    elts = _constant_str_elts(skip)
                    if elts is None and isinstance(skip, ast.Name):
                        elts = consts.get(skip.id)
                    if elts is not None:
                        excluded.update(elts)
                return None, excluded
        return set(), set()

    def _check_p001(self) -> None:
        for cls in self._iter_classes():
            if DRIVER_MARKER not in cls.methods:
                continue
            carried: dict[str, ast.AST] = {}
            for name in DRIVER_METHODS:
                fn = self._method(cls, name)
                if fn is None:
                    continue
                for attr, node in _self_assigned_attrs(fn.node).items():
                    carried.setdefault(attr, node)
                # Unpicklable values are a violation regardless of the
                # pickle protocol: no __getstate__ can serialise them.
                for stmt in _own_statements(fn.node):
                    if not (isinstance(stmt, ast.Assign)
                            and any(isinstance(t, ast.Attribute)
                                    and isinstance(t.value, ast.Name)
                                    and t.value.id == "self"
                                    for t in stmt.targets)):
                        continue
                    why = _unpicklable_value(stmt.value)
                    if why is not None:
                        self.emit(
                            "P001", cls.relpath, stmt,
                            f"loop-carry state of {cls.name}.{fn.name}() "
                            f"is bound to {why}, which cannot round-trip "
                            f"through the checkpoint pickle")
            getstate = self._method(cls, "__getstate__")
            if getstate is None or not carried:
                continue
            included, excluded = self._getstate_drops(cls, getstate)
            setstate = self._method(cls, "__setstate__")
            restored = self._restored_attrs(cls, setstate)
            for attr in sorted(carried):
                dropped = (attr in excluded if included is None
                           else attr not in included)
                if dropped and attr not in restored:
                    self.emit(
                        "P001", cls.relpath, carried[attr],
                        f"loop-carry attribute '{attr}' of {cls.name} "
                        f"(assigned in "
                        f"{'/'.join(DRIVER_METHODS)}) is dropped by "
                        f"__getstate__ and never restored in "
                        f"__setstate__ — a resumed checkpoint would "
                        f"silently reset it")

    # -- P002: RegionState views need a __setstate__ rebind ------------------

    def _view_column(self, value: ast.expr, aliases: _AliasMap) -> str | None:
        """RegionState column ``value`` is a view of, if it is one."""
        expr = value
        while True:
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _VIEW_WRAPPERS):
                expr = expr.func.value
            elif isinstance(expr, ast.Subscript):
                expr = expr.value
            else:
                break
        if (isinstance(expr, ast.Attribute) and expr.attr in REGION_COLUMNS
                and aliases.is_region_expr(expr.value)):
            return expr.attr
        if isinstance(expr, ast.Name):
            return aliases.columns.get(expr.id)
        return None

    def _class_view_attrs(self, cls: ClassInfo) -> dict[str, ast.AST]:
        """Attrs of ``cls`` assigned as views into RegionState columns."""
        views: dict[str, ast.AST] = {}
        for name in sorted(cls.methods):
            fn = cls.methods[name]
            aliases = _AliasMap(fn.node)
            for stmt in _own_statements(fn.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                column = self._view_column(stmt.value, aliases)
                if column is None:
                    continue
                for target in stmt.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        views.setdefault(target.attr, stmt)
        return views

    def _check_p002(self) -> None:
        for cls in self._iter_classes():
            views = self._class_view_attrs(cls)
            if not views:
                continue
            setstate = self._method(cls, "__setstate__")
            if setstate is None:
                for attr in sorted(views):
                    self.emit(
                        "P002", cls.relpath, views[attr],
                        f"{cls.name}.{attr} is a numpy view into a "
                        f"RegionState column but the class has no "
                        f"__setstate__ — default unpickling materialises "
                        f"a private copy and the restored graph stops "
                        f"sharing memory (use the Block "
                        f"__setstate__ -> _rebind_views() pattern)")
                continue
            restored = self._restored_attrs(cls, setstate)
            for attr in sorted(views):
                if attr not in restored:
                    self.emit(
                        "P002", cls.relpath, views[attr],
                        f"{cls.name}.{attr} is a numpy view into a "
                        f"RegionState column but __setstate__ never "
                        f"rebinds it — the restored object would keep a "
                        f"pickled private copy instead of a view (rebind "
                        f"it like Block._rebind_views() does)")

    # -- reporting ---------------------------------------------------------

    def emit(self, rule: str, relpath: str, node: ast.AST,
             message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, relpath, lineno, col, message)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.violations.append(Violation(rule, relpath, lineno, col, message))


#: One analysis per engine run, shared by the P001/P002 rule instances.
_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectContext, PickleAnalysis]" = (
    WeakKeyDictionary())


def project_pickle(ctx: ProjectContext) -> PickleAnalysis:
    """The (memoized) whole-tree pickle-safety analysis for one run."""
    analysis = _ANALYSIS_CACHE.get(ctx)
    if analysis is None:
        analysis = PickleAnalysis(ctx.sources)
        _ANALYSIS_CACHE[ctx] = analysis
    return analysis


class _PickleRule(Rule):
    """Base for the project-level P-rules: filter the shared analysis."""

    def check_project(self, ctx: ProjectContext) -> Iterator[Violation]:
        if not ctx.sources:
            return
        for violation in project_pickle(ctx).violations:
            if violation.rule == self.id:
                yield violation


class LoopCarryPickleRule(_PickleRule):
    """P001: replay-driver loop-carry state must survive the pickle."""

    id = "P001"
    title = "replay-driver loop-carry state dropped by the pickle protocol"


class ViewRebindRule(_PickleRule):
    """P002: RegionState views must be rebound in __setstate__."""

    id = "P002"
    title = "RegionState view pickled without a __setstate__ rebind"


class ExecutorPayloadRule(Rule):
    """P003: payloads handed to a process pool must pickle.

    Per-file: ``pool.submit(lambda: …)`` / ``pool.map(<closure>, …)``
    raise ``PicklingError`` only at runtime, on whichever machine first
    runs with more than one worker — the single-worker fast path of
    ``run_cells`` never touches the pool, so tests can pass while the
    parallel path is broken.
    """

    id = "P003"
    title = "unpicklable payload passed to a process pool"

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        for holder in ast.walk(src.tree):
            if isinstance(holder, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(src, holder)

    def _pool_call(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _POOL_CLASSES

    def _check_function(self, src: SourceFile,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef,
                        ) -> Iterator[Violation]:
        pools: set[str] = set()
        nested: set[str] = set()
        for node in fn.body:
            for stmt in ast.walk(node):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and stmt is not fn:
                    nested.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    if self._pool_call(stmt.value):
                        pools.update(t.id for t in stmt.targets
                                     if isinstance(t, ast.Name))
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        if (self._pool_call(item.context_expr)
                                and isinstance(item.optional_vars, ast.Name)):
                            pools.add(item.optional_vars.id)
        if not pools:
            return
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pools
                    and node.func.attr in ("submit", "map")):
                continue
            # map() consumes its iterables parent-side; only the callable
            # must pickle.  submit() ships every argument to the worker.
            payloads = (node.args if node.func.attr == "submit"
                        else node.args[:1])
            for arg in payloads:
                why = _unpicklable_value(arg)
                if why is None and isinstance(arg, ast.Name) \
                        and arg.id in nested:
                    why = f"the closure {arg.id}() defined in {fn.name}()"
                if why is not None:
                    yield Violation(
                        self.id, src.relpath, arg.lineno, arg.col_offset,
                        f"{why} is passed to ProcessPoolExecutor."
                        f"{node.func.attr}() — it cannot pickle, so the "
                        f"parallel fan-out fails at runtime (pass a "
                        f"module-level function and primitive args)")
