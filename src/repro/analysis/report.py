"""Text and JSON reporters for ``repro-ssd lint``."""

from __future__ import annotations

import json

from .baseline import BaselineMatch
from .core import LintResult, Violation


def render_text(result: LintResult, match: BaselineMatch) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per
    finding, then a summary line."""
    out: list[str] = []
    for v in match.new:
        out.append(f"{v.location()}: {v.rule} {v.message}")
    for v in match.baselined:
        out.append(f"{v.location()}: {v.rule} [baselined] {v.message}")
    for e in match.stale:
        out.append(f"{e.get('path')}: {e.get('rule')} [stale baseline entry "
                   f"{e.get('fingerprint')}] violation no longer present — "
                   f"shrink the baseline with --update-baseline")
    counts = result.counts_by_rule()
    by_rule = ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
    out.append(f"checked {result.files_checked} files, rules "
               f"{','.join(result.rules_run)}: "
               f"{len(match.new)} new, {len(match.baselined)} baselined, "
               f"{len(match.stale)} stale"
               + (f" ({by_rule})" if by_rule else ""))
    return "\n".join(out)


def _violation_dict(v: Violation, baselined: bool) -> dict:
    return {"rule": v.rule, "path": v.path, "line": v.line, "col": v.col,
            "message": v.message, "fingerprint": v.fingerprint,
            "baselined": baselined}


def render_json(result: LintResult, match: BaselineMatch) -> str:
    """Machine-readable report (the CI lint job's format)."""
    payload = {
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "counts_by_rule": result.counts_by_rule(),
        "violations": ([_violation_dict(v, False) for v in match.new]
                       + [_violation_dict(v, True) for v in match.baselined]),
        "stale_baseline_entries": match.stale,
        "new": len(match.new),
        "baselined": len(match.baselined),
        "stale": len(match.stale),
        "ok": not match.new and not match.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
