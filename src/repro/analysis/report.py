"""Text, JSON and SARIF reporters for ``repro-ssd lint``."""

from __future__ import annotations

import json

from .baseline import BaselineMatch
from .core import LintResult, Violation

#: SARIF 2.1.0 — the format GitHub code scanning ingests.
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_text(result: LintResult, match: BaselineMatch) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per
    finding, then a summary line."""
    out: list[str] = []
    for v in match.new:
        out.append(f"{v.location()}: {v.rule} {v.message}")
    for v in match.baselined:
        out.append(f"{v.location()}: {v.rule} [baselined] {v.message}")
    for e in match.stale:
        out.append(f"{e.get('path')}: {e.get('rule')} [stale baseline entry "
                   f"{e.get('fingerprint')}] violation no longer present — "
                   f"shrink the baseline with --update-baseline")
    counts = result.counts_by_rule()
    by_rule = ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
    out.append(f"checked {result.files_checked} files, rules "
               f"{','.join(result.rules_run)}: "
               f"{len(match.new)} new, {len(match.baselined)} baselined, "
               f"{len(match.stale)} stale"
               + (f" ({by_rule})" if by_rule else ""))
    return "\n".join(out)


def _violation_dict(v: Violation, baselined: bool) -> dict:
    return {"rule": v.rule, "path": v.path, "line": v.line, "col": v.col,
            "message": v.message, "fingerprint": v.fingerprint,
            "baselined": baselined}


def render_json(result: LintResult, match: BaselineMatch) -> str:
    """Machine-readable report (the CI lint job's format)."""
    payload = {
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "counts_by_rule": result.counts_by_rule(),
        "violations": ([_violation_dict(v, False) for v in match.new]
                       + [_violation_dict(v, True) for v in match.baselined]),
        "stale_baseline_entries": match.stale,
        "new": len(match.new),
        "baselined": len(match.baselined),
        "stale": len(match.stale),
        "ok": not match.new and not match.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(v: Violation, rule_index: dict[str, int],
                  baselined: bool, uri_prefix: str) -> dict:
    result: dict = {
        "ruleId": v.rule,
        # Baselined findings are accepted debt: keep them visible in the
        # scan without failing required code-scanning checks.
        "level": "note" if baselined else "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": f"{uri_prefix}{v.path}",
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(v.line, 1),
                    "startColumn": v.col + 1,  # SARIF columns are 1-based
                },
            },
        }],
        "partialFingerprints": {"reproLint/v1": v.fingerprint},
    }
    idx = rule_index.get(v.rule)
    if idx is not None:
        result["ruleIndex"] = idx
    return result


def render_sarif(result: LintResult, match: BaselineMatch,
                 uri_prefix: str = "") -> str:
    """SARIF 2.1.0 report, for GitHub code-scanning upload.

    ``uri_prefix`` rebases violation paths (relative to the linted
    package root) onto the repository root — ``"src/repro/"`` in the
    normal invocation — so annotations land on the right files.  Stale
    baseline entries have no code location and are not representable as
    SARIF results; they still fail the exit code, and the text/JSON
    reporters list them.
    """
    from . import RULES_BY_ID  # late import: rules import this package

    rule_index = {rid: i for i, rid in enumerate(result.rules_run)}
    rules = []
    for rid in result.rules_run:
        rule = RULES_BY_ID.get(rid)
        descriptor: dict = {"id": rid}
        if rule is not None and rule.title:
            descriptor["shortDescription"] = {"text": rule.title}
        rules.append(descriptor)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-ssd-lint",
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": (
                [_sarif_result(v, rule_index, False, uri_prefix)
                 for v in match.new]
                + [_sarif_result(v, rule_index, True, uri_prefix)
                   for v in match.baselined]),
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
