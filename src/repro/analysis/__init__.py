"""``repro-ssd lint`` — AST-based determinism & schema-drift analyzer.

Machine-checks the repository's simulation contracts (see
``docs/STATIC_ANALYSIS.md``):

========  ==========================================================
``D001``  randomness outside ``repro/rng.py`` (make_rng/spawn only)
``D002``  host wall clock outside the diagnostic allowlist
``D003``  unordered set iteration feeding simulation state
``S001``  ``SimulationResult`` schema drift without a
          ``CACHE_SCHEMA_VERSION`` bump (vs the committed snapshot)
``S002``  Block counter / subpage-state writes outside ``nand/block.py``
``C001``  magic size/latency literals outside ``repro.config``/``units``
``U001``  mixed-unit arithmetic (ms vs bytes vs counts)
``U002``  address-space confusion (lsn/lpn/ppn interchange)
``U003``  unconverted or double-converted unit boundary crossings
========  ==========================================================

The U-family is interprocedural: a project-wide call graph
(:mod:`repro.analysis.callgraph`) and a unit-inference engine
(:mod:`repro.analysis.units_flow`) propagate dimension facts from the
``repro.units`` ``Annotated`` vocabulary and naming conventions through
assignments, arithmetic, returns, and call edges.

Pure standard library (``ast`` + ``json``): importable and runnable even
where numpy is not, and adding a rule cannot perturb simulation results.
"""

from __future__ import annotations

from .baseline import (
    BASELINE_NAME,
    BaselineMatch,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .config_literals import ConfigLiteralRule
from .core import (
    LintResult,
    ProjectContext,
    Rule,
    SourceFile,
    Violation,
    run_lint,
)
from .determinism import RandomnessRule, SetIterationRule, WallClockRule
from .schema import (
    BlockCounterWriteRule,
    SchemaDriftRule,
    current_schema,
    extract_cache_schema_version,
    extract_result_schema,
    write_schema_snapshot,
)
from .units_flow import (
    AddressSpaceConfusionRule,
    LossyBoundaryCrossingRule,
    MixedUnitArithmeticRule,
)

#: The rule catalogue, in report order.
ALL_RULES: tuple[Rule, ...] = (
    RandomnessRule(),
    WallClockRule(),
    SetIterationRule(),
    SchemaDriftRule(),
    BlockCounterWriteRule(),
    ConfigLiteralRule(),
    MixedUnitArithmeticRule(),
    AddressSpaceConfusionRule(),
    LossyBoundaryCrossingRule(),
)

#: ``{rule_id: rule}`` lookup.
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AddressSpaceConfusionRule",
    "LossyBoundaryCrossingRule",
    "MixedUnitArithmeticRule",
    "BASELINE_NAME",
    "BaselineMatch",
    "LintResult",
    "ProjectContext",
    "Rule",
    "SourceFile",
    "Violation",
    "apply_baseline",
    "current_schema",
    "extract_cache_schema_version",
    "extract_result_schema",
    "load_baseline",
    "run_lint",
    "write_baseline",
    "write_schema_snapshot",
]
