"""``repro-ssd lint`` — AST-based determinism & schema-drift analyzer.

Machine-checks the repository's simulation contracts (see
``docs/STATIC_ANALYSIS.md``):

========  ==========================================================
``D001``  randomness outside ``repro/rng.py`` (make_rng/spawn only)
``D002``  host wall clock outside the diagnostic allowlist
``D003``  unordered set iteration feeding simulation state
``S001``  ``SimulationResult`` schema drift without a
          ``CACHE_SCHEMA_VERSION`` bump (vs the committed snapshot)
``S002``  Block counter / subpage-state writes outside ``nand/block.py``
``C001``  magic size/latency literals outside ``repro.config``/``units``
``U001``  mixed-unit arithmetic (ms vs bytes vs counts)
``U002``  address-space confusion (lsn/lpn/ppn interchange)
``U003``  unconverted or double-converted unit boundary crossings
``M001``  state write reachable before a raise-capable validation
          (torn state on the exception path)
``M002``  ``Block`` scalar mirror / ``RegionState`` column written
          without its lock-step partner
``N001``  dtype-less or narrow-float numpy construction in a
          byte-identity-gated module
``N002``  order-dependent reduction in a byte-identity-gated module
``K001``  config field read inside a cached cell but missing from the
          canonical cache key
``K002``  ambient input (env/files/platform) read inside a cached cell
``K003``  canonical-key emitter omits a dataclass field
``P001``  replay-driver loop-carry state dropped by the pickle protocol
``P002``  RegionState view pickled without a ``__setstate__`` rebind
``P003``  unpicklable payload passed to ``ProcessPoolExecutor``
========  ==========================================================

The U- and M-families are interprocedural: a project-wide call graph
(:mod:`repro.analysis.callgraph`) feeds a unit-inference engine
(:mod:`repro.analysis.units_flow`) that propagates dimension facts from
the ``repro.units`` ``Annotated`` vocabulary through assignments,
arithmetic, returns, and call edges, and an effect/exception pass
(:mod:`repro.analysis.effects`) that propagates which state each
function writes and which paths can raise.  The N-family
(:mod:`repro.analysis.numpy_rules`) is per-file but gated to the
modules whose outputs the golden pins diff byte-for-byte.

Pure standard library (``ast`` + ``json``): importable and runnable even
where numpy is not, and adding a rule cannot perturb simulation results.
"""

from __future__ import annotations

from .baseline import (
    BASELINE_NAME,
    BaselineMatch,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .config_literals import ConfigLiteralRule
from .core import (
    LintResult,
    ProjectContext,
    Rule,
    SourceFile,
    Violation,
    run_lint,
)
from .determinism import RandomnessRule, SetIterationRule, WallClockRule
from .effects import MirrorColumnPairRule, TornStateWriteRule
from .numpy_rules import DtypeDisciplineRule, ReductionOrderRule
from .pickle_rules import (
    ExecutorPayloadRule,
    LoopCarryPickleRule,
    ViewRebindRule,
)
from .repro_soundness import (
    AmbientInputRule,
    CacheKeyTaintRule,
    CanonicalKeyCompletenessRule,
)
from .schema import (
    BlockCounterWriteRule,
    SchemaDriftRule,
    current_schema,
    extract_cache_schema_version,
    extract_result_schema,
    write_schema_snapshot,
)
from .units_flow import (
    AddressSpaceConfusionRule,
    LossyBoundaryCrossingRule,
    MixedUnitArithmeticRule,
)

#: The rule catalogue, in report order.
ALL_RULES: tuple[Rule, ...] = (
    RandomnessRule(),
    WallClockRule(),
    SetIterationRule(),
    SchemaDriftRule(),
    BlockCounterWriteRule(),
    ConfigLiteralRule(),
    MixedUnitArithmeticRule(),
    AddressSpaceConfusionRule(),
    LossyBoundaryCrossingRule(),
    TornStateWriteRule(),
    MirrorColumnPairRule(),
    DtypeDisciplineRule(),
    ReductionOrderRule(),
    CacheKeyTaintRule(),
    AmbientInputRule(),
    CanonicalKeyCompletenessRule(),
    LoopCarryPickleRule(),
    ViewRebindRule(),
    ExecutorPayloadRule(),
)

#: ``{rule_id: rule}`` lookup.
RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AddressSpaceConfusionRule",
    "LossyBoundaryCrossingRule",
    "MixedUnitArithmeticRule",
    "TornStateWriteRule",
    "MirrorColumnPairRule",
    "DtypeDisciplineRule",
    "ReductionOrderRule",
    "CacheKeyTaintRule",
    "AmbientInputRule",
    "CanonicalKeyCompletenessRule",
    "LoopCarryPickleRule",
    "ViewRebindRule",
    "ExecutorPayloadRule",
    "BASELINE_NAME",
    "BaselineMatch",
    "LintResult",
    "ProjectContext",
    "Rule",
    "SourceFile",
    "Violation",
    "apply_baseline",
    "current_schema",
    "extract_cache_schema_version",
    "extract_result_schema",
    "load_baseline",
    "run_lint",
    "write_baseline",
    "write_schema_snapshot",
]
