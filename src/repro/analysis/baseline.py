"""Baseline / ratchet file for grandfathered lint violations.

The analyzer fails on *new* violations; pre-existing ones can be
recorded in a committed baseline (``LINT_BASELINE.json`` at the repo
root) so the rule set can land before every legacy finding is fixed.
The file is a ratchet, not a landfill:

* entries match by ``(rule, path, fingerprint)`` — the fingerprint hashes
  the offending line's text, so unrelated edits do not orphan entries;
* a *stale* entry (recorded violation no longer present) also fails the
  run, forcing ``--update-baseline`` to shrink the file in the same
  change that fixed the code — the baseline only ratchets downward;
* every entry carries a free-form ``note`` documenting why it is
  grandfathered rather than fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .core import Violation

#: On-disk format version of the baseline file.
BASELINE_FORMAT = 1
#: Default location relative to the repository root.
BASELINE_NAME = "LINT_BASELINE.json"


@dataclass
class BaselineMatch:
    """Outcome of comparing current findings against a baseline."""

    new: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)


def load_baseline(path: Path) -> list[dict]:
    """Entries of a baseline file; empty when the file does not exist."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    if data.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: unsupported baseline format "
                         f"{data.get('format')!r}")
    return list(data["entries"])


def write_baseline(path: Path, violations: Sequence[Violation],
                   notes: "dict[str, str] | None" = None) -> None:
    """Serialise ``violations`` as the new baseline (sorted, stable)."""
    notes = notes or {}
    entries = [
        {"rule": v.rule, "path": v.path, "fingerprint": v.fingerprint,
         "line": v.line,
         "note": notes.get(v.fingerprint, "grandfathered; fix or document")}
        for v in sorted(violations, key=lambda v: (v.path, v.line, v.rule))
    ]
    payload = {"format": BASELINE_FORMAT, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(violations: Sequence[Violation],
                   entries: Sequence[dict]) -> BaselineMatch:
    """Split findings into new vs grandfathered, and spot stale entries."""
    keys = {(e.get("rule"), e.get("path"), e.get("fingerprint"))
            for e in entries}
    match = BaselineMatch()
    seen: set[tuple] = set()
    for v in violations:
        key = (v.rule, v.path, v.fingerprint)
        if key in keys:
            match.baselined.append(v)
            seen.add(key)
        else:
            match.new.append(v)
    match.stale = [e for e in entries
                   if (e.get("rule"), e.get("path"), e.get("fingerprint"))
                   not in seen]
    return match
