"""``repro-ssd lint`` subcommand.

Thin argparse wiring over :func:`repro.analysis.core.run_lint`; the main
CLI (:mod:`repro.cli`) mounts :func:`add_lint_arguments` /
:func:`cmd_lint` on its ``lint`` subparser.

Exit codes: 0 clean (baselined findings allowed), 1 new violations or
stale baseline entries, 2 configuration problems (unknown rule id,
unreadable baseline).
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path

from .baseline import BASELINE_NAME, apply_baseline, load_baseline, write_baseline
from .core import PARSE_ERROR_RULE, run_lint


def find_repo_root() -> Path | None:
    """Nearest ancestor that looks like this repository.

    Tries the working directory first (the normal CLI case), then the
    installed package location (``src/repro`` layout).
    """
    candidates = [Path.cwd(), Path(__file__).resolve()]
    for base in candidates:
        for cand in (base, *base.parents):
            if ((cand / "pyproject.toml").is_file()
                    and (cand / "src" / "repro").is_dir()):
                return cand
    return None


def resolve_roots(root_arg: "str | None") -> tuple[Path, Path | None]:
    """``(package_root, repo_root)`` for one invocation.

    ``--root`` may point at the repository (``src/repro`` is used) or
    directly at any directory of Python files (rule fixtures); without
    it the repository is auto-detected.
    """
    if root_arg is not None:
        root = Path(root_arg).resolve()
        pkg = root / "src" / "repro"
        if pkg.is_dir():
            return pkg, root
        return root, root
    repo = find_repo_root()
    if repo is not None:
        return repo / "src" / "repro", repo
    # Fall back to the importable package itself (no snapshot/baseline).
    return Path(__file__).resolve().parents[1], None


def changed_files(repo_root: Path, package_root: Path) -> "set[str] | None":
    """Package-root-relative posix paths of ``*.py`` files changed in git.

    Collects unstaged + staged edits vs ``HEAD`` and untracked files, so
    the pre-commit hook sees exactly what the commit would introduce.
    Returns ``None`` when git is unavailable or the directory is not a
    work tree — callers fall back to a full run rather than silently
    linting nothing.
    """
    names: list[str] = []
    for argv in (["git", "diff", "--name-only", "HEAD"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(argv, cwd=repo_root, capture_output=True,
                                  text=True, check=True, timeout=30)
        except (OSError, subprocess.SubprocessError):
            return None
        names.extend(proc.stdout.splitlines())

    pkg = package_root.resolve()
    out: set[str] = set()
    for name in names:
        name = name.strip()
        if not name.endswith(".py"):
            continue
        path = (repo_root / name).resolve()
        try:
            out.add(path.relative_to(pkg).as_posix())
        except ValueError:
            continue  # changed, but outside the linted tree
    return out


def baseline_rot(entries: "list[dict]", package_root: Path,
                 known_rules: "set[str]") -> "list[str]":
    """Human-readable problems for baseline entries that can never match.

    A fingerprint for a rule that no longer exists, or for a file that
    was deleted, would otherwise sit in ``LINT_BASELINE.json`` forever —
    it can never be reported stale because the engine never re-derives
    it.  The CLI treats any such entry as a configuration error (exit 2).
    """
    problems: list[str] = []
    for entry in entries:
        rule = str(entry.get("rule", ""))
        path = str(entry.get("path", ""))
        if rule not in known_rules:
            problems.append(
                f"baseline entry for unknown rule {rule!r} ({path})")
        elif not (package_root / path).is_file():
            problems.append(
                f"baseline entry for deleted file {path!r} ({rule})")
    return problems


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Mount the lint flags on a subparser."""
    parser.add_argument("--root", metavar="DIR",
                        help="repository root, or a bare directory of "
                             "Python files (default: auto-detect)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text); sarif emits "
                             "SARIF 2.1.0 for GitHub code scanning")
    parser.add_argument("--output", metavar="PATH",
                        help="write the report to PATH instead of stdout "
                             "(stdout keeps a one-line summary)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids (U001) and/or "
                             "family prefixes (U = every U-rule) to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="PATH",
                        help=f"baseline file (default: {BASELINE_NAME} "
                             f"at the repo root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current "
                             "findings and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="report only on files changed vs HEAD "
                             "(staged, unstaged, untracked); project-wide "
                             "rules still analyze the full tree")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point for ``repro-ssd lint``."""
    from . import ALL_RULES
    from .report import render_json, render_sarif, render_text

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0

    package_root, repo_root = resolve_roots(args.root)
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]

    only: "set[str] | None" = None
    if args.changed_only:
        if args.update_baseline:
            print("lint: --changed-only cannot rewrite the baseline "
                  "(it only sees part of the tree)")
            return 2
        if repo_root is not None:
            only = changed_files(repo_root, package_root)
        if only is None:
            print("lint: --changed-only needs a git work tree; "
                  "running the full tree")
        elif not only:
            print(f"lint: no changed Python files under {package_root}")
            return 0

    try:
        result = run_lint(package_root, repo_root=repo_root, select=select,
                          only=only)
    except ValueError as exc:
        print(f"lint: {exc}")
        return 2

    if args.baseline:
        baseline_path = Path(args.baseline)
    elif repo_root is not None:
        baseline_path = repo_root / BASELINE_NAME
    else:
        baseline_path = None

    if args.update_baseline:
        if baseline_path is None:
            print("lint: no baseline path (pass --baseline or run inside "
                  "the repository)")
            return 2
        write_baseline(baseline_path, result.violations)
        print(f"lint: baseline rewritten with {len(result.violations)} "
              f"entries ({baseline_path})")
        return 0

    entries: list[dict] = []
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"lint: {exc}")
            return 2
        known = {rule.id for rule in ALL_RULES} | {PARSE_ERROR_RULE}
        problems = baseline_rot(entries, package_root, known)
        if problems:
            for problem in problems:
                print(f"lint: {problem}")
            print(f"lint: {baseline_path} has rotted — prune the entries "
                  f"above or rerun --update-baseline")
            return 2
    if only is not None:
        # Entries for unchanged files are out of scope, not stale.
        entries = [e for e in entries if str(e.get("path", "")) in only]
    match = apply_baseline(result.violations, entries)

    if args.format == "sarif":
        # Violation paths are package-root-relative; rebase them onto
        # the repo root so code-scanning annotations land on the files.
        prefix = ""
        if repo_root is not None and package_root != repo_root:
            try:
                prefix = package_root.relative_to(repo_root).as_posix() + "/"
            except ValueError:
                prefix = ""
        report = render_sarif(result, match, uri_prefix=prefix)
    elif args.format == "json":
        report = render_json(result, match)
    else:
        report = render_text(result, match)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"lint: wrote {args.format} report to {args.output} "
              f"({len(match.new)} new, {len(match.baselined)} baselined, "
              f"{len(match.stale)} stale)")
    else:
        print(report)
    return 1 if (match.new or match.stale) else 0
